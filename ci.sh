#!/bin/sh
# CI entry point: build, test, lint, and check formatting for the whole
# workspace. Run from the repository root. Any failure fails the run.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> mp5lint over the program corpus"
./target/release/mp5lint -q crates/apps/programs \
    crates/analysis/fixtures/broken crates/analysis/fixtures/clean

echo "==> traced smoke run through the offline auditor"
TRACE_TMP=$(mktemp -t mp5-ci-trace.XXXXXX)
trap 'rm -f "$TRACE_TMP"' EXIT
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --trace "$TRACE_TMP"
./target/release/mp5audit --quiet "$TRACE_TMP"

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI OK"
