#!/bin/sh
# CI entry point: build, test, lint, and check formatting for the whole
# workspace. Run from the repository root. Any failure fails the run.
#
# Usage: ./ci.sh [--quick]
#
#   --quick      skip the slow static passes (clippy, rustdoc) — used by
#                the CI smoke job and the pre-push hook (see README).
#   CI_BENCH=1   additionally run the mp5bench perf-regression gate
#                against the committed ci/bench_baseline.json, leaving
#                the fresh report in BENCH_main.json (uploaded as a CI
#                artifact so every run's numbers are downloadable). The
#                baseline is host-specific: only enable the gate on the
#                machine (or runner class) that produced it, and refresh
#                it with  mp5bench --quick --out ci/bench_baseline.json.
set -eu

# Single EXIT trap for every temporary this script creates. Individual
# `trap ... EXIT` lines would silently overwrite each other (sh keeps
# one handler per signal), leaking whichever temporaries the earlier
# handlers covered — so steps only fill in the variables below.
TRACE_TMP=""
TRACE_SCALAR_TMP=""
FABRIC_TMP=""
SERVE_TMP=""
cleanup() {
    if [ -n "$TRACE_TMP" ]; then rm -f "$TRACE_TMP"; fi
    if [ -n "$TRACE_SCALAR_TMP" ]; then rm -f "$TRACE_SCALAR_TMP"; fi
    if [ -n "$FABRIC_TMP" ]; then rm -rf "$FABRIC_TMP"; fi
    if [ -n "$SERVE_TMP" ]; then rm -rf "$SERVE_TMP"; fi
}
trap cleanup EXIT

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "ci.sh: unknown argument '$arg' (usage: ./ci.sh [--quick])" >&2; exit 2 ;;
    esac
done

# Fail fast with a clear message if an expected release binary is
# missing (e.g. a renamed [[bin]] target), instead of a confusing
# "not found" halfway through the run.
need_bin() {
    if [ ! -x "target/release/$1" ]; then
        echo "ci.sh: missing release binary target/release/$1 (did the [[bin]] target change?)" >&2
        exit 1
    fi
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

if [ "$QUICK" -eq 0 ]; then
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

need_bin mp5lint
need_bin mp5run
need_bin mp5audit
need_bin mp5bench
need_bin mp5chaos
need_bin mp5fabric
need_bin mp5serve

echo "==> mp5lint over the program corpus"
./target/release/mp5lint -q crates/apps/programs \
    crates/analysis/fixtures/broken crates/analysis/fixtures/clean

echo "==> traced smoke run (batch exec path) through the offline auditor"
# Traced runs ride the SoA batch path (no scalar fallback); the
# auditor must accept the batch-produced stream, and the stream must
# be byte-identical to the frozen scalar reference's.
TRACE_TMP=$(mktemp -t mp5-ci-trace.XXXXXX)
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --exec batch --trace "$TRACE_TMP"
./target/release/mp5audit --quiet "$TRACE_TMP"

echo "==> traced batch-vs-scalar stream bit-identity"
TRACE_SCALAR_TMP=$(mktemp -t mp5-ci-trace-scalar.XXXXXX)
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --exec scalar --trace "$TRACE_SCALAR_TMP" >/dev/null
cmp "$TRACE_TMP" "$TRACE_SCALAR_TMP" || {
    echo "ci.sh: batch-traced event stream diverged from the scalar reference" >&2
    exit 1
}

echo "==> engine smoke: parallel engine at pinned worker counts"
# Pinned counts (not "one worker per pipeline") so the equivalence
# matrix covers workers < pipelines sharding on every runner class.
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --engine par:2
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --engine par:4

echo "==> chaos smoke: 3 seeded fault plans per app, auditor-gated"
# Quick plans: every case must finish clean (no panics, closed fault
# ledger, zero auditor findings, seq/par bit-identity). Seeds are fixed
# so this cannot flake; the nightly CI job runs the wider sweep.
./target/release/mp5chaos --seeds 3 --packets 400 --horizon 200

echo "==> faulted replay smoke: chaos seed through mp5run + auditor"
./target/release/mp5run crates/apps/programs/flowlet.mp5 \
    --packets 4000 --chaos-seed 3 --audit

echo "==> fabric smoke: traced 2x2 leaf-spine run, seq/par bit-identity, auditor"
FABRIC_TMP=$(mktemp -d -t mp5-ci-fabric.XXXXXX)
./target/release/mp5fabric --leaves 2 --spines 2 --flows 500 \
    --trace-dir "$FABRIC_TMP" --audit --verify-par --quiet
for f in "$FABRIC_TMP"/sw*.jsonl; do
    ./target/release/mp5audit --quiet "$f"
done

echo "==> fabric chaos smoke: spine fail-stop mid-run, ledger closed"
./target/release/mp5chaos --seeds 1 --apps flowlet --packets 400 --horizon 200 --fabric

echo "==> serve smoke: checkpoint / kill / restore stitches the identical stream"
# A run halted at a checkpoint and restored from the snapshot file —
# on the *other* engine and exec path — must emit exactly the event
# stream of the run that was never interrupted. Lifecycle markers
# (snapshot/restored/swap) describe operator actions, not simulated
# behaviour, so they are stripped before the byte compare; the
# stitched stream must also satisfy the offline auditor.
SERVE_TMP=$(mktemp -d -t mp5-ci-serve.XXXXXX)
./target/release/mp5serve --app flowlet --packets 800 \
    --trace "$SERVE_TMP/full.jsonl"
./target/release/mp5serve --app flowlet --packets 800 \
    --snapshot "$SERVE_TMP/ckpt.snap" --halt-at 120 \
    --trace "$SERVE_TMP/pre.jsonl"
./target/release/mp5serve --restore "$SERVE_TMP/ckpt.snap" \
    --engine par:2 --exec scalar --trace "$SERVE_TMP/post.jsonl"
grep -hv '"k":"snapshot"\|"k":"restored"\|"k":"swap"' \
    "$SERVE_TMP/pre.jsonl" "$SERVE_TMP/post.jsonl" > "$SERVE_TMP/stitched.jsonl"
cmp "$SERVE_TMP/full.jsonl" "$SERVE_TMP/stitched.jsonl" || {
    echo "ci.sh: restored event stream diverged from the uninterrupted run" >&2
    exit 1
}
./target/release/mp5audit --quiet "$SERVE_TMP/stitched.jsonl"

echo "==> serve smoke: zero-downtime hot-swap, ledger closed"
./target/release/mp5serve --app flowlet --packets 800 \
    --swap-at 120 --swap-program crates/apps/programs/flowlet.mp5

if [ "${CI_BENCH:-0}" = "1" ]; then
    echo "==> mp5bench perf-regression gate (CI_BENCH=1)"
    # The report is written to the working tree (gitignored), not a
    # tempfile: the CI smoke job uploads it as an artifact so every
    # run's numbers stay downloadable next to the gate verdict.
    #
    # Tolerance: the enforcing runner is a single shared core whose
    # effective speed swings ~40% between multi-minute host phases, so
    # the absolute pkts/s compare needs headroom even with mp5bench's
    # best-of-3 re-measure. The actual perf trajectory is enforced by
    # the window-independent ratio checks (SoA >= 1.5x, hot-state
    # >= 1.3x), which stay hard at any tolerance.
    ./target/release/mp5bench --quick --out BENCH_main.json \
        --gate ci/bench_baseline.json --tolerance 0.40
fi

if [ "$QUICK" -eq 0 ]; then
    echo "==> cargo doc (deny warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
fi

echo "CI OK"
