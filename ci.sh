#!/bin/sh
# CI entry point: build, test, lint, and check formatting for the whole
# workspace. Run from the repository root. Any failure fails the run.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> mp5lint over the program corpus"
./target/release/mp5lint -q crates/apps/programs \
    crates/analysis/fixtures/broken crates/analysis/fixtures/clean

echo "CI OK"
