//! SoA batch work-phase property suite: random traffic through random
//! switch configurations must produce **byte-identical** [`RunReport`]s
//! on the scalar reference interpreter and the data-oriented batch path
//! (pack → stage-major execute → verdict compaction), for one canonical
//! program per shardability class `mp5-analysis` emits (paper §3.3).
//!
//! The class coverage matters because the batch kernel's gather/dedup
//! handling differs with how arrays shard: a `Shardable` array spreads
//! indexes across pipelines, while the three pinned classes serialize
//! at array granularity and stress the consecutive-access dedup and
//! wasted-speculation verdict bits instead.

use proptest::prelude::*;

use mp5::analysis::{compile_with_analysis, ShardClass};
use mp5::compiler::Target;
use mp5::core::{EngineMode, ExecPath, Mp5Switch, ShardingMode, SwitchConfig};
use mp5::traffic::TraceBuilder;

struct ClassCase {
    class: ShardClass,
    /// The register whose classification the case claims to exercise.
    reg: &'static str,
    source: &'static str,
}

const CASES: [ClassCase; 4] = [
    ClassCase {
        class: ShardClass::Shardable,
        reg: "r",
        source: "struct Packet { int h; int o; };
                 int r[8] = {0};
                 void func(struct Packet p) {
                     r[p.h % 8] = r[p.h % 8] + 1;
                     p.o = r[p.h % 8];
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedStatefulIndex,
        reg: "r",
        source: "struct Packet { int h; int o; };
                 int ptr = 0;
                 int r[8] = {0};
                 void func(struct Packet p) {
                     ptr = ptr + 1;
                     r[ptr % 8] = r[ptr % 8] + p.h;
                     p.o = r[ptr % 8];
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedCoResident,
        reg: "a",
        source: "struct Packet { int h; int o; };
                 int a[4] = {0};
                 int b[4] = {0};
                 void func(struct Packet p) {
                     int t = a[p.h % 4] + b[p.h % 4];
                     a[p.h % 4] = t + 1;
                     b[p.h % 4] = t + 1;
                     p.o = t;
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedStatefulPredicate,
        reg: "r",
        source: "struct Packet { int i; int j; };
                 int gate = 0;
                 int r[8] = {0};
                 void func(struct Packet p) {
                     gate = gate + 1;
                     if (gate % 3 > 0) { r[p.i % 8] = r[p.i % 8] + 1; }
                     if (gate % 3 > 1) { r[p.j % 8] = r[p.j % 8] + 2; }
                 }",
    },
];

/// The suite's premise: each case really is classified as claimed, so
/// the property below covers every class the analyzer can emit.
#[test]
fn cases_cover_every_shard_class() {
    for case in &CASES {
        let prog = compile_with_analysis(case.source, &Target::default())
            .unwrap_or_else(|e| panic!("{:?} case does not compile: {e:?}", case.class));
        let report = prog.analysis.as_ref().expect("analyzer attached a report");
        let reg = report
            .reg_by_name(case.reg)
            .unwrap_or_else(|| panic!("{:?} case has no register '{}'", case.class, case.reg));
        assert_eq!(
            reg.class, case.class,
            "'{}' in the {:?} case is misclassified",
            case.reg, case.class
        );
    }
}

fn config_strategy() -> impl Strategy<Value = SwitchConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![Just(None), Just(Some(2usize)), Just(Some(8))],
        any::<bool>(),
        prop_oneof![
            Just(ShardingMode::Dynamic),
            Just(ShardingMode::Static),
            Just(ShardingMode::Pinned),
        ],
        prop_oneof![Just(EngineMode::Sequential), Just(EngineMode::Parallel(2))],
    )
        .prop_map(|(k, fifo, phantoms, sharding, engine)| SwitchConfig {
            fifo_capacity: fifo,
            phantoms,
            sharding,
            ..SwitchConfig::mp5(k).with_engine(engine)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random batches through SoA pack → stage execute → compact are
    /// byte-identical to the scalar path, per shardability class.
    #[test]
    fn batch_path_matches_scalar_for_every_shard_class(
        case_idx in 0usize..CASES.len(),
        cfg in config_strategy(),
        n in 100usize..500,
        seed in 0u64..64,
    ) {
        let case = &CASES[case_idx];
        let prog = compile_with_analysis(case.source, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |rng, _, f| {
            for v in f.iter_mut() {
                *v = rand::Rng::gen_range(rng, 0..1000);
            }
        });
        let run = |exec: ExecPath| {
            Mp5Switch::new(prog.clone(), cfg.clone().with_exec(exec)).run(trace.clone())
        };
        let scalar = run(ExecPath::Scalar);
        let batch = run(ExecPath::Batch);
        prop_assert_eq!(
            scalar,
            batch,
            "{:?} case: scalar and batch reports diverged",
            case.class
        );
    }
}
