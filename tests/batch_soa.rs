//! SoA batch work-phase property suite: random traffic through random
//! switch configurations must produce **byte-identical** [`RunReport`]s
//! on the scalar reference interpreter and the data-oriented batch path
//! (pack → stage-major execute → verdict compaction), for one canonical
//! program per shardability class `mp5-analysis` emits (paper §3.3).
//!
//! The class coverage matters because the batch kernel's gather/dedup
//! handling differs with how arrays shard: a `Shardable` array spreads
//! indexes across pipelines, while the three pinned classes serialize
//! at array granularity and stress the consecutive-access dedup and
//! wasted-speculation verdict bits instead.

use proptest::prelude::*;

use mp5::analysis::{compile_with_analysis, ShardClass};
use mp5::compiler::Target;
use mp5::core::{EngineMode, ExecPath, Mp5Switch, ShardingMode, SwitchConfig};
use mp5::fabric::{LogicalFifo, OrderKey, PhantomKey};
use mp5::traffic::TraceBuilder;
use mp5::types::{PacketId, PipelineId, RegId};

struct ClassCase {
    class: ShardClass,
    /// The register whose classification the case claims to exercise.
    reg: &'static str,
    source: &'static str,
}

const CASES: [ClassCase; 4] = [
    ClassCase {
        class: ShardClass::Shardable,
        reg: "r",
        source: "struct Packet { int h; int o; };
                 int r[8] = {0};
                 void func(struct Packet p) {
                     r[p.h % 8] = r[p.h % 8] + 1;
                     p.o = r[p.h % 8];
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedStatefulIndex,
        reg: "r",
        source: "struct Packet { int h; int o; };
                 int ptr = 0;
                 int r[8] = {0};
                 void func(struct Packet p) {
                     ptr = ptr + 1;
                     r[ptr % 8] = r[ptr % 8] + p.h;
                     p.o = r[ptr % 8];
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedCoResident,
        reg: "a",
        source: "struct Packet { int h; int o; };
                 int a[4] = {0};
                 int b[4] = {0};
                 void func(struct Packet p) {
                     int t = a[p.h % 4] + b[p.h % 4];
                     a[p.h % 4] = t + 1;
                     b[p.h % 4] = t + 1;
                     p.o = t;
                 }",
    },
    ClassCase {
        class: ShardClass::PinnedStatefulPredicate,
        reg: "r",
        source: "struct Packet { int i; int j; };
                 int gate = 0;
                 int r[8] = {0};
                 void func(struct Packet p) {
                     gate = gate + 1;
                     if (gate % 3 > 0) { r[p.i % 8] = r[p.i % 8] + 1; }
                     if (gate % 3 > 1) { r[p.j % 8] = r[p.j % 8] + 2; }
                 }",
    },
];

/// The suite's premise: each case really is classified as claimed, so
/// the property below covers every class the analyzer can emit.
#[test]
fn cases_cover_every_shard_class() {
    for case in &CASES {
        let prog = compile_with_analysis(case.source, &Target::default())
            .unwrap_or_else(|e| panic!("{:?} case does not compile: {e:?}", case.class));
        let report = prog.analysis.as_ref().expect("analyzer attached a report");
        let reg = report
            .reg_by_name(case.reg)
            .unwrap_or_else(|| panic!("{:?} case has no register '{}'", case.class, case.reg));
        assert_eq!(
            reg.class, case.class,
            "'{}' in the {:?} case is misclassified",
            case.reg, case.class
        );
    }
}

fn config_strategy() -> impl Strategy<Value = SwitchConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![Just(None), Just(Some(2usize)), Just(Some(8))],
        any::<bool>(),
        prop_oneof![
            Just(ShardingMode::Dynamic),
            Just(ShardingMode::Static),
            Just(ShardingMode::Pinned),
        ],
        prop_oneof![Just(EngineMode::Sequential), Just(EngineMode::Parallel(2))],
    )
        .prop_map(|(k, fifo, phantoms, sharding, engine)| SwitchConfig {
            fifo_capacity: fifo,
            phantoms,
            sharding,
            ..SwitchConfig::mp5(k).with_engine(engine)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random batches through SoA pack → stage execute → compact are
    /// byte-identical to the scalar path, per shardability class.
    #[test]
    fn batch_path_matches_scalar_for_every_shard_class(
        case_idx in 0usize..CASES.len(),
        cfg in config_strategy(),
        n in 100usize..500,
        seed in 0u64..64,
    ) {
        let case = &CASES[case_idx];
        let prog = compile_with_analysis(case.source, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |rng, _, f| {
            for v in f.iter_mut() {
                *v = rand::Rng::gen_range(rng, 0..1000);
            }
        });
        let run = |exec: ExecPath| {
            Mp5Switch::new(prog.clone(), cfg.clone().with_exec(exec)).run(trace.clone())
        };
        let scalar = run(ExecPath::Scalar);
        let batch = run(ExecPath::Batch);
        prop_assert_eq!(
            scalar,
            batch,
            "{:?} case: scalar and batch reports diverged",
            case.class
        );
    }
}

/// A generated operation against one [`LogicalFifo`]. Selector fields
/// (`lane`, `sel`) are reduced modulo the live population at apply
/// time, so every generated script is valid by construction.
#[derive(Debug, Clone)]
enum FifoOp {
    /// Push a phantom placeholder into `lane % k`.
    Phantom { lane: usize },
    /// Push a data entry directly (no-phantom operating modes).
    Data { lane: usize },
    /// Resolve an outstanding phantom: `insert_data` at selector `sel`.
    Insert { sel: usize },
    /// Cancel an outstanding phantom; `free` evacuates without
    /// consuming service, `!free` leaves a stale entry that costs a
    /// pop cycle (paper §3.3).
    Cancel { sel: usize, free: bool },
    /// Recover a data entry into the timestamp-sorted side queue
    /// (the `mp5-faults` path).
    Recover,
    /// Service once.
    Pop,
    /// Read-only service probes (`oldest_ts` + `peek_oldest`), which
    /// in indexed mode drain free-stale heads and may evacuate lanes.
    Probe,
}

fn fifo_op_strategy() -> impl Strategy<Value = FifoOp> {
    prop_oneof![
        (0usize..8).prop_map(|lane| FifoOp::Phantom { lane }),
        (0usize..8).prop_map(|lane| FifoOp::Data { lane }),
        (0usize..64).prop_map(|sel| FifoOp::Insert { sel }),
        (0usize..64, any::<bool>()).prop_map(|(sel, free)| FifoOp::Cancel { sel, free }),
        Just(FifoOp::Recover),
        Just(FifoOp::Pop),
        Just(FifoOp::Probe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The dense occupancy index (the packed occupied-lane list the
    /// batch path's heavy-queue service scan walks) always matches a
    /// full lane scan, under random push / pop / free-cancel /
    /// stale-cancel / insert / recover / probe sequences — in both the
    /// indexed and the reference service modes, bounded and unbounded.
    #[test]
    fn occupancy_index_matches_lane_scan(
        ops in proptest::collection::vec(fifo_op_strategy(), 1..200),
        lanes in 1usize..8,
        capacity in prop_oneof![Just(None), Just(Some(1usize)), Just(Some(3))],
        reference in any::<bool>(),
    ) {
        let mut fifo: LogicalFifo<u64> = LogicalFifo::new(lanes, capacity);
        fifo.set_reference_service(reference);
        let mut next_id = 0u64;
        let mut outstanding: Vec<PhantomKey> = Vec::new();
        for op in ops {
            match op {
                FifoOp::Phantom { lane } => {
                    let id = next_id;
                    next_id += 1;
                    let key = PhantomKey { pkt: PacketId(id), reg: RegId(0), index: 0 };
                    let ok = fifo
                        .push_phantom(key, OrderKey(id, 0), PipelineId((lane % lanes) as u16))
                        .is_ok();
                    if ok {
                        outstanding.push(key); // dropped pushes own no phantom
                    }
                }
                FifoOp::Data { lane } => {
                    let id = next_id;
                    next_id += 1;
                    let _ = fifo.push_data(id, OrderKey(id, 0), PipelineId((lane % lanes) as u16));
                }
                FifoOp::Insert { sel } => {
                    if !outstanding.is_empty() {
                        let key = outstanding.swap_remove(sel % outstanding.len());
                        let _ = fifo.insert_data(key, key.pkt.0);
                    }
                }
                FifoOp::Cancel { sel, free } => {
                    if !outstanding.is_empty() {
                        let key = outstanding.swap_remove(sel % outstanding.len());
                        fifo.cancel(key, free);
                    }
                }
                FifoOp::Recover => {
                    let id = next_id;
                    next_id += 1;
                    fifo.push_recovered(id, OrderKey(id, 0));
                }
                FifoOp::Pop => {
                    let _ = fifo.pop();
                }
                FifoOp::Probe => {
                    let _ = fifo.oldest_ts();
                    let _ = fifo.peek_oldest();
                }
            }
            fifo.check_occupancy_index();
        }
        // Resolve the survivors (a phantom head blocks pop forever),
        // then drain to empty: the index must track every evacuation.
        for key in outstanding.drain(..) {
            fifo.cancel(key, true);
            fifo.check_occupancy_index();
        }
        while !fifo.is_empty() {
            fifo.pop();
            fifo.check_occupancy_index();
        }
    }
}
