//! Engine equivalence suite: the parallel cycle engine must be
//! **bit-identical** to the sequential one — same [`RunReport`] (final
//! registers, packet outputs, per-state access order, every counter)
//! and the same traced event stream (compared by `stream_hash`) — for
//! every bundled application, across seeds and pipeline counts.
//!
//! This is the contract `EngineMode` documents and `DESIGN.md` §10
//! argues: the parallel engine shards the work phase of each cycle and
//! merges buffered side effects in pipeline order, so no observable
//! difference may ever appear. Scale knob: `MP5_EQ_PACKETS` (default
//! 300 packets per run).

use mp5::apps::ALL_APPS;
use mp5::core::{EngineMode, Mp5Switch, RunReport, SwitchConfig};
use mp5::sim::experiments::app_trace;
use mp5::trace::{stream_hash, MemSink};

fn packets_per_run() -> usize {
    std::env::var("MP5_EQ_PACKETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// One traced run; returns the report and the event-stream hash.
fn traced(
    prog: &mp5::compiler::CompiledProgram,
    trace: &[mp5::types::Packet],
    cfg: SwitchConfig,
) -> (RunReport, u64) {
    let (report, sink) =
        Mp5Switch::with_sink(prog.clone(), cfg, MemSink::new()).run_traced(trace.to_vec());
    let hash = stream_hash(&sink.into_events());
    (report, hash)
}

/// All ten bundled programs × seeds {1,2,3} × pipelines {1,2,4,8}:
/// identical reports and identical event streams.
#[test]
fn parallel_engine_is_bit_identical_on_every_program() {
    let packets = packets_per_run();
    for app in &ALL_APPS {
        for seed in [1u64, 2, 3] {
            let (prog, trace) = app_trace(app, packets, seed);
            for k in [1usize, 2, 4, 8] {
                let (seq_rep, seq_hash) = traced(&prog, &trace, SwitchConfig::mp5(k));
                let par_cfg = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(k));
                let (par_rep, par_hash) = traced(&prog, &trace, par_cfg);
                assert_eq!(
                    seq_rep, par_rep,
                    "{} seed={seed} k={k}: reports diverged",
                    app.name
                );
                assert_eq!(
                    seq_hash, par_hash,
                    "{} seed={seed} k={k}: event streams diverged",
                    app.name
                );
            }
        }
    }
}

/// Worker counts that do not divide the pipeline count evenly (and
/// exceed it) must not matter either: `Parallel(n)` for n in 1..=8 on a
/// 4-pipeline switch, many short runs.
#[test]
fn worker_count_never_changes_results() {
    let app = &ALL_APPS[0]; // flowlet
    let (prog, trace) = app_trace(app, 200, 5);
    let (seq_rep, seq_hash) = traced(&prog, &trace, SwitchConfig::mp5(4));
    for n in 1usize..=8 {
        for round in 0..3 {
            let cfg = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(n));
            let (par_rep, par_hash) = traced(&prog, &trace, cfg);
            assert_eq!(
                seq_rep, par_rep,
                "Parallel({n}) round {round}: reports diverged"
            );
            assert_eq!(
                seq_hash, par_hash,
                "Parallel({n}) round {round}: event streams diverged"
            );
        }
    }
}

/// The untraced parallel path (NopSink workers) must agree with the
/// untraced sequential path too — tracing must not be what makes the
/// engines agree.
#[test]
fn untraced_runs_agree_across_engines() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 400, 11);
        let seq = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let cfg = SwitchConfig::mp5(4).with_engine(EngineMode::parallel_auto());
        let par = Mp5Switch::new(prog.clone(), cfg).run(trace);
        assert_eq!(seq, par, "{}: untraced reports diverged", app.name);
    }
}
