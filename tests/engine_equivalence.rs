//! Engine equivalence suite: the parallel cycle engine must be
//! **bit-identical** to the sequential one — same [`RunReport`] (final
//! registers, packet outputs, per-state access order, every counter)
//! and the same traced event stream (compared by `stream_hash`) — for
//! every bundled application, across seeds and pipeline counts.
//!
//! This is the contract `EngineMode` documents and `DESIGN.md` §10
//! argues: the parallel engine shards the work phase of each cycle and
//! merges buffered side effects in pipeline order, so no observable
//! difference may ever appear. The same bar applies to the work phase's
//! two execution paths (`ExecPath::Scalar` vs the SoA `Batch` default,
//! DESIGN.md §13). Scale knob: `MP5_EQ_PACKETS` (default 300 packets
//! per run).

use mp5::apps::ALL_APPS;
use mp5::core::{EngineMode, ExecPath, Mp5Switch, RunReport, SwitchConfig};
use mp5::faults::FaultPlan;
use mp5::sim::experiments::app_trace;
use mp5::trace::{audit, stream_hash, MemSink, NopSink};

fn packets_per_run() -> usize {
    std::env::var("MP5_EQ_PACKETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// One traced run; returns the report and the event-stream hash.
fn traced(
    prog: &mp5::compiler::CompiledProgram,
    trace: &[mp5::types::Packet],
    cfg: SwitchConfig,
) -> (RunReport, u64) {
    let (report, sink) =
        Mp5Switch::with_sink(prog.clone(), cfg, MemSink::new()).run_traced(trace.to_vec());
    let hash = stream_hash(&sink.into_events());
    (report, hash)
}

/// All ten bundled programs × seeds {1,2,3} × pipelines {1,2,4,8}:
/// identical reports and identical event streams.
#[test]
fn parallel_engine_is_bit_identical_on_every_program() {
    let packets = packets_per_run();
    for app in &ALL_APPS {
        for seed in [1u64, 2, 3] {
            let (prog, trace) = app_trace(app, packets, seed);
            for k in [1usize, 2, 4, 8] {
                let (seq_rep, seq_hash) = traced(&prog, &trace, SwitchConfig::mp5(k));
                let par_cfg = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(k));
                let (par_rep, par_hash) = traced(&prog, &trace, par_cfg);
                assert_eq!(
                    seq_rep, par_rep,
                    "{} seed={seed} k={k}: reports diverged",
                    app.name
                );
                assert_eq!(
                    seq_hash, par_hash,
                    "{} seed={seed} k={k}: event streams diverged",
                    app.name
                );
            }
        }
    }
}

/// Worker counts that do not divide the pipeline count evenly (and
/// exceed it) must not matter either: `Parallel(n)` for n in 1..=8 on a
/// 4-pipeline switch, many short runs.
#[test]
fn worker_count_never_changes_results() {
    let app = &ALL_APPS[0]; // flowlet
    let (prog, trace) = app_trace(app, 200, 5);
    let (seq_rep, seq_hash) = traced(&prog, &trace, SwitchConfig::mp5(4));
    for n in 1usize..=8 {
        for round in 0..3 {
            let cfg = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(n));
            let (par_rep, par_hash) = traced(&prog, &trace, cfg);
            assert_eq!(
                seq_rep, par_rep,
                "Parallel({n}) round {round}: reports diverged"
            );
            assert_eq!(
                seq_hash, par_hash,
                "Parallel({n}) round {round}: event streams diverged"
            );
        }
    }
}

/// The untraced parallel path (NopSink workers) must agree with the
/// untraced sequential path too — tracing must not be what makes the
/// engines agree.
#[test]
fn untraced_runs_agree_across_engines() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 400, 11);
        let seq = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let cfg = SwitchConfig::mp5(4).with_engine(EngineMode::parallel_auto());
        let par = Mp5Switch::new(prog.clone(), cfg).run(trace);
        assert_eq!(seq, par, "{}: untraced reports diverged", app.name);
    }
}

/// The SoA batch work phase (the default, [`ExecPath::Batch`]) must be
/// bit-identical to the scalar reference interpreter: all ten bundled
/// programs × seeds × pipelines {1,2,4,8} through the sequential
/// engine.
#[test]
fn batch_work_phase_is_bit_identical_to_scalar() {
    let packets = packets_per_run();
    for app in &ALL_APPS {
        for seed in [1u64, 2] {
            let (prog, trace) = app_trace(app, packets, seed);
            for k in [1usize, 2, 4, 8] {
                let scalar_cfg = SwitchConfig::mp5(k).with_exec(ExecPath::Scalar);
                let scalar = Mp5Switch::new(prog.clone(), scalar_cfg).run(trace.clone());
                let batch = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(k)).run(trace.clone());
                assert_eq!(
                    scalar, batch,
                    "{} seed={seed} k={k}: scalar and batch work phases diverged",
                    app.name
                );
            }
        }
    }
}

/// Exec paths must also agree when the parallel engine shards the batch
/// ranges across pinned worker counts (including workers < pipelines),
/// and both must match the sequential batch run.
#[test]
fn batch_work_phase_matches_scalar_on_the_parallel_engine() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 300, 5);
        for k in [4usize, 8] {
            let seq = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(k)).run(trace.clone());
            for workers in [2usize, 4] {
                let par = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(workers));
                let scalar_rep =
                    Mp5Switch::new(prog.clone(), par.clone().with_exec(ExecPath::Scalar))
                        .run(trace.clone());
                let batch_rep = Mp5Switch::new(prog.clone(), par).run(trace.clone());
                assert_eq!(
                    scalar_rep, batch_rep,
                    "{} k={k} par:{workers}: exec paths diverged",
                    app.name
                );
                assert_eq!(
                    seq, batch_rep,
                    "{} k={k} par:{workers}: engines diverged on the batch path",
                    app.name
                );
            }
        }
    }
}

/// Fault injection runs on the shared phase machinery, so the batch
/// work phase must not disturb it: same fault plan, same report on
/// both exec paths (untraced; the traced × faulted cross-product is
/// covered by `traced_batch_stream_is_bit_identical_under_faults`).
#[test]
fn batch_work_phase_matches_scalar_under_faults() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 300, 3);
        for k in [2usize, 4] {
            let plan = FaultPlan::chaos(41, k, prog.num_stages(), 250);
            let run = |exec: ExecPath| {
                let cfg = SwitchConfig::mp5(k).with_exec(exec);
                Mp5Switch::with_faults(prog.clone(), cfg, NopSink, plan.injector())
                    .run(trace.clone())
            };
            let scalar = run(ExecPath::Scalar);
            let batch = run(ExecPath::Batch);
            assert_eq!(
                scalar, batch,
                "{} k={k}: exec paths diverged under faults",
                app.name
            );
            assert!(
                batch.fault.accounted(),
                "{} k={k}: fault ledger must close on the batch path",
                app.name
            );
        }
    }
}

/// Attaching a sink no longer changes the execution path: a traced run
/// rides the SoA batch passes (events buffered per batch, flushed in
/// canonical scalar order) and its report equals the untraced batch
/// run's report.
#[test]
fn traced_runs_ride_the_batch_path() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 300, 7);
        let (traced_rep, _) = traced(&prog, &trace, SwitchConfig::mp5(4));
        let batch_rep = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        assert_eq!(
            traced_rep, batch_rep,
            "{}: traced and untraced batch reports diverged",
            app.name
        );
    }
}

/// The load-bearing contract of the traced batch path: for every
/// bundled program, on both engines, the batch path's *event stream* is
/// bit-identical (by `stream_hash`) to the traced scalar reference —
/// recorded traces, JSONL files, and auditor verdicts cannot depend on
/// which exec path produced them.
#[test]
fn traced_batch_stream_matches_traced_scalar() {
    let packets = packets_per_run();
    for app in &ALL_APPS {
        let (prog, trace) = app_trace(app, packets, 1);
        for k in [1usize, 4] {
            let scalar_cfg = SwitchConfig::mp5(k).with_exec(ExecPath::Scalar);
            let (scalar_rep, scalar_hash) = traced(&prog, &trace, scalar_cfg);
            for engine in [EngineMode::Sequential, EngineMode::Parallel(k)] {
                let cfg = SwitchConfig::mp5(k).with_engine(engine);
                let (batch_rep, batch_hash) = traced(&prog, &trace, cfg);
                assert_eq!(
                    scalar_rep, batch_rep,
                    "{} k={k} {engine:?}: traced batch report diverged from scalar",
                    app.name
                );
                assert_eq!(
                    scalar_hash, batch_hash,
                    "{} k={k} {engine:?}: traced batch event stream diverged from scalar",
                    app.name
                );
            }
        }
    }
}

/// The same stream-identity bar under fault plans: stalls, kills,
/// phantom drops and grant delays interleave with the batch passes
/// without perturbing the canonical event order, on both engines.
#[test]
fn traced_batch_stream_is_bit_identical_under_faults() {
    for app in &ALL_APPS[..4] {
        let (prog, trace) = app_trace(app, 300, 3);
        for k in [2usize, 4] {
            let plan = FaultPlan::chaos(41, k, prog.num_stages(), 250);
            let scalar_cfg = SwitchConfig::mp5(k).with_exec(ExecPath::Scalar);
            let (scalar_rep, scalar_hash) = traced_faulted(&prog, &trace, scalar_cfg, &plan);
            for engine in [EngineMode::Sequential, EngineMode::Parallel(k)] {
                let cfg = SwitchConfig::mp5(k).with_engine(engine);
                let (batch_rep, batch_hash) = traced_faulted(&prog, &trace, cfg, &plan);
                assert_eq!(
                    scalar_rep, batch_rep,
                    "{} k={k} {engine:?}: faulted traced batch report diverged",
                    app.name
                );
                assert_eq!(
                    scalar_hash, batch_hash,
                    "{} k={k} {engine:?}: faulted traced batch stream diverged",
                    app.name
                );
            }
            assert!(
                scalar_rep.fault.accounted(),
                "{} k={k}: fault ledger must close",
                app.name
            );
        }
    }
}

/// One traced run under a fault plan; report + event-stream hash.
fn traced_faulted(
    prog: &mp5::compiler::CompiledProgram,
    trace: &[mp5::types::Packet],
    cfg: SwitchConfig,
    plan: &FaultPlan,
) -> (RunReport, u64) {
    let (report, sink) = Mp5Switch::with_faults(prog.clone(), cfg, MemSink::new(), plan.injector())
        .run_traced(trace.to_vec());
    let hash = stream_hash(&sink.into_events());
    (report, hash)
}

/// Bit-identity must survive fault injection: the same fault plan on
/// the same trace produces the same report and the same event stream
/// on both engines — stalls are handed to workers as plain data and
/// every other hook runs on the coordinator, so no nondeterminism may
/// leak in. Covers a mixed plan (kill + stall + drops + delays) and a
/// pure chaos plan, across pipeline counts.
#[test]
fn engines_stay_bit_identical_under_faults() {
    let packets = packets_per_run();
    for app in &ALL_APPS[..4] {
        for k in [2usize, 4] {
            let (prog, trace) = app_trace(app, packets, 3);
            let mixed = FaultPlan::new(17)
                .pipeline_fail(30, (k - 1) as u16)
                .stage_stall(10, 0, 1, 40)
                .phantom_drop(5, 150, 120)
                .grant_delay(20, 2, 80)
                .remap_abort(15, 1);
            let chaos = FaultPlan::chaos(99, k, prog.num_stages(), 250);
            for (name, plan) in [("mixed", &mixed), ("chaos", &chaos)] {
                let (seq_rep, seq_hash) = traced_faulted(&prog, &trace, SwitchConfig::mp5(k), plan);
                let par_cfg = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(k));
                let (par_rep, par_hash) = traced_faulted(&prog, &trace, par_cfg, plan);
                assert_eq!(
                    seq_rep, par_rep,
                    "{} k={k} {name} plan: reports diverged under faults",
                    app.name
                );
                assert_eq!(
                    seq_hash, par_hash,
                    "{} k={k} {name} plan: event streams diverged under faults",
                    app.name
                );
                assert!(
                    seq_rep.fault.accounted(),
                    "{} k={k} {name} plan: fault ledger must close",
                    app.name
                );
            }
        }
    }
}

/// A fault plan serialized to JSON and parsed back drives a
/// bit-identical run — `mp5run --faults plan.json` replays exactly
/// what `mp5chaos` rolled.
#[test]
fn fault_plans_replay_identically_through_json() {
    let app = &ALL_APPS[1]; // conga
    let (prog, trace) = app_trace(app, 300, 7);
    let plan = FaultPlan::chaos(7, 4, prog.num_stages(), 200);
    let reparsed = FaultPlan::from_json(&plan.to_json()).expect("plan round-trips");
    let (a, ha) = traced_faulted(&prog, &trace, SwitchConfig::mp5(4), &plan);
    let (b, hb) = traced_faulted(&prog, &trace, SwitchConfig::mp5(4), &reparsed);
    assert_eq!(a, b, "JSON round-trip changed the run");
    assert_eq!(ha, hb, "JSON round-trip changed the event stream");
    assert!(a.fault.any(), "the replayed plan must actually fire");
}

/// Negative control: a *silent* phantom drop records no loss event and
/// performs no recovery, so the offline auditor MUST flag the stream.
/// This proves the chaos suite's "auditor-clean" gate has teeth — the
/// auditor really can see an unrecovered phantom loss.
#[test]
fn auditor_catches_unrecovered_phantom_loss() {
    let app = &ALL_APPS[0]; // flowlet
    let (prog, trace) = app_trace(app, 400, 9);
    // High silent drop rate over a long window: phantoms vanish with
    // no FaultPhantomLost marker and no recovery insert.
    let plan = FaultPlan::new(13).silent_phantom_drop(5, 700, 100_000);
    let (report, sink) =
        Mp5Switch::with_faults(prog, SwitchConfig::mp5(4), MemSink::new(), plan.injector())
            .run_traced(trace);
    assert!(
        report.fault.phantoms_dropped > 0,
        "the negative control must actually lose phantoms"
    );
    assert_eq!(
        report.fault.phantoms_recovered, 0,
        "silent losses must not be recovered"
    );
    let rep = audit(&sink.into_events());
    assert!(
        !rep.is_clean(),
        "auditor failed to flag {} silently lost phantom(s) — the chaos \
         gate would be blind",
        report.fault.phantoms_dropped
    );
}
