//! Accounting invariants of the MP5 switch under randomized
//! configurations: every offered packet is either completed or an
//! accounted drop, never duplicated, never lost silently.

use proptest::prelude::*;

use mp5::compiler::{compile, Target};
use mp5::core::{EngineMode, ExecPath, Mp5Switch, ShardingMode, SprayMode, SwitchConfig};
use mp5::traffic::TraceBuilder;

const PROGRAMS: [&str; 3] = [
    // Hot single state: maximal queueing.
    "struct Packet { int h; int o; };
     int c = 0;
     void func(struct Packet p) { c = c + 1; p.o = c; }",
    // Shardable table.
    "struct Packet { int h; int o; };
     int t[32] = {0};
     void func(struct Packet p) { t[p.h % 32] = t[p.h % 32] + 1; p.o = t[p.h % 32]; }",
    // Mixed stateless/stateful with two stages.
    "struct Packet { int h; int o; };
     int a[4] = {0};
     int b[64] = {0};
     void func(struct Packet p) {
         if (p.h % 3 == 0) { a[p.h % 4] = a[p.h % 4] + 1; }
         b[p.h % 64] = b[p.h % 64] + 1;
         p.o = b[p.h % 64];
     }",
];

fn config_strategy() -> impl Strategy<Value = SwitchConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)],
        prop_oneof![Just(None), Just(Some(2usize)), Just(Some(8))],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(ShardingMode::Dynamic),
            Just(ShardingMode::Static),
            Just(ShardingMode::Pinned),
            Just(ShardingMode::IdealPeriodic),
        ],
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(4u64)), Just(Some(64))],
        prop_oneof![
            Just(EngineMode::Sequential),
            Just(EngineMode::Parallel(2)),
            Just(EngineMode::Parallel(4)),
        ],
        prop_oneof![Just(ExecPath::Scalar), Just(ExecPath::Batch)],
    )
        .prop_map(
            |(k, fifo, phantoms, per_index, sharding, single, starve, engine, exec)| SwitchConfig {
                pipelines: k,
                // Per-index queues are unbounded by design; bounded
                // capacity applies to the logical-FIFO layout only.
                fifo_capacity: if per_index { None } else { fifo },
                remap_period: 50,
                sharding,
                phantoms,
                per_index_fifos: per_index,
                spray: if single {
                    SprayMode::SinglePipeline(0)
                } else {
                    SprayMode::RoundRobin
                },
                starvation_threshold: starve,
                ecn_threshold: Some(4),
                seed: 7,
                max_cycles: None,
                physical_pipelines: None,
                engine,
                exec,
                record_detail: true,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn every_packet_is_accounted_for(
        prog_idx in 0usize..PROGRAMS.len(),
        cfg in config_strategy(),
        n in 200usize..1200,
        seed in 0u64..100,
    ) {
        let prog = compile(PROGRAMS[prog_idx], &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |rng, _, f| {
            f[0] = rand::Rng::gen_range(rng, 0..1000);
        });
        let unbounded = cfg.fifo_capacity.is_none();
        let report = Mp5Switch::new(prog, cfg).run(trace);

        // Conservation.
        prop_assert_eq!(
            report.completed + report.drops.total_data(),
            report.offered,
            "drops: {:?}", report.drops
        );
        // Output map and completion list agree; no duplicates.
        prop_assert_eq!(report.result.outputs.len() as u64, report.completed);
        prop_assert_eq!(report.completions.len() as u64, report.completed);
        let mut ids: Vec<_> = report.completions.iter().map(|&(p, _)| p).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, report.completed);
        // Unbounded FIFOs without starvation shedding never drop.
        if unbounded && report.drops.starvation == 0 {
            prop_assert_eq!(report.completed, report.offered);
        }
        // Completion cycles are monotone in exit order.
        prop_assert!(report
            .completions
            .windows(2)
            .all(|w| w[0].1 <= w[1].1));
        // Throughput is a sane fraction.
        let t = report.normalized_throughput();
        prop_assert!((0.0..=1.0).contains(&t), "throughput {t}");
    }
}
