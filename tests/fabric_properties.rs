//! Property-based tests of the hardware substrate invariants.
//!
//! * The logical FIFO's `pop()` must serve *data* entries in global
//!   timestamp order no matter how pushes, inserts, and cancels
//!   interleave across lanes (the ordering property D4 rests on).
//! * The phantom channel must deliver in injection order (Invariant 1).
//! * The frontend must never panic on arbitrary input (it may reject).

use proptest::prelude::*;

use mp5::fabric::{Entry, LogicalFifo, OrderKey, PhantomKey, PopOutcome};
use mp5::types::{PacketId, PipelineId, RegId, StageId};

/// A generated FIFO operation script.
#[derive(Debug, Clone)]
enum Op {
    /// Push a phantom for packet `id` into lane `lane`.
    Phantom { id: u64, lane: usize },
    /// Push data directly (no-phantom mode) for packet `id`.
    Data { id: u64, lane: usize },
    /// Pop once.
    Pop,
}

fn key(id: u64) -> PhantomKey {
    PhantomKey {
        pkt: PacketId(id),
        reg: RegId(0),
        index: 0,
    }
}

fn op_strategy(lanes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000, 0..lanes).prop_map(|(id, lane)| Op::Phantom { id, lane }),
        (0u64..10_000, 0..lanes).prop_map(|(id, lane)| Op::Data { id, lane }),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Data entries always pop in strictly increasing timestamp order,
    /// and a phantom head blocks everything younger until replaced.
    #[test]
    fn logical_fifo_pops_in_global_order(
        ops in proptest::collection::vec(op_strategy(4), 1..120),
    ) {
        let mut fifo: LogicalFifo<u64> = LogicalFifo::new(4, None);
        let mut ts = 0u64;
        let mut outstanding_phantoms: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        let mut used_ids = std::collections::HashSet::new();
        let mut push_ts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Phantom { id, lane } => {
                    if !used_ids.insert(id) {
                        continue; // ids must be unique per FIFO
                    }
                    ts += 1;
                    fifo.push_phantom(key(id), OrderKey(ts, 0), PipelineId(lane as u16))
                        .expect("unbounded");
                    push_ts.insert(id, ts);
                    outstanding_phantoms.push(id);
                }
                Op::Data { id, lane } => {
                    if !used_ids.insert(id) {
                        continue;
                    }
                    ts += 1;
                    fifo.push_data(id, OrderKey(ts, 0), PipelineId(lane as u16))
                        .expect("unbounded");
                    push_ts.insert(id, ts);
                }
                Op::Pop => match fifo.pop() {
                    PopOutcome::Data(v) => popped.push(v),
                    PopOutcome::BlockedOnPhantom(k) => {
                        // The blocking phantom must be one we pushed and
                        // not yet resolved; resolve it now so progress
                        // resumes (simulating the data packet arriving).
                        prop_assert!(outstanding_phantoms.contains(&k.pkt.0));
                        fifo.insert_data(k, k.pkt.0).expect("phantom live");
                        outstanding_phantoms.retain(|&p| p != k.pkt.0);
                    }
                    PopOutcome::Empty | PopOutcome::ConsumedStale => {}
                },
            }
        }
        // Drain: resolve remaining phantoms, then pop everything.
        for id in outstanding_phantoms {
            fifo.insert_data(key(id), id).expect("phantom live");
        }
        loop {
            match fifo.pop() {
                PopOutcome::Data(v) => popped.push(v),
                PopOutcome::Empty => break,
                PopOutcome::ConsumedStale => {}
                PopOutcome::BlockedOnPhantom(_) => prop_assert!(false, "all resolved"),
            }
        }
        // Every pushed entry came out exactly once...
        prop_assert_eq!(popped.len(), used_ids.len());
        let mut seen = std::collections::HashSet::new();
        for id in &popped {
            prop_assert!(seen.insert(*id), "duplicate pop of {id}");
        }
        // ...and pops left in strictly increasing push-timestamp order:
        // a pop always serves the minimum timestamp present, all later
        // pushes carry larger timestamps, and an unresolved phantom
        // blocks everything younger, so the sequence must be sorted.
        // (Data inserted for a phantom inherits the phantom's ts.)
        let ts_seq: Vec<u64> = popped.iter().map(|id| push_ts[id]).collect();
        prop_assert!(
            ts_seq.windows(2).all(|w| w[0] < w[1]),
            "pop order violated global timestamp order: {ts_seq:?}"
        );
    }

    /// The phantom channel delivers in injection order regardless of
    /// source/destination stage mixture (Invariant 1 generalized).
    #[test]
    fn phantom_channel_never_reorders_same_route(
        routes in proptest::collection::vec((0u16..4, 5u16..8), 1..40),
    ) {
        let mut ch: mp5::fabric::PhantomChannel<(usize, u16, u16)> =
            mp5::fabric::PhantomChannel::new(8);
        // Inject one phantom per cycle (like a resolution stage would),
        // advancing between injections.
        let mut delivered: Vec<(usize, u16, u16)> = Vec::new();
        for (i, &(from, dest)) in routes.iter().enumerate() {
            for (p, _) in ch.advance() {
                delivered.push(p);
            }
            ch.inject((i, from, dest), StageId(from), StageId(dest));
        }
        while ch.in_flight() > 0 {
            for (p, _) in ch.advance() {
                delivered.push(p);
            }
        }
        prop_assert_eq!(delivered.len(), routes.len());
        // Per (from, dest) route, delivery preserves injection order.
        for f in 0..4u16 {
            for d in 5..8u16 {
                let seq: Vec<usize> = delivered
                    .iter()
                    .filter(|&&(_, pf, pd)| pf == f && pd == d)
                    .map(|&(i, _, _)| i)
                    .collect();
                prop_assert!(seq.windows(2).all(|w| w[0] < w[1]), "route {f}->{d}: {seq:?}");
            }
        }
    }

    /// The frontend never panics: arbitrary byte soup either parses or
    /// returns an error.
    #[test]
    fn frontend_never_panics_on_garbage(src in "\\PC{0,400}") {
        let _ = mp5::lang::frontend(&src);
    }

    /// Structured near-miss programs (valid tokens, random arrangement)
    /// also never panic.
    #[test]
    fn frontend_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("struct"), Just("Packet"), Just("int"), Just("void"),
                Just("func"), Just("if"), Just("else"), Just("p"), Just("."),
                Just("h"), Just("r"), Just("["), Just("]"), Just("{"),
                Just("}"), Just("("), Just(")"), Just(";"), Just("="),
                Just("+"), Just("?"), Just(":"), Just("%"), Just("42"),
                Just("hash2"), Just(","),
            ],
            0..60,
        ),
    ) {
        let src = toks.join(" ");
        let _ = mp5::lang::frontend(&src);
    }
}

/// Deterministic regression: an interleaving that once deadlocked the
/// directory (two phantoms under one key) must stay rejected by
/// construction — the switch dedups, and the raw FIFO overwrites are at
/// least memory-safe.
#[test]
fn duplicate_phantom_key_overwrites_directory_safely() {
    let mut fifo: LogicalFifo<u64> = LogicalFifo::new(2, None);
    fifo.push_phantom(key(1), OrderKey(1, 0), PipelineId(0))
        .unwrap();
    fifo.push_phantom(key(1), OrderKey(2, 0), PipelineId(1))
        .unwrap();
    // Only the newer phantom is addressable; the older one is orphaned.
    fifo.insert_data(key(1), 1).unwrap();
    match fifo.pop() {
        PopOutcome::BlockedOnPhantom(k) => assert_eq!(k, key(1)),
        other => panic!("expected orphaned phantom to block, got {other:?}"),
    }
    // Cancelling the orphan unblocks.
    let mut found_orphan = false;
    for e in fifo.iter_entries() {
        if matches!(e, Entry::Phantom { .. }) {
            found_orphan = true;
        }
    }
    assert!(found_orphan);
}
