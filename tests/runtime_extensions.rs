//! Tests for the §3.4 runtime-extension mechanisms: flow-order
//! enforcement via a dummy final-stage state, ECN-style backpressure
//! marking, and stateless-drop starvation handling.

use std::collections::HashMap;

use mp5::banzai::BanzaiSwitch;
use mp5::compiler::{
    compile, compile_with_options, CompileOptions, FlowOrderSpec, Target, FLOW_ORDER_REG,
};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::sim::reordered_flow_fraction;
use mp5::traffic::TraceBuilder;
use mp5::types::{PacketId, Value};

/// A NAT-like program: SYN packets touch per-flow connection state, the
/// rest of the flow is stateless — exactly the §3.4 scenario where
/// stateless-priority can reorder packets within a flow.
const NATISH: &str = "
    struct Packet {
        int src_ip; int dst_ip; int src_port; int dst_port; int proto;
        int is_syn;
        int nat_port;
    };
    int bindings[4] = {0};
    void func(struct Packet p) {
        int idx = hash3(hash2(p.src_ip, p.dst_ip),
                        hash2(p.src_port, p.dst_port), p.proto) % 4;
        if (p.is_syn == 1) {
            bindings[idx] = p.src_port + 10000;
            p.nat_port = bindings[idx];
        } else {
            p.nat_port = 0;
        }
    }";

fn nat_trace(
    prog: &mp5::compiler::CompiledProgram,
    n: usize,
    seed: u64,
) -> Vec<mp5::types::Packet> {
    // A handful of flows, each sending many packets; ~half are "SYN"
    // (stateful) to maximize the mixed stateful/stateless interleaving.
    TraceBuilder::new(n, seed).build(prog.num_fields(), |rng, _, f| {
        let flow = rand::Rng::gen_range(rng, 0..16i64);
        f[0] = flow; // src_ip
        f[1] = 99; // dst_ip
        f[2] = 1000 + flow; // src_port
        f[3] = 80; // dst_port
        f[4] = 6; // proto
        f[5] = i64::from(rand::Rng::gen_bool(rng, 0.5)); // is_syn
    })
}

fn flow_map(trace: &[mp5::types::Packet]) -> HashMap<PacketId, Value> {
    trace.iter().map(|p| (p.id, p.fields[0])).collect()
}

#[test]
fn flow_order_register_lands_in_final_stage() {
    let opts = CompileOptions {
        enforce_flow_order: Some(FlowOrderSpec::default()),
        ..Default::default()
    };
    let prog = compile_with_options(NATISH, &Target::default(), &opts).unwrap();
    prog.validate().unwrap();
    let fo = prog.reg(FLOW_ORDER_REG).expect("dummy register present");
    assert_eq!(
        prog.regs[fo.index()].stage.index(),
        prog.num_stages() - 1,
        "flow-order state must occupy the final stage"
    );
    assert!(
        prog.regs[fo.index()].shardable,
        "flow-hash index is stateless"
    );
    // Every packet now generates a phantom for the final stage.
    let mut fields = vec![0; prog.num_fields()];
    let accesses = prog.resolve(&mut fields);
    assert!(accesses.iter().any(|a| a.reg == fo));
}

#[test]
fn flow_order_enforcement_eliminates_reordering() {
    let plain = compile(NATISH, &Target::default()).unwrap();
    let ordered = compile_with_options(
        NATISH,
        &Target::default(),
        &CompileOptions {
            enforce_flow_order: Some(FlowOrderSpec::default()),
            ..Default::default()
        },
    )
    .unwrap();

    let mut saw_reordering = false;
    for seed in 0..6 {
        let trace = nat_trace(&plain, 6000, seed);
        let flows = flow_map(&trace);
        let arrival: Vec<PacketId> = trace.iter().map(|p| p.id).collect();

        // Plain program: stateless packets overtake queued SYNs.
        let rep = Mp5Switch::new(plain.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let completion: Vec<PacketId> = rep.completions.iter().map(|&(p, _)| p).collect();
        let frac_plain = reordered_flow_fraction(&flows, &arrival, &completion);
        saw_reordering |= frac_plain > 0.0;

        // With the dummy final-stage state every flow exits in order.
        let trace2 = nat_trace(&ordered, 6000, seed);
        let flows2 = flow_map(&trace2);
        let arrival2: Vec<PacketId> = trace2.iter().map(|p| p.id).collect();
        let rep2 = Mp5Switch::new(ordered.clone(), SwitchConfig::mp5(4)).run(trace2);
        let completion2: Vec<PacketId> = rep2.completions.iter().map(|&(p, _)| p).collect();
        let frac_ordered = reordered_flow_fraction(&flows2, &arrival2, &completion2);
        assert_eq!(
            frac_ordered, 0.0,
            "seed {seed}: flow-order enforcement must eliminate reordering"
        );
    }
    assert!(
        saw_reordering,
        "the plain NAT program should reorder at least one flow somewhere \
         (otherwise this test is vacuous)"
    );
}

#[test]
fn flow_order_preserves_functional_equivalence() {
    let ordered = compile_with_options(
        NATISH,
        &Target::default(),
        &CompileOptions {
            enforce_flow_order: Some(FlowOrderSpec::default()),
            ..Default::default()
        },
    )
    .unwrap();
    let trace = nat_trace(&ordered, 3000, 42);
    let reference = BanzaiSwitch::new(ordered.clone()).run(trace.clone());
    let rep = Mp5Switch::new(ordered, SwitchConfig::mp5(4)).run(trace);
    assert!(rep.result.equivalent_to(&reference));
}

#[test]
fn flow_order_requires_key_fields() {
    let err = compile_with_options(
        "struct Packet { int x; };
         void func(struct Packet p) { p.x = 1; }",
        &Target::default(),
        &CompileOptions {
            enforce_flow_order: Some(FlowOrderSpec::default()),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("src_ip"), "{err}");
}

#[test]
fn ecn_marks_under_congestion_only() {
    // A global counter saturates one pipeline: queues build, packets
    // get marked.
    let prog = compile(
        "struct Packet { int seq; };
         int count = 0;
         void func(struct Packet p) { count = count + 1; p.seq = count; }",
        &Target::default(),
    )
    .unwrap();
    let congested = Mp5Switch::new(
        prog.clone(),
        SwitchConfig {
            ecn_threshold: Some(8),
            ..SwitchConfig::mp5(4)
        },
    )
    .run(TraceBuilder::new(4000, 1).build(prog.num_fields(), |_, _, _| {}));
    assert!(
        congested.ecn_marked > congested.offered / 2,
        "a saturating program should mark most packets, got {} of {}",
        congested.ecn_marked,
        congested.offered
    );

    // The same program under light load (big packets) marks nothing.
    let light = Mp5Switch::new(
        prog.clone(),
        SwitchConfig {
            ecn_threshold: Some(8),
            ..SwitchConfig::mp5(4)
        },
    )
    .run(
        TraceBuilder::new(2000, 2)
            .size(mp5::traffic::SizeDist::Fixed(1500))
            .build(prog.num_fields(), |_, _, _| {}),
    );
    assert_eq!(light.ecn_marked, 0, "no congestion, no marks");

    // Marking must not alter processing results.
    let unmarked = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4))
        .run(TraceBuilder::new(4000, 1).build(prog.num_fields(), |_, _, _| {}));
    assert_eq!(congested.result.final_regs, unmarked.result.final_regs);
    assert_eq!(congested.result.outputs, unmarked.result.outputs);
}

#[test]
fn starvation_threshold_sheds_stateless_packets() {
    // Half the packets hammer one state (queueing on pipeline 0), the
    // other half are stateless and — with priority — starve the queue.
    let src = "struct Packet { int kind; int o; };
        int hot = 0;
        void func(struct Packet p) {
            if (p.kind == 1) { hot = hot + 1; }
            p.o = p.kind;
        }";
    let prog = compile(src, &Target::default()).unwrap();
    let mk_trace = |seed| {
        TraceBuilder::new(6000, seed).build(prog.num_fields(), |rng, _, f| {
            f[0] = i64::from(rand::Rng::gen_bool(rng, 0.5));
        })
    };
    let without = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(mk_trace(3));
    assert_eq!(without.drops.starvation, 0);

    let with = Mp5Switch::new(
        prog.clone(),
        SwitchConfig {
            starvation_threshold: Some(16),
            ..SwitchConfig::mp5(4)
        },
    )
    .run(mk_trace(3));
    assert!(
        with.drops.starvation > 0,
        "aged stateful packets must trigger stateless drops"
    );
    // Everything offered is either completed or an accounted drop.
    assert_eq!(with.completed + with.drops.total_data(), with.offered);
}

#[test]
fn pairs_atom_program_is_equivalent_on_mp5() {
    // Two registers entangled by shared dataflow need a Banzai
    // "pairs"-class atom: both arrays co-reside in one stage, pinned to
    // one pipeline, with stage-level serialization.
    let src = "struct Packet { int h; int o; };
        int ema[8] = {0};
        int peak[8] = {0};
        void func(struct Packet p) {
            int i = p.h % 8;
            int avg = (ema[i] * 7 + p.h * 16) / 8;
            int top = max(peak[i], avg);
            ema[i] = avg + peak[i] / 128;
            peak[i] = top;
            p.o = top;
        }";
    let prog = compile(src, &Target::default()).unwrap();
    assert!(
        prog.regs.iter().all(|r| !r.shardable),
        "entangled registers must be pinned"
    );
    // Both registers share one stage.
    assert_eq!(prog.regs[0].stage, prog.regs[1].stage);
    let trace = TraceBuilder::new(3000, 21).build(prog.num_fields(), |rng, _, f| {
        f[0] = rand::Rng::gen_range(rng, 0..200);
    });
    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
    let report = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace);
    assert!(report.result.equivalent_to(&reference));

    // A pairs-less target rejects the same program.
    let no_pairs = Target {
        allow_pairs: false,
        ..Target::default()
    };
    assert!(compile(src, &no_pairs).is_err());
}
