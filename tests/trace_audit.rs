//! End-to-end checks of the tracing subsystem: traced runs are
//! bit-identical and deterministic, the offline auditor passes clean
//! MP5 runs of all four paper applications, and it independently
//! rediscovers the C1 violations of the no-D4 ablation with the same
//! per-packet attribution as `mp5-sim`'s online counter.

use mp5::banzai::BanzaiSwitch;
use mp5::baselines::{RecircConfig, RecircSwitch};
use mp5::compiler::{compile, Target};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::sim::c1_violation_sets;
use mp5::sim::experiments::app_trace;
use mp5::trace::{audit, stream_hash, Check, Event, MemSink};
use mp5::traffic::TraceBuilder;
use mp5::types::PacketId;

/// The contended Figure-3 style program: half the packets serialize on
/// a hot state in the first stateful stage, the rest fly past and
/// (without D4) overtake them at the second.
const CONTENDED: &str = "struct Packet { int a; int b; int o; };
    int r1[2] = {0};
    int r2[64] = {0};
    void func(struct Packet p) {
        if (p.a == 0) { r1[0] = r1[0] + 1; }
        r2[p.b % 64] = r2[p.b % 64] + 1;
        p.o = r2[p.b % 64];
    }";

fn contended_run(cfg: SwitchConfig) -> (mp5::banzai::RunResult, mp5::core::RunReport, Vec<Event>) {
    let prog = compile(CONTENDED, &Target::default()).unwrap();
    let nf = prog.num_fields();
    let trace = TraceBuilder::new(4000, 5).build(nf, |r, _, f| {
        use rand::Rng;
        f[0] = r.gen_range(0..2);
        f[1] = r.gen_range(0..64);
    });
    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
    let (report, sink) = Mp5Switch::with_sink(prog, cfg, MemSink::new()).run_traced(trace);
    (reference, report, sink.into_events())
}

/// Tracing is an observer: the same seeded configuration run twice
/// produces byte-identical event streams (hash over the JSONL
/// encoding of every event), and a traced run matches an untraced one.
#[test]
fn traced_runs_are_deterministic() {
    let (_, rep_a, ev_a) = contended_run(SwitchConfig::mp5(4));
    let (_, rep_b, ev_b) = contended_run(SwitchConfig::mp5(4));
    assert_eq!(rep_a.completed, rep_b.completed);
    assert_eq!(rep_a.result.final_regs, rep_b.result.final_regs);
    assert_eq!(ev_a.len(), ev_b.len(), "event counts must match");
    assert_eq!(
        stream_hash(&ev_a),
        stream_hash(&ev_b),
        "same seed, same config => identical trace streams"
    );
    // And a different seed path (config) must not collide trivially.
    let (_, _, ev_c) = contended_run(SwitchConfig::no_d4(4));
    assert_ne!(stream_hash(&ev_a), stream_hash(&ev_c));
}

/// Positive control: traced MP5 runs of all four §4.4 applications
/// audit clean — every invariant the offline auditor re-verifies
/// (phantom pairing, stateless priority, C1 serial order, packet
/// conservation) holds on the real workloads.
#[test]
fn paper_apps_audit_clean_on_mp5() {
    for app in &mp5::apps::PAPER_APPS {
        let (prog, trace) = app_trace(app, 6_000, 11);
        let (report, sink) =
            Mp5Switch::with_sink(prog, SwitchConfig::mp5(4), MemSink::new()).run_traced(trace);
        let events = sink.into_events();
        assert!(
            !events.is_empty(),
            "{}: traced run must emit events",
            app.name
        );
        let rep = audit(&events);
        assert!(
            rep.is_clean(),
            "{}: clean MP5 run must audit clean, got:\n{rep}",
            app.name
        );
        assert_eq!(
            rep.packets, report.offered,
            "{}: auditor must see every admitted packet",
            app.name
        );
    }
}

/// The recirculation baseline also audits clean on its own event
/// stream (it sacrifices C1 compliance *across* designs, but its trace
/// is internally consistent: conservation + pairing hold).
#[test]
fn recirc_trace_conserves_packets() {
    let prog = compile(CONTENDED, &Target::default()).unwrap();
    let nf = prog.num_fields();
    let trace = TraceBuilder::new(2000, 9).build(nf, |r, _, f| {
        use rand::Rng;
        f[0] = r.gen_range(0..2);
        f[1] = r.gen_range(0..64);
    });
    let (rep, sink) =
        RecircSwitch::with_sink(prog, RecircConfig::new(4), MemSink::new()).run_traced(trace);
    let events = sink.into_events();
    let audit_rep = audit(&events);
    assert_eq!(
        audit_rep.count(Check::Conservation),
        0,
        "recirc must conserve packets:\n{audit_rep}"
    );
    assert_eq!(audit_rep.packets, rep.report.offered);
}

/// Negative control: the no-D4 ablation's trace fails the audit with
/// C1 violations, and the auditor's per-packet blame matches the
/// online `c1_violation_sets` computation packet for packet.
#[test]
fn no_d4_audit_flags_c1_and_matches_online_counter() {
    let (reference, report, events) = contended_run(SwitchConfig::no_d4(4));
    let rep = audit(&events);
    assert!(
        rep.count(Check::C1) > 0,
        "no-D4 under contention must violate C1, got:\n{rep}"
    );
    assert!(!rep.is_clean());

    let (online_violators, online_accessors) =
        c1_violation_sets(&reference.access_log, &report.result.access_log);
    assert!(!online_violators.is_empty());
    let offline: std::collections::HashSet<PacketId> = rep.c1_violators.iter().copied().collect();
    assert_eq!(
        offline, online_violators,
        "offline auditor and online counter must blame the same packets"
    );
    assert_eq!(rep.c1_accessors as usize, online_accessors.len());
    let online_fraction = online_violators.len() as f64 / online_accessors.len() as f64;
    assert!((rep.c1_fraction() - online_fraction).abs() < 1e-12);
}

/// The clean MP5 run of the same contended program has zero C1
/// violations both online and offline.
#[test]
fn mp5_contended_is_c1_clean_online_and_offline() {
    let (reference, report, events) = contended_run(SwitchConfig::mp5(4));
    let rep = audit(&events);
    assert!(rep.is_clean(), "MP5 with D4 must audit clean:\n{rep}");
    let (online_violators, _) = c1_violation_sets(&reference.access_log, &report.result.access_log);
    assert!(online_violators.is_empty());
}
