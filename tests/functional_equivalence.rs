//! Property-based functional equivalence: the paper's headline claim.
//!
//! §2.2.1 defines functional equivalence over *all possible packet
//! processing programs and input packet streams*. We approximate "all"
//! with proptest: generate random stateful programs from a template
//! grammar (counters, predicated updates, ternary reads, cross-register
//! value chains, stateful predicates) and random line-rate packet
//! streams, then require that MP5 — at a random pipeline count —
//! produces exactly the single-pipeline Banzai switch's final register
//! state, per-packet outputs, and per-state access order (condition C1).
//!
//! A negative control checks the property is non-trivial: the no-D4
//! ablation must *fail* it on at least some generated cases.

use proptest::prelude::*;

/// proptest's prelude exports its own `Rng` trait (for a different
/// `rand` major); route field draws through the workspace's rand
/// explicitly.
fn draw64(rng: &mut rand::rngs::SmallRng) -> i64 {
    rand::Rng::gen_range(rng, 0..64)
}

use mp5::banzai::BanzaiSwitch;
use mp5::compiler::{compile, Target};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::traffic::TraceBuilder;

/// One generated statement template.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `r[p.hF % S] = r[p.hF % S] + delta;`
    Bump {
        reg: usize,
        field: usize,
        delta: i64,
    },
    /// `p.out = r[p.hF % S];`
    ReadOut { reg: usize, field: usize },
    /// `if (p.hF > t) { r[p.hF % S] = p.hF; }`
    PredUpdate {
        reg: usize,
        field: usize,
        thresh: i64,
    },
    /// `p.out = (p.hF % 2 == 0) ? rA[p.hF % SA] : rB[p.hF % SB];`
    TernaryRead { a: usize, b: usize, field: usize },
    /// `int v = rS[p.hF % S]; rD[p.hG % SD] = rD[p.hG % SD] + v;`
    Chain {
        src: usize,
        dst: usize,
        f: usize,
        g: usize,
    },
    /// `if (rG[0] > 0) { rD[p.hF % SD] = rD[p.hF % SD] + 1; }` —
    /// a stateful predicate, exercising speculative phantoms.
    StatefulPred {
        gate: usize,
        reg: usize,
        field: usize,
    },
}

#[derive(Debug, Clone)]
struct GenProgram {
    reg_sizes: Vec<u32>,
    stmts: Vec<GenStmt>,
}

const NFIELDS: usize = 4;

impl GenProgram {
    fn source(&self) -> String {
        let mut s = String::from("struct Packet { ");
        for i in 0..NFIELDS {
            s.push_str(&format!("int h{i}; "));
        }
        s.push_str("int out; };\n");
        for (i, size) in self.reg_sizes.iter().enumerate() {
            s.push_str(&format!("int r{i}[{size}] = {{{}}};\n", (i as i64) + 1));
        }
        s.push_str("void func(struct Packet p) {\n");
        let mut locals = 0usize;
        for st in &self.stmts {
            match st {
                GenStmt::Bump { reg, field, delta } => {
                    let sz = self.reg_sizes[*reg];
                    s.push_str(&format!(
                        "r{reg}[p.h{field} % {sz}] = r{reg}[p.h{field} % {sz}] + {delta};\n"
                    ));
                }
                GenStmt::ReadOut { reg, field } => {
                    let sz = self.reg_sizes[*reg];
                    s.push_str(&format!("p.out = r{reg}[p.h{field} % {sz}];\n"));
                }
                GenStmt::PredUpdate { reg, field, thresh } => {
                    let sz = self.reg_sizes[*reg];
                    s.push_str(&format!(
                        "if (p.h{field} > {thresh}) {{ r{reg}[p.h{field} % {sz}] = p.h{field}; }}\n"
                    ));
                }
                GenStmt::TernaryRead { a, b, field } => {
                    let (sa, sb) = (self.reg_sizes[*a], self.reg_sizes[*b]);
                    s.push_str(&format!(
                        "p.out = (p.h{field} % 2 == 0) ? r{a}[p.h{field} % {sa}] : r{b}[p.h{field} % {sb}];\n"
                    ));
                }
                GenStmt::Chain { src, dst, f, g } => {
                    let (ss, sd) = (self.reg_sizes[*src], self.reg_sizes[*dst]);
                    let v = format!("v{locals}");
                    locals += 1;
                    s.push_str(&format!(
                        "int {v} = r{src}[p.h{f} % {ss}];\n\
                         r{dst}[p.h{g} % {sd}] = r{dst}[p.h{g} % {sd}] + {v};\n"
                    ));
                }
                GenStmt::StatefulPred { gate, reg, field } => {
                    let sz = self.reg_sizes[*reg];
                    s.push_str(&format!(
                        "if (r{gate}[0] > 0) {{ r{reg}[p.h{field} % {sz}] = r{reg}[p.h{field} % {sz}] + 1; }}\n"
                    ));
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

fn stmt_strategy(nregs: usize) -> impl Strategy<Value = GenStmt> {
    let r = 0..nregs;
    let f = 0..NFIELDS;
    prop_oneof![
        (r.clone(), f.clone(), 1i64..5).prop_map(|(reg, field, delta)| GenStmt::Bump {
            reg,
            field,
            delta
        }),
        (r.clone(), f.clone()).prop_map(|(reg, field)| GenStmt::ReadOut { reg, field }),
        (r.clone(), f.clone(), 0i64..32)
            .prop_map(|(reg, field, thresh)| { GenStmt::PredUpdate { reg, field, thresh } }),
        (r.clone(), r.clone(), f.clone()).prop_map(|(a, b, field)| GenStmt::TernaryRead {
            a,
            b,
            field
        }),
        (r.clone(), r.clone(), f.clone(), 0..NFIELDS)
            .prop_map(|(src, dst, f, g)| { GenStmt::Chain { src, dst, f, g } }),
        (r.clone(), r, f).prop_map(|(gate, reg, field)| GenStmt::StatefulPred { gate, reg, field }),
    ]
}

fn program_strategy() -> impl Strategy<Value = GenProgram> {
    (1usize..=3)
        .prop_flat_map(|nregs| {
            (
                proptest::collection::vec(1u32..32, nregs),
                proptest::collection::vec(stmt_strategy(nregs), 1..4),
            )
        })
        .prop_map(|(reg_sizes, stmts)| GenProgram { reg_sizes, stmts })
}

/// Some generated statement mixes are legitimately uncompilable (e.g. a
/// `Chain` from a register into itself forms a valid single atom, but a
/// chain that entangles two registers is a cross-register atom the
/// machine rejects). Those cases are discarded, not failed.
fn try_compile(src: &str) -> Option<mp5::compiler::CompiledProgram> {
    compile(src, &Target::default()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline theorem: for every generated program and stream,
    /// MP5 ≡ single pipeline (registers, outputs, and access order).
    #[test]
    fn mp5_is_functionally_equivalent_to_single_pipeline(
        gp in program_strategy(),
        k in prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)],
        npackets in 50usize..250,
        seed in 0u64..1_000,
    ) {
        let Some(prog) = try_compile(&gp.source()) else {
            return Ok(()); // machine-rejected template: vacuous
        };
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(npackets, seed).build(nf, |rng, _, f| {
            for v in f.iter_mut().take(NFIELDS) {
                *v = draw64(rng);
            }
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(k)).run(trace);
        prop_assert_eq!(report.completed as usize, npackets);
        prop_assert!(
            report.result.equivalent_to(&reference),
            "program:\n{}\nk={} seed={}",
            gp.source(), k, seed
        );
    }

    /// The ideal baseline must satisfy the same equivalence (it changes
    /// scheduling, never semantics).
    #[test]
    fn ideal_mp5_is_functionally_equivalent(
        gp in program_strategy(),
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let Some(prog) = try_compile(&gp.source()) else { return Ok(()); };
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(150, seed).build(nf, |rng, _, f| {
            for v in f.iter_mut().take(NFIELDS) {
                *v = draw64(rng);
            }
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, SwitchConfig::ideal(k)).run(trace);
        prop_assert!(report.result.equivalent_to(&reference));
    }

    /// Serial execution of the compiled program must match the TAC
    /// reference semantics exactly (compiler soundness).
    #[test]
    fn compiled_execution_matches_tac_semantics(
        gp in program_strategy(),
        inputs in proptest::collection::vec(
            proptest::collection::vec(0i64..64, NFIELDS), 1..40),
    ) {
        let src = gp.source();
        let Some(prog) = try_compile(&src) else { return Ok(()); };
        let tac = mp5::lang::frontend(&src).expect("frontend succeeded before");
        let mut regs_c = prog.initial_regs();
        let mut regs_t = tac.initial_regs();
        for inp in &inputs {
            let mut fc = vec![0; prog.num_fields()];
            fc[..NFIELDS].copy_from_slice(inp);
            prog.execute_serial(&mut fc, &mut regs_c);
            let mut ft = vec![0; tac.field_names.len()];
            ft[..NFIELDS].copy_from_slice(inp);
            tac.execute(&mut ft, &mut regs_t);
            prop_assert_eq!(&fc[..prog.declared_fields], &ft[..tac.declared_fields]);
        }
        prop_assert_eq!(regs_c, regs_t);
    }
}

/// Negative control: the equivalence property is not vacuous — the
/// no-D4 ablation must fail it on a contended two-stage program.
#[test]
fn no_d4_fails_the_equivalence_property() {
    let src = "struct Packet { int a; int b; int o; };
        int r1[2] = {0};
        int r2[64] = {0};
        void func(struct Packet p) {
            if (p.a == 0) { r1[0] = r1[0] + 1; }
            r2[p.b % 64] = r2[p.b % 64] + 1;
            p.o = r2[p.b % 64];
        }";
    let prog = compile(src, &Target::default()).unwrap();
    let nf = prog.num_fields();
    let mut failed = false;
    for seed in 0..5 {
        let trace = TraceBuilder::new(4000, seed).build(nf, |rng, _, f| {
            f[0] = draw64(rng) % 2;
            f[1] = draw64(rng);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let nod4 = Mp5Switch::new(prog.clone(), SwitchConfig::no_d4(4)).run(trace);
        if !nod4.result.equivalent_to(&reference) {
            failed = true;
            break;
        }
    }
    assert!(failed, "no-D4 must break equivalence under contention");
}

/// Guard against the property becoming vacuous: each statement template
/// must compile on its own (only *combinations* may legally be
/// rejected, e.g. cross-register atoms).
#[test]
fn every_statement_template_compiles() {
    let cases = [
        GenProgram {
            reg_sizes: vec![8],
            stmts: vec![GenStmt::Bump {
                reg: 0,
                field: 0,
                delta: 2,
            }],
        },
        GenProgram {
            reg_sizes: vec![8],
            stmts: vec![GenStmt::ReadOut { reg: 0, field: 1 }],
        },
        GenProgram {
            reg_sizes: vec![8],
            stmts: vec![GenStmt::PredUpdate {
                reg: 0,
                field: 2,
                thresh: 9,
            }],
        },
        GenProgram {
            reg_sizes: vec![8, 4],
            stmts: vec![GenStmt::TernaryRead {
                a: 0,
                b: 1,
                field: 3,
            }],
        },
        GenProgram {
            reg_sizes: vec![8, 4],
            stmts: vec![GenStmt::Chain {
                src: 0,
                dst: 1,
                f: 0,
                g: 1,
            }],
        },
        GenProgram {
            reg_sizes: vec![8, 4],
            stmts: vec![GenStmt::StatefulPred {
                gate: 0,
                reg: 1,
                field: 0,
            }],
        },
        GenProgram {
            reg_sizes: vec![8],
            stmts: vec![GenStmt::StatefulPred {
                gate: 0,
                reg: 0,
                field: 0,
            }],
        },
    ];
    for gp in &cases {
        assert!(
            try_compile(&gp.source()).is_some(),
            "template failed to compile:\n{}",
            gp.source()
        );
    }
}
