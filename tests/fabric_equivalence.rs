//! Fabric-level determinism and conservation: a multi-switch leaf–spine
//! run is a pure function of `(topology, config, workload)` — repeated
//! runs and both cycle engines produce bit-identical [`FabricReport`]s
//! — and every injected packet is delivered or accounted to exactly one
//! drop cause.

use mp5::core::{EngineMode, SwitchConfig};
use mp5::topo::{Fabric, FabricConfig, FabricReport, RouteMode, SpineKill, TopologyConfig};
use mp5::traffic::{DcPattern, DcWorkload};

fn run_fabric(
    leaves: usize,
    spines: usize,
    seed: u64,
    engine: EngineMode,
    kill: Option<SpineKill>,
) -> FabricReport {
    let app = mp5::apps::by_name("heavy_hitter").expect("app exists");
    let prog = app.compile().expect("app compiles");
    let topo = TopologyConfig::leaf_spine(leaves, spines, 2)
        .validate()
        .expect("valid topology");
    let hosts = topo.num_hosts();
    let mut cfg = FabricConfig::new(
        SwitchConfig::mp5(4)
            .with_hardware_fifos()
            .with_engine(engine),
    );
    cfg.seed = seed;
    cfg.kill_spine = kill;
    let workload = DcWorkload::new(hosts, 800, seed)
        .load(0.7)
        .max_pkts_per_flow(4)
        .pattern(DcPattern::Uniform);
    let fabric = Fabric::new(topo, cfg, prog.clone()).expect("valid fabric");
    let fill = app.fill;
    fabric
        .run(workload.stream(), |key, rng, fields| {
            fill(&prog, key, rng, fields)
        })
        .report
}

#[test]
fn conservation_closes_on_every_seed_and_shape() {
    for &(leaves, spines) in &[(2usize, 2usize), (4, 2)] {
        for seed in [1u64, 2, 3] {
            let r = run_fabric(leaves, spines, seed, EngineMode::Sequential, None);
            assert!(
                r.conservation_closed(),
                "{leaves}x{spines} seed {seed}: injected {} != delivered {} + drops",
                r.injected,
                r.delivered
            );
            assert!(r.injected > 0 && r.delivered > 0);
            assert_eq!(r.flows_started, 800);
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    for &(leaves, spines) in &[(2usize, 2usize), (4, 2)] {
        for seed in [1u64, 2, 3] {
            let a = run_fabric(leaves, spines, seed, EngineMode::Sequential, None);
            let b = run_fabric(leaves, spines, seed, EngineMode::Sequential, None);
            assert_eq!(a, b, "{leaves}x{spines} seed {seed}: rerun diverged");
        }
    }
}

#[test]
fn sequential_and_parallel_engines_agree() {
    for &(leaves, spines) in &[(2usize, 2usize), (4, 2)] {
        for seed in [1u64, 2, 3] {
            let seq = run_fabric(leaves, spines, seed, EngineMode::Sequential, None);
            let par = run_fabric(leaves, spines, seed, EngineMode::Parallel(3), None);
            assert_eq!(
                seq, par,
                "{leaves}x{spines} seed {seed}: engines diverged \
                 (digest {:#x} vs {:#x})",
                seq.delivery_digest, par.delivery_digest
            );
        }
    }
}

#[test]
fn seeds_actually_change_the_run() {
    let a = run_fabric(2, 2, 1, EngineMode::Sequential, None);
    let b = run_fabric(2, 2, 2, EngineMode::Sequential, None);
    assert_ne!(
        a.delivery_digest, b.delivery_digest,
        "different seeds must produce different traffic"
    );
}

#[test]
fn spine_kill_degrades_but_stays_conserved_and_deterministic() {
    let kill = Some(SpineKill {
        spine: 4, // 4 leaves → spines are ids 4 and 5
        at_tick: 200,
    });
    let healthy = run_fabric(4, 2, 1, EngineMode::Sequential, None);
    let a = run_fabric(4, 2, 1, EngineMode::Sequential, kill);
    let b = run_fabric(4, 2, 1, EngineMode::Parallel(2), kill);
    assert_eq!(a, b, "kill run must stay engine-deterministic");
    assert!(a.conservation_closed(), "kill run ledger must close");
    assert!(a.switches[4].dead && !a.switches[5].dead);
    // Traffic still flows over the surviving spine...
    assert!(a.delivered > healthy.delivered / 2, "fabric collapsed");
    // ...and the loss is visible in the dead-path accounting.
    assert!(
        a.lost_in_dead + a.dropped_to_dead + a.dropped_no_route > 0 || a.delivered == a.injected,
        "a mid-run kill with traffic in flight should strand packets"
    );
}

#[test]
fn invalid_kill_targets_are_rejected_at_construction() {
    use mp5::topo::FabricError;
    let app = mp5::apps::by_name("heavy_hitter").expect("app exists");
    let prog = app.compile().expect("app compiles");
    let topo = TopologyConfig::leaf_spine(2, 2, 2)
        .validate()
        .expect("valid topology");
    // Switch 0 is a leaf; switch 9 does not exist. Both must fail
    // cleanly instead of panicking mid-run.
    for bad in [0u32, 9] {
        let mut cfg = FabricConfig::new(SwitchConfig::mp5(4).with_hardware_fifos());
        cfg.kill_spine = Some(SpineKill {
            spine: bad,
            at_tick: 100,
        });
        match Fabric::new(topo.clone(), cfg, prog.clone()) {
            Ok(_) => panic!("kill target {bad} must be rejected"),
            Err(err) => assert!(matches!(
                err,
                FabricError::KillTargetNotASpine { switch, switches: 4 } if switch == bad
            )),
        }
    }
}

#[test]
fn flowlet_routing_is_deterministic_too() {
    let app = mp5::apps::by_name("flowlet").expect("app exists");
    let prog = app.compile().expect("app compiles");
    let topo = TopologyConfig::leaf_spine(2, 2, 2)
        .validate()
        .expect("valid topology");
    let hosts = topo.num_hosts();
    let mk = || {
        let mut cfg = FabricConfig::new(SwitchConfig::mp5(4).with_hardware_fifos());
        cfg.routing = RouteMode::Flowlet { gap: 20_000 };
        cfg.seed = 7;
        cfg
    };
    let workload = DcWorkload::new(hosts, 500, 7).max_pkts_per_flow(6);
    let fill = app.fill;
    let mut reports = Vec::new();
    for _ in 0..2 {
        let fabric = Fabric::new(topo.clone(), mk(), prog.clone()).expect("valid fabric");
        reports.push(
            fabric
                .run(workload.stream(), |key, rng, fields| {
                    fill(&prog, key, rng, fields)
                })
                .report,
        );
    }
    assert_eq!(reports[0], reports[1]);
    assert!(reports[0].conservation_closed());
}
