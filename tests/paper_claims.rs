//! End-to-end checks of the paper's headline quantitative claims
//! (shape, not absolute numbers — see DESIGN.md §7).

use mp5::asic::{AsicModel, PAPER_TABLE1};
use mp5::banzai::BanzaiSwitch;
use mp5::baselines::{RecircConfig, RecircSwitch};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::sim::c1_violation_fraction;
use mp5::sim::experiments::app_trace;
use mp5::sim::synth::{synthetic_compiled, synthetic_trace, SynthConfig};
use mp5::traffic::AccessPattern;

/// §4.4: all four real applications process packets at line rate on
/// MP5 at the paper's default 4 pipelines, with functional equivalence
/// and bounded queues.
#[test]
fn real_applications_hit_line_rate_with_equivalence() {
    for app in &mp5::apps::PAPER_APPS {
        let (prog, trace) = app_trace(app, 15_000, 1);
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(4)).run(trace);
        assert!(
            report.normalized_throughput() > 0.95,
            "{}: expected ~line rate, got {:.3}",
            app.name,
            report.normalized_throughput()
        );
        assert!(
            report.result.equivalent_to(&reference),
            "{}: functional equivalence must hold",
            app.name
        );
        assert!(
            report.max_queue_depth <= 64,
            "{}: queues should stay shallow (paper saw <= 11), got {}",
            app.name,
            report.max_queue_depth
        );
    }
}

/// §4.3.2 D4: MP5 has exactly zero C1 violations; no-D4 and the
/// recirculation switch both violate substantially on skewed traffic.
#[test]
fn d4_ablation_violation_ordering() {
    let cfg = SynthConfig {
        pattern: AccessPattern::paper_skewed(),
        packets: 12_000,
        seed: 77,
        ..Default::default()
    };
    let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
    let trace = synthetic_trace(&prog, &cfg);
    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());

    let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
    let nod4 = Mp5Switch::new(prog.clone(), SwitchConfig::no_d4(4)).run(trace.clone());
    let rec = RecircSwitch::new(prog, RecircConfig::new(4)).run(trace);

    let v_mp5 = c1_violation_fraction(&reference.access_log, &mp5.result.access_log);
    let v_nod4 = c1_violation_fraction(&reference.access_log, &nod4.result.access_log);
    let v_rec = c1_violation_fraction(&reference.access_log, &rec.report.result.access_log);

    assert_eq!(v_mp5, 0.0, "MP5 must never violate C1");
    assert!(v_nod4 > 0.02, "no-D4 must violate measurably, got {v_nod4}");
    assert!(v_rec > 0.02, "recirc must violate measurably, got {v_rec}");
}

/// §3.5.2's fundamental limit: a global single-state program caps MP5
/// at one pipeline's rate, and more pipelines means a lower normalized
/// ceiling.
#[test]
fn fundamental_limit_single_state() {
    let prog = mp5::compiler::compile(
        "struct Packet { int seq; };
         int count = 0;
         void func(struct Packet p) { count = count + 1; p.seq = count; }",
        &mp5::compiler::Target::default(),
    )
    .unwrap();
    let mut last = f64::INFINITY;
    for k in [2usize, 4, 8] {
        let trace =
            mp5::traffic::TraceBuilder::new(6_000, 3).build(prog.num_fields(), |_, _, _| {});
        let rep = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(k)).run(trace);
        let t = rep.normalized_throughput();
        let ceiling = 1.0 / k as f64;
        assert!(
            (t - ceiling).abs() < 0.08,
            "k={k}: throughput {t:.3} should sit at the 1/k={ceiling:.3} limit"
        );
        assert!(t < last);
        last = t;
    }
}

/// §4.2: the analytic ASIC model reproduces every Table 1 cell within
/// 10 % and meets 1 GHz everywhere the paper reports.
#[test]
fn table1_reproduction() {
    let m = AsicModel::default();
    for &(k, s, paper) in PAPER_TABLE1 {
        let ours = m.area_mm2(k, s);
        assert!(
            ((ours - paper) / paper).abs() < 0.10,
            "k={k},s={s}: {ours:.3} vs paper {paper:.3}"
        );
        assert!(m.meets_1ghz(k));
    }
}

/// §4.3.3 sensitivity shapes on a reduced sweep: throughput decreases
/// in k, increases in register size and packet size; MP5 ≈ ideal.
#[test]
fn sensitivity_shapes() {
    let run = |cfg: SynthConfig, sw: SwitchConfig| {
        let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
        let trace = synthetic_trace(&prog, &cfg);
        Mp5Switch::new(prog, sw).run(trace).normalized_throughput()
    };
    let base = SynthConfig {
        packets: 8_000,
        seed: 5,
        ..Default::default()
    };

    // (a) more pipelines -> lower normalized throughput.
    let k2 = run(
        SynthConfig {
            pipelines: 2,
            ..base
        },
        SwitchConfig::mp5(2),
    );
    let k16 = run(
        SynthConfig {
            pipelines: 16,
            ..base
        },
        SwitchConfig::mp5(16),
    );
    assert!(k2 > k16, "k=2 {k2:.3} vs k=16 {k16:.3}");

    // (c) bigger register arrays -> higher throughput. Compare below
    // the saturation knee: once reg_size >= pipelines, every pipeline
    // owns a dedicated shard and throughput plateaus (runs at size 4
    // and 4096 differ only by noise), so the sensitivity is measured
    // from a genuinely contended size.
    let r2 = run(
        SynthConfig {
            reg_size: 2,
            ..base
        },
        SwitchConfig::mp5(4),
    );
    let r4096 = run(
        SynthConfig {
            reg_size: 4096,
            ..base
        },
        SwitchConfig::mp5(4),
    );
    assert!(r4096 > r2, "size 4096 {r4096:.3} vs size 2 {r2:.3}");

    // (d) bigger packets -> line rate by 128 B.
    let p128 = run(
        SynthConfig {
            packet_size: 128,
            ..base
        },
        SwitchConfig::mp5(4),
    );
    assert!(p128 > 0.9, "128 B should reach ~line rate, got {p128:.3}");

    // MP5 close to the ideal upper bound.
    let mp5 = run(base, SwitchConfig::mp5(4));
    let ideal = run(base, SwitchConfig::ideal(4));
    assert!(
        ideal >= mp5 - 0.05,
        "ideal {ideal:.3} should not trail MP5 {mp5:.3}"
    );
    assert!(
        mp5 >= ideal - 0.15,
        "MP5 {mp5:.3} should be close to ideal {ideal:.3} (§4.3.3)"
    );
}

/// §2.3.1 limitation: a stateless program runs at line rate with
/// functional equivalence on *every* design, including today's
/// switches.
#[test]
fn stateless_is_easy_for_everyone() {
    let prog = mp5::compiler::compile(
        "struct Packet { int a; int b; };
         void func(struct Packet p) { p.b = p.a * 7 + 3; }",
        &mp5::compiler::Target::default(),
    )
    .unwrap();
    let trace = mp5::traffic::TraceBuilder::new(10_000, 9).build(prog.num_fields(), |rng, _, f| {
        f[0] = rand::Rng::gen_range(rng, 0..1000);
    });
    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
    for report in [
        Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone()),
        Mp5Switch::new(prog.clone(), SwitchConfig::no_d4(4)).run(trace.clone()),
    ] {
        assert!(report.result.equivalent_to(&reference));
        assert!(report.normalized_throughput() > 0.95);
    }
    let rec = RecircSwitch::new(prog, RecircConfig::new(4)).run(trace);
    assert!(rec.report.result.equivalent_to(&reference));
    assert!(rec.report.normalized_throughput() > 0.95);
}
