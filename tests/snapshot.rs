//! Crash-safety property: checkpoint/restore is invisible.
//!
//! For random programs, traffic, checkpoint cycles, and
//! engine/exec-path combinations (which may *differ* between the
//! checkpointed run and the restored one — both sides implement the
//! same machine), a run that is checkpointed at cycle `C`, torn down,
//! serialized through the full snapshot codec, and restored into a
//! fresh switch must finish with the identical [`RunReport`] and the
//! identical event-stream hash as the run that was never interrupted.

use proptest::prelude::*;

use mp5::core::{EngineMode, ExecPath, Mp5Switch, SwitchConfig};
use mp5::serve::{Server, Snapshot};
use mp5::trace::{stream_hash, MemSink};
use mp5::traffic::TraceBuilder;
use mp5_faults::NoFaults;

const PROGRAMS: [&str; 3] = [
    // Hot single state: maximal queueing at one stage.
    "struct Packet { int h; int o; };
     int c = 0;
     void func(struct Packet p) { c = c + 1; p.o = c; }",
    // Shardable table: dynamic sharding, remaps, phantom traffic.
    "struct Packet { int h; int o; };
     int t[32] = {0};
     void func(struct Packet p) { t[p.h % 32] = t[p.h % 32] + 1; p.o = t[p.h % 32]; }",
    // Two stateful stages, one shardable: cross-stage phantom flights.
    "struct Packet { int h; int o; };
     int a[4] = {0};
     int b[64] = {0};
     void func(struct Packet p) {
         if (p.h % 3 == 0) { a[p.h % 4] = a[p.h % 4] + 1; }
         b[p.h % 64] = b[p.h % 64] + 1;
         p.o = b[p.h % 64];
     }",
];

fn engine_strategy() -> impl Strategy<Value = EngineMode> {
    prop_oneof![
        Just(EngineMode::Sequential),
        Just(EngineMode::Parallel(2)),
        Just(EngineMode::Parallel(4)),
    ]
}

fn exec_strategy() -> impl Strategy<Value = ExecPath> {
    prop_oneof![Just(ExecPath::Scalar), Just(ExecPath::Batch)]
}

fn packets(source: &str, n: usize, seed: u64, keys: u64) -> Vec<mp5::types::Packet> {
    let prog = mp5::compiler::compile(source, &mp5::compiler::Target::default()).unwrap();
    TraceBuilder::new(n, seed).build(prog.num_fields(), move |rng, _, f| {
        use rand::Rng;
        f[0] = rng.gen_range(0..keys as i64);
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Checkpoint at a random cycle, round-trip the snapshot through
    /// the codec, restore under a (possibly different) engine and exec
    /// path, and compare against the uninterrupted oracle.
    #[test]
    fn restore_is_invisible(
        prog_idx in 0usize..PROGRAMS.len(),
        seed in 1u64..500,
        n in 150usize..450,
        keys in prop_oneof![Just(4u64), Just(32), Just(512)],
        ckpt_frac in 1u64..9,
        engine_a in engine_strategy(),
        exec_a in exec_strategy(),
        engine_b in engine_strategy(),
        exec_b in exec_strategy(),
    ) {
        let source = PROGRAMS[prog_idx];
        let k = 4usize;
        let cfg_a = SwitchConfig::mp5(k).with_engine(engine_a).with_exec(exec_a);

        // Uninterrupted oracle under configuration A.
        let prog = mp5::compiler::compile(source, &mp5::compiler::Target::default()).unwrap();
        let (oracle, oracle_sink) = Mp5Switch::with_sink(prog, cfg_a.clone(), MemSink::new())
            .run_traced(packets(source, n, seed, keys));
        let oracle_hash = stream_hash(&oracle_sink.into_events());

        // Same run, checkpointed at a random in-flight cycle...
        let ckpt_cycle = (oracle.cycles * ckpt_frac / 10).max(1);
        let mut srv: Server<MemSink, NoFaults> =
            Server::new(source, cfg_a, MemSink::new(), None).unwrap();
        srv.offer_all(packets(source, n, seed, keys));
        while srv.cycle() < ckpt_cycle && !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let snap = srv.checkpoint();
        let events_before = srv.abandon().into_events();

        // ...codec round-trip, then restored under configuration B.
        let snap = Snapshot::decode(&snap.encode()).expect("codec round-trips");
        let mut srv: Server<MemSink, NoFaults> =
            Server::restore(snap, MemSink::new(), Some(engine_b), Some(exec_b)).unwrap();
        while !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let (report, sink) = srv.finish();

        prop_assert_eq!(&report, &oracle, "restored run diverged from the oracle");
        let mut stitched = events_before;
        stitched.extend(sink.into_events());
        prop_assert_eq!(
            stream_hash(&stitched),
            oracle_hash,
            "restored event stream diverged from the oracle"
        );
    }
}
