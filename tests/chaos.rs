//! Chaos suite: randomized seed-deterministic fault campaigns across
//! every bundled application, gated on the three chaos contracts
//! (see `mp5::sim::chaos`):
//!
//! 1. no panics, packets conserved, fault ledger closed
//!    (`injected == recovered + degraded`);
//! 2. the offline invariant auditor reports **zero** findings on the
//!    traced run — Invariant 1/2, phantom pairing, C1 and packet
//!    conservation all hold under injected faults;
//! 3. the sequential and parallel cycle engines stay bit-identical
//!    under the identical fault plan.
//!
//! Scale knob: `MP5_CHAOS_PACKETS` (default 300 packets per case).

use mp5::sim::chaos::{self, ChaosOpts};

fn packets_per_case() -> usize {
    std::env::var("MP5_CHAOS_PACKETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn opts() -> ChaosOpts {
    ChaosOpts {
        pipelines: 4,
        packets: packets_per_case(),
        horizon: 200,
        check_parallel: true,
    }
}

/// Every bundled program survives a chaos plan (auditor-clean, ledger
/// closed, engines bit-identical).
#[test]
fn every_app_survives_chaos() {
    let outcomes = chaos::run_campaign(&mp5::apps::ALL_APPS, &[11], &opts());
    let mut fired = 0u64;
    for out in &outcomes {
        assert!(
            out.passed(),
            "{} seed {} failed chaos: {:?}",
            out.app,
            out.seed,
            out.failures
        );
        fired += out.report.fault.injected;
    }
    assert!(fired > 0, "the campaign must actually inject faults");
}

/// Multiple seeds on the two most stateful paper apps: different plans
/// (pipeline kills included with probability 1/2) all hold the
/// contracts, and a killed pipeline shows up in the recovery ledger.
#[test]
fn seed_sweep_holds_contracts_and_records_degradation() {
    let apps = [mp5::apps::PAPER_APPS[0], mp5::apps::PAPER_APPS[1]];
    let seeds = [1u64, 2, 3, 4];
    let outcomes = chaos::run_campaign(&apps, &seeds, &opts());
    let mut any_kill = false;
    for out in &outcomes {
        assert!(
            out.passed(),
            "{} seed {} failed chaos: {:?}",
            out.app,
            out.seed,
            out.failures
        );
        let f = &out.report.fault;
        if !f.dead_pipelines.is_empty() {
            any_kill = true;
            assert!(
                f.degraded_cycles > 0,
                "{} seed {}: a dead pipeline must register degraded cycles",
                out.app,
                out.seed
            );
        }
    }
    assert!(
        any_kill,
        "across 8 chaos plans at least one should kill a pipeline \
         (seed-deterministic: this cannot flake)"
    );
}

/// Chaos campaigns are reproducible: the same seed yields the same
/// report, cycle count, and ledger, twice.
#[test]
fn chaos_is_deterministic() {
    let app = mp5::apps::PAPER_APPS[2];
    let a = chaos::run_case(&app, 5, &opts());
    let b = chaos::run_case(&app, 5, &opts());
    assert!(a.passed(), "first run failed: {:?}", a.failures);
    assert_eq!(a.report, b.report, "same seed must replay bit-identically");
    assert_eq!(a.plan_len, b.plan_len);
}
