//! Flowlet switching over realistic datacenter traffic (the paper's
//! §4.4 setup): Web-search flow sizes, bimodal 200 B/1400 B packets,
//! swept across pipeline counts — a miniature Figure 8a.
//!
//! ```sh
//! cargo run --release --example flowlet_loadbalance
//! ```

use mp5::banzai::BanzaiSwitch;
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::sim::experiments::app_trace;

fn main() {
    let app = &mp5::apps::FLOWLET;
    println!("{}: {}\n", app.name, app.description);

    println!("pipelines  throughput  max-queue  equivalent");
    for k in [1usize, 2, 4, 8, 16] {
        let (program, trace) = app_trace(app, 20_000, 23);
        let reference = BanzaiSwitch::new(program.clone()).run(trace.clone());
        let report = Mp5Switch::new(program, SwitchConfig::mp5(k)).run(trace);
        println!(
            "{k:>9}  {:>10.3}  {:>9}  {}",
            report.normalized_throughput(),
            report.max_queue_depth,
            report.result.equivalent_to(&reference)
        );
    }
    println!(
        "\nThe paper reports line rate for flowlet switching at every pipeline \
         count, with at most 11 packets queued in any stage (§4.4)."
    );
}
