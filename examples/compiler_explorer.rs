//! Compiler explorer: walks the Figure 3 / Figure 5 example program
//! through every compilation phase and prints what each produces —
//! three-address code, the pipelined schedule, and the PVSM-to-PVSM
//! transformation's address-resolution plans.
//!
//! ```sh
//! cargo run --release --example compiler_explorer
//! ```

use mp5::compiler::program::{IdxPlan, PredPlan};
use mp5::compiler::{compile, Target};
use mp5::lang::frontend;

const FIG3: &str = r#"
struct Packet { int h1; int h2; int h3; int val; int mux; };

int reg1[4] = {2, 4, 8, 16};
int reg2[4] = {1, 3, 5, 7};
int reg3[4] = {0};

void func(struct Packet p) {
    p.val = (p.mux == 1) ? reg1[p.h1 % 4] : reg2[p.h2 % 4];
    reg3[p.h3 % 4] = (p.mux == 1)
        ? reg3[p.h3 % 4] * p.val
        : reg3[p.h3 % 4] + p.val;
}
"#;

fn main() {
    println!("=== Source (paper Figure 3) ===\n{FIG3}");

    // Phase 1: Preprocessing — branch removal + three-address code.
    let tac = frontend(FIG3).expect("parses");
    println!(
        "=== Three-address code ({} instructions) ===",
        tac.instrs.len()
    );
    println!("{}", tac.dump());

    // Phases 2–4: Pipelining, PVSM-to-PVSM, code generation.
    let prog = compile(FIG3, &Target::default()).expect("compiles");
    println!(
        "\n=== Physical pipeline: {} stages ({} prologue + {} body) ===",
        prog.num_stages(),
        prog.resolution.stages,
        prog.stages.len()
    );
    for (i, s) in prog.stages.iter().enumerate() {
        let regs: Vec<&str> = s
            .regs
            .iter()
            .map(|r| prog.regs[r.index()].name.as_str())
            .collect();
        println!(
            "  body stage {i} (physical {}): {} ops, registers: {:?}",
            prog.resolution.stages + i,
            s.instrs.len(),
            regs
        );
    }

    println!("\n=== Address resolution plans (Figure 5's phantom generation) ===");
    for plan in &prog.resolution.plans {
        let reg = if plan.reg.index() < prog.regs.len() {
            prog.regs[plan.reg.index()].name.as_str()
        } else {
            "<stage>"
        };
        let idx = match plan.idx {
            IdxPlan::Exact(op) => format!("{op:?}"),
            IdxPlan::ArrayLevel => "array-level (pinned)".to_string(),
        };
        let pred = match plan.pred {
            PredPlan::Always => "always".to_string(),
            PredPlan::Exact(op) => format!("iff {op:?}"),
            PredPlan::Speculative => "speculative (assume true)".to_string(),
        };
        println!("  stage {:>2}: {reg:<6} index {idx:<24} {pred}", plan.stage);
    }

    println!("\n=== Registers: shardability (D2) and Banzai atom class ===");
    for r in &prog.regs {
        println!(
            "  {:<6} size {:>4}, stage {:>2}, shardable: {:<5}, atom: {}",
            r.name, r.size, r.stage, r.shardable, r.atom_class
        );
    }

    // Demonstrate resolution on the packet from Figure 3.
    let mut fields = vec![0i64; prog.num_fields()];
    fields[prog.field("h1").unwrap().index()] = 0;
    fields[prog.field("h2").unwrap().index()] = 1;
    fields[prog.field("h3").unwrap().index()] = 2;
    fields[prog.field("mux").unwrap().index()] = 1;
    let accesses = prog.resolve(&mut fields);
    println!("\n=== Packet P (h1:0, h2:1, h3:2, mux:1) resolves to ===");
    for a in &accesses {
        println!(
            "  {}[{}] at stage {} (speculative: {})",
            prog.regs[a.reg.index()].name,
            a.index,
            a.stage,
            a.speculative
        );
    }
    assert_eq!(accesses.len(), 2, "P accesses reg1[0] and reg3[2]");
}
