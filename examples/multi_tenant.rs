//! Multiple independent logical MP5 switches on one chip (paper §3.1,
//! footnote 1): a latency-critical network sequencer gets 1 of the 4
//! physical pipelines to itself, while heavy-hitter telemetry runs on
//! the other 3 — each logical switch independently functionally
//! equivalent to its own single-pipeline reference.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use mp5::banzai::BanzaiSwitch;
use mp5::core::{Partition, PartitionedSwitch};
use mp5::traffic::FlowTraceBuilder;
use mp5::types::PortId;

fn main() {
    let seq = mp5::apps::SEQUENCER.compile().expect("sequencer compiles");
    let hh = mp5::apps::HEAVY_HITTER
        .compile()
        .expect("heavy hitter compiles");

    // One realistic trace over all 64 ports; the partitioning routes
    // ports 0-15 to the sequencer and 16-63 to telemetry.
    let nf = seq.num_fields().max(hh.num_fields());
    let (trace, _) = FlowTraceBuilder::new(30_000, 3).build(nf, |rng, key, fields| {
        // Fill both apps' fields; each program reads only its own.
        (mp5::apps::SEQUENCER.fill)(&seq, key, rng, fields);
        (mp5::apps::HEAVY_HITTER.fill)(&hh, key, rng, fields);
    });

    // References for each partition's own traffic slice.
    let seq_ref = BanzaiSwitch::new(seq.clone()).run(
        trace
            .iter()
            .filter(|p| p.port.0 < 16)
            .cloned()
            .map(|mut p| {
                p.fields.truncate(seq.num_fields());
                p
            })
            .collect(),
    );
    let hh_ref = BanzaiSwitch::new(hh.clone()).run(
        trace
            .iter()
            .filter(|p| p.port.0 >= 16)
            .cloned()
            .map(|mut p| {
                p.port = PortId(p.port.0 - 16);
                p.fields.truncate(hh.num_fields());
                p
            })
            .collect(),
    );

    let chip = PartitionedSwitch::new(
        4,
        vec![
            Partition {
                name: "sequencer".into(),
                program: seq.clone(),
                pipelines: 1,
                ports: 0..16,
            },
            Partition {
                name: "heavy-hitter".into(),
                program: hh.clone(),
                pipelines: 3,
                ports: 16..64,
            },
        ],
    );
    // Trim per-partition field widths to each program's layout.
    let trace: Vec<_> = trace
        .into_iter()
        .map(|mut p| {
            let want = if p.port.0 < 16 {
                seq.num_fields()
            } else {
                hh.num_fields()
            };
            p.fields.truncate(want);
            p
        })
        .collect();

    println!("partition      pipelines  throughput  offered  equivalent");
    for rep in chip.run(trace) {
        let reference = if rep.name == "sequencer" {
            &seq_ref
        } else {
            &hh_ref
        };
        println!(
            "{:<13}  {:>9}  {:>10.3}  {:>7}  {}",
            rep.name,
            if rep.name == "sequencer" { 1 } else { 3 },
            rep.report.normalized_throughput(),
            rep.report.offered,
            rep.report.result.equivalent_to(reference),
        );
    }
    println!(
        "\nEach logical MP5 runs its own program on its own pipelines at the \
         chip's physical clock — footnote 1 of the paper, working."
    );
}
