//! Quickstart: compile a stateful program, run it on the single-pipeline
//! reference and on a 4-pipeline MP5 switch, and check functional
//! equivalence plus throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mp5::banzai::BanzaiSwitch;
use mp5::compiler::{compile, Target};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::traffic::TraceBuilder;
use rand::Rng;

fn main() {
    // A per-key packet counter — the paper's canonical sharded-state
    // example (think DDoS / heavy-hitter statistics per source IP).
    let source = "
        struct Packet { int h; int out; };
        int counters[256] = {0};
        void func(struct Packet p) {
            counters[p.h % 256] = counters[p.h % 256] + 1;
            p.out = counters[p.h % 256];
        }";
    let program = compile(source, &Target::default()).expect("program compiles");
    println!(
        "compiled: {} physical stages ({} resolution prologue + {} body), {} register array(s)",
        program.num_stages(),
        program.resolution.stages,
        program.stages.len(),
        program.regs.len()
    );

    // 20k minimum-size packets at line rate on a 64-port switch: the
    // paper's stress configuration.
    let trace = TraceBuilder::new(20_000, 42).build(program.num_fields(), |rng, _, f| {
        f[0] = rng.gen_range(0..100_000);
    });

    let reference = BanzaiSwitch::new(program.clone()).run(trace.clone());

    for k in [1usize, 2, 4, 8] {
        let report = Mp5Switch::new(program.clone(), SwitchConfig::mp5(k)).run(trace.clone());
        let equivalent = report.result.equivalent_to(&reference);
        println!(
            "k={k:>2} pipelines: throughput={:.3} of line rate, steered={}, \
             remap moves={}, max queue={}, functionally equivalent={}",
            report.normalized_throughput(),
            report.steered,
            report.remap_moves,
            report.max_queue_depth,
            equivalent,
        );
        assert!(equivalent, "MP5 must match the single-pipeline switch");
    }
    println!("\nMP5 matched the logical single-pipeline switch at every width.");
}
