//! The paper's motivating application (§2.3.1, Example 2): a network
//! sequencer stamps a monotonically increasing number into packets.
//! On today's multi-pipeline switches with re-circulation, sequence
//! order breaks (condition C1); on MP5 it is exact.
//!
//! ```sh
//! cargo run --release --example network_sequencer
//! ```

use mp5::banzai::BanzaiSwitch;
use mp5::baselines::{RecircConfig, RecircSwitch};
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::sim::c1_violation_fraction;
use mp5::sim::experiments::app_trace;

fn main() {
    let app = &mp5::apps::SEQUENCER;
    println!("{}: {}", app.name, app.description);

    let (program, trace) = app_trace(app, 20_000, 7);
    println!(
        "compiled to {} stages; register arrays: {:?}",
        program.num_stages(),
        program
            .regs
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
    );

    // Ground truth: the logical single-pipeline switch.
    let reference = BanzaiSwitch::new(program.clone()).run(trace.clone());

    // MP5 with 4 pipelines.
    let mp5 = Mp5Switch::new(program.clone(), SwitchConfig::mp5(4)).run(trace.clone());
    let mp5_c1 = c1_violation_fraction(&reference.access_log, &mp5.result.access_log);
    println!(
        "MP5          : throughput={:.3}, C1 violations={:.1}%, equivalent={}",
        mp5.normalized_throughput(),
        mp5_c1 * 100.0,
        mp5.result.equivalent_to(&reference)
    );

    // Today's switch: static port mapping + re-circulation.
    let rec = RecircSwitch::new(program.clone(), RecircConfig::new(4)).run(trace.clone());
    let rec_c1 = c1_violation_fraction(&reference.access_log, &rec.report.result.access_log);
    println!(
        "Recirculation: throughput={:.3}, C1 violations={:.1}%, recircs/pkt={:.2}, equivalent={}",
        rec.report.normalized_throughput(),
        rec_c1 * 100.0,
        rec.recircs_per_packet(),
        rec.report.result.equivalent_to(&reference)
    );

    // Show a concrete broken sequence, like the paper's Example 2.
    let seq_field = program.field("seq").expect("sequencer output field");
    let mut mismatches = 0;
    let mut example = None;
    for (id, out) in &rec.report.result.outputs {
        let expect = &reference.outputs[id];
        if out[seq_field.index()] != expect[seq_field.index()] {
            mismatches += 1;
            if example.is_none() {
                example = Some((*id, expect[seq_field.index()], out[seq_field.index()]));
            }
        }
    }
    if let Some((id, want, got)) = example {
        println!(
            "\n{} packets got the wrong sequence number on the recirculation switch;",
            mismatches
        );
        println!(
            "e.g. packet {id} should carry seq {want} but carries {got} — the \
             paper's Example 2 failure, live."
        );
    }
    assert_eq!(mp5_c1, 0.0, "MP5 must never violate C1");
}
