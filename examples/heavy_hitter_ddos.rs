//! Heavy-hitter detection under skewed (DDoS-like) traffic: shows
//! dynamic state sharding (design principle D2) re-balancing hot
//! counters across pipelines at runtime, versus a static shard.
//!
//! ```sh
//! cargo run --release --example heavy_hitter_ddos
//! ```

use mp5::banzai::BanzaiSwitch;
use mp5::core::{Mp5Switch, SwitchConfig};
use mp5::traffic::pattern::AccessPattern;
use mp5::traffic::TraceBuilder;
use mp5::types::Value;

fn main() {
    let app = &mp5::apps::DDOS_COUNTER;
    println!("{}: {}", app.name, app.description);
    let program = app.compile().expect("app compiles");

    // Skewed traffic: 95% of packets come from 30% of sources — a few
    // attackers dominating, the paper's heavy-tail pattern.
    let pattern = AccessPattern::paper_skewed();
    let trace = TraceBuilder::new(30_000, 11).build(program.num_fields(), |rng, _, f| {
        let src = pattern.draw(5_000, rng);
        f[0] = src as Value; // src_ip
    });

    let reference = BanzaiSwitch::new(program.clone()).run(trace.clone());

    let dynamic = Mp5Switch::new(program.clone(), SwitchConfig::mp5(4)).run(trace.clone());
    let static_ =
        Mp5Switch::new(program.clone(), SwitchConfig::static_shard(4, 99)).run(trace.clone());

    println!(
        "dynamic sharding: throughput={:.3}, {} state migrations, equivalent={}",
        dynamic.normalized_throughput(),
        dynamic.remap_moves,
        dynamic.result.equivalent_to(&reference)
    );
    println!(
        "static sharding : throughput={:.3}, {} state migrations, equivalent={}",
        static_.normalized_throughput(),
        static_.remap_moves,
        static_.result.equivalent_to(&reference)
    );
    println!(
        "dynamic/static speedup: {:.2}x (paper §4.3.2: 1.1–3.3x on skewed traffic)",
        dynamic.normalized_throughput() / static_.normalized_throughput()
    );

    // Top sources are counted exactly, despite four parallel pipelines.
    let counters = &dynamic.result.final_regs[0];
    let mut top: Vec<(usize, Value)> = counters.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nhottest counter buckets (bucket, packets):");
    for (idx, count) in top.iter().take(5) {
        println!("  bucket {idx:>5}: {count}");
    }
    assert_eq!(
        dynamic.result.final_regs, reference.final_regs,
        "per-source counts must be exact"
    );
}
