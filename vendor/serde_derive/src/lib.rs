//! Offline vendored `Serialize`/`Deserialize` derive macros.
//!
//! Companion to the vendored `serde` crate (see its crate docs for
//! why vendoring). Implemented directly over `proc_macro::TokenTree`
//! — the build environment has no `syn`/`quote` — and supports exactly
//! the shapes this workspace derives on:
//!
//! * structs with named fields  → JSON object in field order
//! * tuple structs with 1 field → the inner value (newtype)
//! * tuple structs with N > 1   → JSON array
//! * unit structs               → `null`
//! * enums (externally tagged, like upstream):
//!   unit variant `V`           → `"V"`
//!   newtype variant `V(T)`     → `{"V": value}`
//!   tuple variant `V(A, B)`    → `{"V": [a, b]}`
//!   struct variant `V { .. }`  → `{"V": {..}}`
//!
//! Generic types and `#[serde(...)]` attributes are not supported —
//! the macro panics with a clear message rather than silently
//! mis-deriving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// A minimal item model.
// ---------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }
    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: Kind::Unit,
            },
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility, in any interleaving.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists (types are skipped with
/// angle-bracket awareness so `HashMap<K, V>` fields don't split).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(fname) = tok else {
            panic!("serde derive: expected field name, got {tok:?}");
        };
        fields.push(fname.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&mut toks);
    }
    fields
}

/// Consumes one type, stopping after the `,` (or at end of stream).
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut n = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        n += 1;
        skip_type(&mut toks);
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde derive: expected variant name, got {tok:?}");
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                toks.next();
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            name: vname.to_string(),
            kind,
        });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation (as source text, parsed back into a TokenStream).
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "::serde::json::Value::Null".to_string(),
        Kind::Tuple(1) => "::serde::Serialize::ser_json(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser_json(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Named(fields) => named_ser(fields, "self.", ""),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::json::Value::String(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => {{ let mut o = ::serde::json::Map::new(); \
                             o.insert(\"{vn}\".to_string(), ::serde::Serialize::ser_json(x0)); \
                             ::serde::json::Value::Object(o) }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::ser_json(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {{ let mut o = ::serde::json::Map::new(); \
                                 o.insert(\"{vn}\".to_string(), \
                                 ::serde::json::Value::Array(vec![{}])); \
                                 ::serde::json::Value::Object(o) }}",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let inner = named_ser(fields, "", "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut o = ::serde::json::Map::new(); \
                                 o.insert(\"{vn}\".to_string(), {inner}); \
                                 ::serde::json::Value::Object(o) }}"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn ser_json(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

/// Object-building expression for a named field list. `prefix` is the
/// field access prefix (`self.` for structs, empty for bound variant
/// fields); bound variant fields are references, hence no extra `&`.
fn named_ser(fields: &[String], prefix: &str, _unused: &str) -> String {
    let mut s = String::from("{ let mut o = ::serde::json::Map::new(); ");
    for f in fields {
        let amp = if prefix.is_empty() { "" } else { "&" };
        s.push_str(&format!(
            "o.insert(\"{f}\".to_string(), ::serde::Serialize::ser_json({amp}{prefix}{f})); "
        ));
    }
    s.push_str("::serde::json::Value::Object(o) }");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::de_json(v)?))"),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::de_json(&a[{i}])?"))
                .collect();
            format!(
                "{{ let a = v.as_array().ok_or_else(|| \
                 ::serde::json::Error::custom(\"expected array for {name}\"))?; \
                 if a.len() != {n} {{ return Err(::serde::json::Error::custom(\
                 \"wrong tuple arity for {name}\")); }} \
                 Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Kind::Named(fields) => format!(
            "{{ let o = v.as_object().ok_or_else(|| \
             ::serde::json::Error::custom(\"expected object for {name}\"))?; \
             Ok({name} {{ {} }}) }}",
            named_de(name, fields)
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    unit_arms.push_str(&format!("\"{0}\" => return Ok({name}::{0}),", v.name));
                }
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::de_json(payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::de_json(&a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let a = payload.as_array().ok_or_else(|| \
                             ::serde::json::Error::custom(\"expected array payload\"))?; \
                             if a.len() != {n} {{ return Err(::serde::json::Error::custom(\
                             \"wrong arity for {name}::{vn}\")); }} \
                             return Ok({name}::{vn}({})); }}",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => {{ let o = payload.as_object().ok_or_else(|| \
                         ::serde::json::Error::custom(\"expected object payload\"))?; \
                         return Ok({name}::{vn} {{ {} }}); }}",
                        named_de(name, fields)
                    )),
                }
            }
            format!(
                "{{ if let Some(s) = v.as_str() {{ match s {{ {unit_arms} \
                 _ => return Err(::serde::json::Error::custom(\
                 \"unknown variant of {name}\")), }} }} \
                 if let Some(o) = v.as_object() {{ \
                 if let Some((tag, payload)) = o.iter().next() {{ \
                 match tag.as_str() {{ {tagged_arms} \
                 _ => return Err(::serde::json::Error::custom(\
                 \"unknown variant of {name}\")), }} }} }} \
                 Err(::serde::json::Error::custom(\"invalid value for enum {name}\")) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn de_json(v: &::serde::json::Value) -> \
         Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}"
    )
}

/// `field: <lookup>?, ...` initializer list for a named-field type.
fn named_de(type_name: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::de_json(o.get(\"{f}\").ok_or_else(|| \
                 ::serde::json::Error::custom(\"missing field `{f}` in {type_name}\"))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}
