//! Offline vendored subset of `serde_json`.
//!
//! The build environment has no network access and no registry cache,
//! so this workspace vendors the narrow slice of `serde_json` it
//! actually uses: `Value`/`Map`/`Error` (shared with the vendored
//! `serde` crate), a strict JSON text parser, compact and 2-space
//! pretty printers matching upstream output, and the
//! `from_str`/`to_string`/`to_string_pretty`/`to_value`/`from_value`
//! entry points.
//!
//! Number semantics follow upstream `serde_json::Number`: integer
//! literals without a fraction/exponent parse to `U64` (non-negative)
//! or `I64` (negative); everything else is `F64`. Floats print with
//! Rust's shortest-roundtrip `{:?}` formatting, which agrees with the
//! ryu output upstream uses for the values this workspace serializes.

pub use serde::json::{Error, Map, Value};
use serde::{Deserialize, Serialize};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent, like
/// upstream `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.ser_json())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::de_json(&value)
}

/// Parses a JSON document and deserializes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.i
        )));
    }
    T::de_json(&v)
}

// ---------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float repr; it
                // always includes a decimal point or exponent, matching
                // serde_json's ryu-based output for these values.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream serde_json has no representation for
                // non-finite numbers; `json!`/`to_value` map them to
                // null, which we mirror here.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.i
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // byte boundaries are valid).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::custom("control character in string"));
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.i + 4 > self.s.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part.
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(Error::custom(format!("invalid number at byte {start}")));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(Error::custom(format!("invalid number at byte {start}")));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii number");
        if !float {
            if text.starts_with('-') {
                // i64's own FromStr accepts the full range, including
                // i64::MIN (whose magnitude does not fit in i64).
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            // Integer overflow: fall back to f64, like upstream's
            // arbitrary-precision-off behavior.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_nesting() {
        let src = r#"{"a": 1, "b": -2, "c": 1.5, "d": [true, false, null], "e": {"s": "x\ny"}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"], -2i64);
        assert_eq!(v["c"], 1.5);
        assert_eq!(v["d"].as_array().unwrap().len(), 3);
        assert_eq!(v["e"]["s"], "x\ny");
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(to_string(&back).unwrap(), compact);
    }

    #[test]
    fn pretty_matches_upstream_shape() {
        let v: Value = from_str(r#"{"name":"a","value":1.5}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"name\": \"a\",\n  \"value\": 1.5\n}");
        let arr: Value = from_str("[]").unwrap();
        assert_eq!(to_string_pretty(&arr).unwrap(), "[]");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("[{]").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn number_arity() {
        assert_eq!(from_str::<Value>("42").unwrap(), 42u64);
        assert_eq!(from_str::<Value>("-42").unwrap(), -42i64);
        assert_eq!(from_str::<Value>("42.0").unwrap(), 42.0);
        assert_eq!(from_str::<Value>("1e3").unwrap(), 1000.0);
        assert_eq!(
            to_string(&from_str::<Value>("0.25").unwrap()).unwrap(),
            "0.25"
        );
    }

    #[test]
    fn extreme_integers_round_trip_exactly() {
        // i64::MIN's magnitude exceeds i64::MAX; it must still parse as
        // an integer, not fall back to lossy f64.
        for v in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<i64>(&text).unwrap(), v, "i64 {v}");
        }
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
    }
}
