//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access and
//! no crates.io cache, so the workspace vendors the exact slice of the
//! `rand` API it uses (see the workspace `Cargo.toml`, which points the
//! `rand` dependency here). The implementation follows the published
//! rand 0.8.5 algorithms so that seeded streams match the upstream
//! crate bit-for-bit for the APIs provided:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ (the 64-bit `SmallRng` of
//!   rand 0.8.5), with `seed_from_u64` filling state via SplitMix64 —
//!   the override rand 0.8.5 ships for xoshiro generators.
//! * `next_u32` returns the *upper* 32 bits of `next_u64` (the
//!   xoshiro low bits have linear dependencies; rand 0.8.5 does the
//!   same).
//! * [`Rng::gen_range`] uses widening-multiply rejection sampling with
//!   the bitmask zone (`(range << range.leading_zeros()) - 1`), the
//!   `UniformInt::sample_single` path of rand 0.8.5.
//! * [`Rng::gen`] for `f64` takes the top 53 bits of `next_u64` into
//!   `[0, 1)`; [`Rng::gen_bool`] compares `next_u64` against
//!   `(p * 2^64) as u64` (the `Bernoulli` construction).
//!
//! Only the surface this workspace calls is implemented; anything else
//! from upstream `rand` is intentionally absent.

/// A low-level source of random 32/64-bit words (mirror of
/// `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (little-endian words).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// A seedable generator (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`.
    ///
    /// The trait-level default mirrors `rand_core` 0.6 (a PCG32 stream
    /// expands the seed); generators that override it — like
    /// [`rngs::SmallRng`] — document their own expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution and the [`Distribution`] trait.

    use super::RngCore;

    /// A distribution over a type `T` (mirror of
    /// `rand::distributions::Distribution`).
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the whole value domain
    /// (for floats, `[0, 1)`).
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 bits of precision into [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 bits of precision into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

mod uniform {
    //! Integer range sampling: the widening-multiply rejection method
    //! of rand 0.8.5's `UniformInt::sample_single`.

    use super::RngCore;

    /// A type that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`. Panics if the range is
        /// empty (matching upstream).
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_64 {
        ($ty:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let range = high.wrapping_sub(low) as u64;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u64();
                        let m = (v as u128).wrapping_mul(range as u128);
                        let (hi, lo) = ((m >> 64) as u64, m as u64);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let range = (high.wrapping_sub(low) as u64).wrapping_add(1);
                    if range == 0 {
                        // Full domain.
                        return rng.next_u64() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u64();
                        let m = (v as u128).wrapping_mul(range as u128);
                        let (hi, lo) = ((m >> 64) as u64, m as u64);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    macro_rules! uniform_32 {
        ($ty:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let range = high.wrapping_sub(low) as u32;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u32();
                        let m = (v as u64).wrapping_mul(range as u64);
                        let (hi, lo) = ((m >> 32) as u32, m as u32);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let range = (high.wrapping_sub(low) as u32).wrapping_add(1);
                    if range == 0 {
                        return rng.next_u32() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u32();
                        let m = (v as u64).wrapping_mul(range as u64);
                        let (hi, lo) = ((m >> 32) as u32, m as u32);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_64!(u64);
    uniform_64!(i64);
    uniform_64!(usize);
    uniform_64!(isize);
    uniform_32!(u32);
    uniform_32!(i32);
    uniform_32!(u16);
    uniform_32!(i16);
    uniform_32!(u8);
    uniform_32!(i8);

    /// A range argument to [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_inclusive(low, high, rng)
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// User-facing convenience methods over any [`RngCore`] (mirror of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0` (matching upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p == 1.0 {
            // Upstream's ALWAYS_TRUE marker.
            let _ = self.next_u64();
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The small fast generator.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8.5's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro have linear dependencies; use the
            // high half (as upstream does).
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; remap it (any
                // fixed non-zero state works, upstream uses the same
                // guard idea).
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion of a `u64` seed — the xoshiro-specific
        /// override rand 0.8.5 ships, so seeded streams match upstream.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut seed = <Self as SeedableRng>::Seed::default();
            for chunk in seed.as_mut().chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let v = rng.gen_range(0..16usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..2000 {
            let v = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(10..=12u32);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_700..8_300).contains(&hits), "p=0.8 gave {hits}/10000");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
