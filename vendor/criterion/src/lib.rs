//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no network access and no registry cache,
//! so this workspace vendors the slice of `criterion` its benchmarks
//! use: `Criterion`, benchmark groups with `throughput` /
//! `sample_size` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — per benchmark it runs a short
//! warm-up, then `sample_size` timed samples with an auto-calibrated
//! iteration count, and reports the median and min/max per-iteration
//! time (plus throughput when configured). There is no outlier
//! analysis, plotting, or baseline persistence.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per benchmark (warm-up plus measurement).
const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(1);

/// Throughput annotation for a group; scales reported rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name with a parameter, e.g. `mp5_packets/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, consuming each return value through
    /// `black_box` so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GroupConfig {
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments. Only a positional substring
    /// filter is supported (`cargo bench -- fifo`).
    pub fn configure_from_args(mut self) -> Self {
        let arg = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self.filter = arg;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, &GroupConfig::default(), self.filter.as_deref(), f);
        self
    }
}

/// A named group of related benchmarks sharing throughput/sample
/// configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.config.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.config, self.criterion.filter.as_deref(), f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.config, self.criterion.filter.as_deref(), |b| {
            f(b, input)
        });
        self
    }

    /// Upstream finalizes reports here; the vendored version prints as
    /// it goes, so this is a no-op kept for API compatibility.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    config: &GroupConfig,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }

    // Calibrate: grow the iteration count until one sample is long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }

    // Warm up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARM_UP {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    // Measure.
    let samples = config.sample_size.unwrap_or(100).max(3);
    let budget_per_sample = MEASURE.div_f64(samples as f64);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        let t = Instant::now();
        f(&mut b);
        let sample_time = if b.elapsed > Duration::ZERO {
            b.elapsed
        } else {
            t.elapsed()
        };
        per_iter.push(sample_time.as_secs_f64() / iters as f64);
        if t.elapsed() > budget_per_sample * 4 {
            break; // slow benchmark: settle for fewer samples
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];

    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if let Some(tp) = config.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem"),
            Throughput::Bytes(n) => (n as f64, "B"),
        };
        line.push_str(&format!("  thrpt: {:.3e} {unit}/s", count / median));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
