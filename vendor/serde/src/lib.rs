//! Offline vendored subset of the `serde` API.
//!
//! The build environment for this repository has no network access and
//! no crates.io cache, so the workspace vendors the slice of serde it
//! uses (the workspace `Cargo.toml` points the `serde` dependency
//! here). Unlike upstream serde's visitor-based data model, this
//! implementation serializes through a concrete JSON value tree
//! ([`json::Value`]) — JSON is the only format the workspace ever
//! serializes to, and the external behaviour (derive macros, field
//! ordering, externally-tagged enums, number formatting) matches what
//! upstream `serde` + `serde_json` produce for the types in this
//! workspace.
//!
//! [`Serialize`]/[`Deserialize`] exist both as traits (type namespace)
//! and as derive macros (macro namespace, re-exported from the
//! companion `serde_derive` crate), exactly like upstream with the
//! `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! The JSON value tree both vendored crates share. `serde_json`
    //! re-exports these as `serde_json::{Value, Map, Error}`.

    /// A serialization or deserialization failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Builds an error with the given message.
        pub fn custom(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// A JSON object: insertion-ordered `(key, value)` pairs, so
    /// serialized structs keep their field declaration order (as
    /// upstream serde's struct serialization does).
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Map {
        entries: Vec<(String, Value)>,
    }

    impl Map {
        /// An empty object.
        pub fn new() -> Self {
            Map::default()
        }

        /// Inserts a key (replacing an existing entry with that key).
        pub fn insert(&mut self, key: String, value: Value) {
            if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
                e.1 = value;
            } else {
                self.entries.push((key, value));
            }
        }

        /// Looks up a key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// Iterates keys in insertion order.
        pub fn keys(&self) -> impl Iterator<Item = &String> {
            self.entries.iter().map(|(k, _)| k)
        }

        /// Iterates `(key, value)` pairs in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
            self.entries.iter().map(|(k, v)| (k, v))
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True when the object has no entries.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }
    }

    /// A JSON value.
    ///
    /// Numbers keep their arity: non-negative integers are `U64`,
    /// negative integers `I64`, everything else `F64` — mirroring
    /// upstream `serde_json::Number`'s internal `PosInt`/`NegInt`/
    /// `Float` split (so equality between values serialized from `i64`
    /// and `u64` behaves the same).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A non-negative integer.
        U64(u64),
        /// A negative integer.
        I64(i64),
        /// A non-integer number.
        F64(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(Map),
    }

    impl Value {
        /// The object inside, if this is an object.
        pub fn as_object(&self) -> Option<&Map> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array inside, if this is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string inside, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number as `f64`, if this is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::U64(u) => Some(u as f64),
                Value::I64(i) => Some(i as f64),
                Value::F64(f) => Some(f),
                _ => None,
            }
        }

        /// The number as `u64`, if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::U64(u) => Some(u),
                _ => None,
            }
        }

        /// The number as `i64`, if it is an integer in range.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::U64(u) => i64::try_from(u).ok(),
                Value::I64(i) => Some(i),
                _ => None,
            }
        }

        /// The bool inside, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }

        /// Member lookup that returns `Null` for absent keys /
        /// non-objects (upstream's `Index` behaviour).
        pub fn get_path(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.as_object().and_then(|o| o.get(key)).unwrap_or(&NULL)
        }
    }

    /// Compact JSON rendering, matching upstream `serde_json::Value`'s
    /// `Display`. Strings inside arrays/objects are escaped and
    /// quoted; a top-level string is quoted too (same as upstream).
    impl std::fmt::Display for Value {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::U64(n) => write!(f, "{n}"),
                Value::I64(n) => write!(f, "{n}"),
                Value::F64(x) => {
                    if x.is_finite() {
                        write!(f, "{x:?}")
                    } else {
                        f.write_str("null")
                    }
                }
                Value::String(s) => write_json_string(s, f),
                Value::Array(a) => {
                    f.write_str("[")?;
                    for (i, v) in a.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                }
                Value::Object(o) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in o.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write_json_string(k, f)?;
                        write!(f, ":{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }

    fn write_json_string(s: &str, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                '\u{08}' => f.write_str("\\b")?,
                '\u{0c}' => f.write_str("\\f")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get_path(key)
        }
    }

    impl std::ops::Index<&String> for Value {
        type Output = Value;
        fn index(&self, key: &String) -> &Value {
            self.get_path(key)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            static NULL: Value = Value::Null;
            match self {
                Value::Array(a) => a.get(i).unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl PartialEq<f64> for Value {
        fn eq(&self, other: &f64) -> bool {
            matches!(self, Value::F64(f) if f == other)
        }
    }

    impl PartialEq<i64> for Value {
        fn eq(&self, other: &i64) -> bool {
            self.as_i64() == Some(*other)
        }
    }

    impl PartialEq<u64> for Value {
        fn eq(&self, other: &u64) -> bool {
            self.as_u64() == Some(*other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            self.as_bool() == Some(*other)
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }
}

/// A type serializable to a [`json::Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the JSON data model.
    fn ser_json(&self) -> json::Value;
}

/// A type reconstructible from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the JSON data model.
    fn de_json(v: &json::Value) -> Result<Self, json::Error>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn ser_json(&self) -> json::Value {
                json::Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn de_json(v: &json::Value) -> Result<Self, json::Error> {
                match *v {
                    json::Value::U64(u) => <$ty>::try_from(u)
                        .map_err(|_| json::Error::custom("integer out of range")),
                    _ => Err(json::Error::custom(concat!(
                        "expected unsigned integer for ",
                        stringify!($ty)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn ser_json(&self) -> json::Value {
                let v = *self as i64;
                if v >= 0 {
                    json::Value::U64(v as u64)
                } else {
                    json::Value::I64(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn de_json(v: &json::Value) -> Result<Self, json::Error> {
                let i = match *v {
                    json::Value::U64(u) => i64::try_from(u)
                        .map_err(|_| json::Error::custom("integer out of range"))?,
                    json::Value::I64(i) => i,
                    _ => {
                        return Err(json::Error::custom(concat!(
                            "expected integer for ",
                            stringify!($ty)
                        )))
                    }
                };
                <$ty>::try_from(i).map_err(|_| json::Error::custom("integer out of range"))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn ser_json(&self) -> json::Value {
                json::Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn de_json(v: &json::Value) -> Result<Self, json::Error> {
                v.as_f64()
                    .map(|f| f as $ty)
                    .ok_or_else(|| json::Error::custom("expected number"))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn ser_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool()
            .ok_or_else(|| json::Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn ser_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn ser_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_json(&self) -> json::Value {
        match self {
            Some(x) => x.ser_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::de_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::ser_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_array()
            .ok_or_else(|| json::Error::custom("expected array"))?
            .iter()
            .map(T::de_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::ser_json).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_json(&self) -> json::Value {
        (**self).ser_json()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn ser_json(&self) -> json::Value {
        json::Value::Array(vec![self.0.ser_json(), self.1.ser_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        let a = v
            .as_array()
            .ok_or_else(|| json::Error::custom("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(json::Error::custom("expected 2-element array"));
        }
        Ok((A::de_json(&a[0])?, B::de_json(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn ser_json(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.ser_json(),
            self.1.ser_json(),
            self.2.ser_json(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        let a = v
            .as_array()
            .ok_or_else(|| json::Error::custom("expected 3-element array"))?;
        if a.len() != 3 {
            return Err(json::Error::custom("expected 3-element array"));
        }
        Ok((A::de_json(&a[0])?, B::de_json(&a[1])?, C::de_json(&a[2])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn ser_json(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.ser_json(),
            self.1.ser_json(),
            self.2.ser_json(),
            self.3.ser_json(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        let a = v
            .as_array()
            .ok_or_else(|| json::Error::custom("expected 4-element array"))?;
        if a.len() != 4 {
            return Err(json::Error::custom("expected 4-element array"));
        }
        Ok((
            A::de_json(&a[0])?,
            B::de_json(&a[1])?,
            C::de_json(&a[2])?,
            D::de_json(&a[3])?,
        ))
    }
}

impl Serialize for json::Value {
    fn ser_json(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn de_json(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arity_is_canonical() {
        assert_eq!(5i64.ser_json(), json::Value::U64(5));
        assert_eq!((-5i64).ser_json(), json::Value::I64(-5));
        assert_eq!(i64::de_json(&json::Value::U64(7)).unwrap(), 7);
        assert_eq!(u32::de_json(&json::Value::U64(1u64 << 40)).is_err(), true);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u64> = None;
        assert_eq!(v.ser_json(), json::Value::Null);
        let xs = vec![1u64, 2, 3];
        let j = xs.ser_json();
        assert_eq!(Vec::<u64>::de_json(&j).unwrap(), xs);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = json::Map::new();
        m.insert("z".into(), json::Value::U64(1));
        m.insert("a".into(), json::Value::U64(2));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
