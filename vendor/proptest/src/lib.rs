//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access and no registry cache,
//! so this workspace vendors the slice of `proptest` its test suite
//! uses: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], and the `proptest!` /
//! `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its index, the values'
//!   `Debug` output is whatever the assertion message included, and
//!   the run is deterministic, so the case reproduces exactly.
//! * **Deterministic seeding.** Each generated test derives its RNG
//!   seed from the test's name (FNV-1a), so failures are stable across
//!   runs and machines instead of depending on ambient entropy.
//! * `.proptest-regressions` files are ignored.

use rand::rngs::SmallRng;

/// The RNG threaded through all strategies.
pub type TestRng = SmallRng;

pub mod test_runner {
    use rand::SeedableRng;

    /// A failed property case, produced by `prop_assert!`-family
    /// macros or an explicit `Err` return from the test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Execution knobs, a subset of upstream's struct. Construct with
    /// functional-update syntax:
    /// `ProptestConfig { cases: 64, ..ProptestConfig::default() }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejection sampling is not used.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic per-test RNG: seed = FNV-1a of the test name.
    pub fn new_rng(test_name: &str) -> super::TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        super::TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A source of random values of one type. Unlike upstream there is
    /// no value tree / shrinking — `sample` draws a finished value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn sample(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed arms; built by `prop_oneof!`.
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Upstream treats `&str` as a regex strategy producing `String`.
    /// The vendored version supports the subset this workspace uses:
    /// a literal string, optionally `\PC` (any non-control character)
    /// with a `{m,n}` repetition suffix. Unsupported patterns panic
    /// loudly rather than silently generating the wrong language.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            if let Some(rest) = self.strip_prefix("\\PC") {
                let (lo, hi) = parse_repeat(rest)
                    .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
                let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                (0..n).map(|_| sample_printable(rng)).collect()
            } else if self.contains('\\') || self.contains('{') || self.contains('[') {
                panic!("unsupported regex strategy: {self:?}");
            } else {
                (*self).to_string()
            }
        }
    }

    fn parse_repeat(s: &str) -> Option<(usize, usize)> {
        if s.is_empty() {
            return Some((1, 1));
        }
        let body = s.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn sample_printable(rng: &mut TestRng) -> char {
        if rng.gen_bool(0.85) {
            // ASCII printable (space through tilde).
            char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("ascii printable")
        } else {
            // Any scalar value outside the control ranges; resample the
            // surrogate gap.
            loop {
                let c = rng.gen_range(0xa0u32..0xe000);
                if let Some(c) = char::from_u32(c) {
                    return c;
                }
            }
        }
    }

    /// Boxes a strategy for use as a `prop_oneof!` arm.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_prim {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )+};
    }
    arb_prim!(bool, u8, u16, u32, u64, usize, i32, i64);

    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// A count or count range for [`vec`]; converted from `usize`,
    /// `Range<usize>`, and `RangeInclusive<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, len)` — a vector whose
    /// length is drawn from `len` and whose elements are drawn from
    /// `strategy`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports the upstream `arg in strategy` form plus an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::new_rng;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = (0u64..1000, 0usize..7).prop_map(|(a, b)| a * 10 + b as u64);
        let mut r1 = new_rng("x");
        let mut r2 = new_rng("x");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = new_rng("cover");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = crate::collection::vec(0i64..5, 2..6);
        let mut rng = new_rng("sizes");
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_runnable_tests(
            a in 0u32..10,
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            if flag {
                return Ok(());
            }
            prop_assert_eq!(a, a);
        }
    }
}
