//! The single-pipeline Banzai reference switch.
//!
//! This crate models the *logical single pipelined switch* of §2.2: a
//! single Banzai pipeline running at the full aggregate rate `N·B`, so
//! that any admissible input stream is processed at line rate, strictly
//! in packet entry order (ascending arrival time, ties broken by the
//! smaller port id).
//!
//! Because a Banzai pipeline processes at most one packet per stage with
//! atomic per-stage state operations, its externally visible behaviour —
//! final register state, per-packet output headers, and the order in
//! which packets access each state — is exactly that of processing
//! packets one at a time to completion in entry order. That is what this
//! executor does, and it is the **ground truth** against which MP5 and
//! every baseline are checked for functional equivalence (§2.2.1) and
//! condition C1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mp5_compiler::CompiledProgram;
use mp5_types::{FastMap, Packet, PacketId, RegId, Value};

/// The order in which packets accessed each register state: the C1
/// ground truth. Keyed by `(register, index)`. One map-entry operation
/// per stateful access puts this on the simulators' hot path, hence
/// the id-tuned hasher (`mp5_types::fasthash`).
pub type AccessLog = FastMap<(RegId, u32), Vec<PacketId>>;

/// Result of running a packet stream through a switch model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Final contents of every register array.
    pub final_regs: Vec<Vec<Value>>,
    /// Final *declared* header fields of each completed packet.
    pub outputs: FastMap<PacketId, Vec<Value>>,
    /// Per-state packet access order.
    pub access_log: AccessLog,
    /// Packets processed to completion.
    pub processed: u64,
}

impl RunResult {
    /// True if register state, packet outputs, and per-state access
    /// order all match `other` — the paper's functional equivalence plus
    /// condition C1.
    pub fn equivalent_to(&self, other: &RunResult) -> bool {
        self.final_regs == other.final_regs
            && self.outputs == other.outputs
            && self.access_log == other.access_log
    }

    /// Functional equivalence only (register + packet state), without
    /// requiring identical access interleavings.
    pub fn state_equivalent_to(&self, other: &RunResult) -> bool {
        self.final_regs == other.final_regs && self.outputs == other.outputs
    }
}

/// The single-pipeline reference switch.
#[derive(Debug, Clone)]
pub struct BanzaiSwitch {
    prog: CompiledProgram,
    regs: Vec<Vec<Value>>,
}

impl BanzaiSwitch {
    /// Creates a switch programmed with `prog`, registers at their
    /// initial values.
    pub fn new(prog: CompiledProgram) -> Self {
        let regs = prog.initial_regs();
        BanzaiSwitch { prog, regs }
    }

    /// The program this switch runs.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Current register state.
    pub fn regs(&self) -> &[Vec<Value>] {
        &self.regs
    }

    /// Processes one packet to completion, mutating switch state and the
    /// packet's fields. Returns the `(reg, index)` accesses performed.
    pub fn process(&mut self, pkt: &mut Packet) -> Vec<(RegId, u32)> {
        let mut fields = std::mem::take(&mut pkt.fields);
        fields.resize(self.prog.num_fields(), 0);
        let accesses = self.prog.execute_serial(&mut fields, &mut self.regs);
        pkt.fields = fields;
        accesses.into_iter().map(|a| (a.reg, a.index)).collect()
    }

    /// Runs a whole stream: sorts packets into entry order, processes
    /// each to completion, and collects the equivalence evidence.
    pub fn run(&mut self, mut packets: Vec<Packet>) -> RunResult {
        packets.sort_by_key(|p| p.entry_order_key());
        let mut result = RunResult {
            final_regs: Vec::new(),
            outputs: FastMap::with_capacity_and_hasher(packets.len(), Default::default()),
            access_log: AccessLog::default(),
            processed: 0,
        };
        for mut pkt in packets {
            let accesses = self.process(&mut pkt);
            for key in accesses {
                result.access_log.entry(key).or_default().push(pkt.id);
            }
            result
                .outputs
                .insert(pkt.id, pkt.fields[..self.prog.declared_fields].to_vec());
            result.processed += 1;
        }
        result.final_regs = self.regs.clone();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_compiler::{compile, Target};
    use mp5_types::{PortId, BYTES_PER_SLOT};

    fn pkt(id: u64, port: u16, arrival: u64, fields: &[Value], nfields: usize) -> Packet {
        let mut p = Packet::new(
            PacketId(id),
            PortId(port),
            arrival,
            BYTES_PER_SLOT as u32,
            nfields,
        );
        p.fields[..fields.len()].copy_from_slice(fields);
        p
    }

    #[test]
    fn sequencer_stamps_in_entry_order() {
        let prog = compile(
            "struct Packet { int seq; };
             int count = 0;
             void func(struct Packet p) { count = count + 1; p.seq = count; }",
            &Target::default(),
        )
        .unwrap();
        let nf = prog.num_fields();
        let mut sw = BanzaiSwitch::new(prog);
        // Deliberately passed out of order; ids 0,1,2 arrive at t=0,1,2.
        let packets = vec![
            pkt(2, 0, 2 * 64, &[0], nf),
            pkt(0, 0, 0, &[0], nf),
            pkt(1, 1, 64, &[0], nf),
        ];
        let res = sw.run(packets);
        assert_eq!(res.outputs[&PacketId(0)], vec![1]);
        assert_eq!(res.outputs[&PacketId(1)], vec![2]);
        assert_eq!(res.outputs[&PacketId(2)], vec![3]);
        assert_eq!(res.final_regs[0], vec![3]);
        assert_eq!(
            res.access_log[&(RegId(0), 0)],
            vec![PacketId(0), PacketId(1), PacketId(2)]
        );
    }

    #[test]
    fn simultaneous_arrivals_tie_break_by_port() {
        let prog = compile(
            "struct Packet { int seq; };
             int count = 0;
             void func(struct Packet p) { count = count + 1; p.seq = count; }",
            &Target::default(),
        )
        .unwrap();
        let nf = prog.num_fields();
        let mut sw = BanzaiSwitch::new(prog);
        let res = sw.run(vec![pkt(0, 5, 100, &[0], nf), pkt(1, 2, 100, &[0], nf)]);
        // Port 2 enters first (paper §2.2.1).
        assert_eq!(res.outputs[&PacketId(1)], vec![1]);
        assert_eq!(res.outputs[&PacketId(0)], vec![2]);
    }

    #[test]
    fn equivalence_comparators() {
        let mut a = RunResult::default();
        let b = RunResult::default();
        assert!(a.equivalent_to(&b));
        a.final_regs.push(vec![1]);
        assert!(!a.equivalent_to(&b));
        assert!(!a.state_equivalent_to(&b));
    }

    #[test]
    fn empty_trace_yields_initial_state() {
        let prog = compile(
            "struct Packet { int h; };
             int r[4] = {9, 8, 7, 6};
             void func(struct Packet p) { r[p.h % 4] = 0; }",
            &Target::default(),
        )
        .unwrap();
        let res = BanzaiSwitch::new(prog).run(Vec::new());
        assert_eq!(res.processed, 0);
        assert_eq!(res.final_regs[0], vec![9, 8, 7, 6]);
        assert!(res.outputs.is_empty());
        assert!(res.access_log.is_empty());
    }

    #[test]
    fn process_mutates_packet_in_place() {
        let prog = compile(
            "struct Packet { int a; int b; };
             void func(struct Packet p) { p.b = p.a * 2; }",
            &Target::default(),
        )
        .unwrap();
        let nf = prog.num_fields();
        let mut sw = BanzaiSwitch::new(prog);
        let mut p = pkt(0, 0, 0, &[21], nf);
        let acc = sw.process(&mut p);
        assert!(acc.is_empty(), "stateless program performs no accesses");
        assert_eq!(p.fields[1], 42);
    }

    #[test]
    fn untouched_register_keeps_initializer() {
        let prog = compile(
            "struct Packet { int h; };
             int used[2] = {0};
             int untouched[3] = {5, 5, 5};
             void func(struct Packet p) {
                 if (p.h < 0) { untouched[0] = 1; }
                 used[p.h % 2] = used[p.h % 2] + 1;
             }",
            &Target::default(),
        )
        .unwrap();
        let nf = prog.num_fields();
        let mut sw = BanzaiSwitch::new(prog);
        let res = sw.run(vec![pkt(0, 0, 0, &[4], nf), pkt(1, 0, 64, &[5], nf)]);
        assert_eq!(res.final_regs[1], vec![5, 5, 5]);
        assert_eq!(res.final_regs[0], vec![1, 1]);
    }

    #[test]
    fn access_log_separates_indexes() {
        let prog = compile(
            "struct Packet { int h; };
             int r[4] = {0};
             void func(struct Packet p) { r[p.h % 4] = r[p.h % 4] + 1; }",
            &Target::default(),
        )
        .unwrap();
        let nf = prog.num_fields();
        let mut sw = BanzaiSwitch::new(prog);
        let res = sw.run(vec![
            pkt(0, 0, 0, &[0], nf),
            pkt(1, 0, 64, &[1], nf),
            pkt(2, 0, 128, &[0], nf),
        ]);
        assert_eq!(
            res.access_log[&(RegId(0), 0)],
            vec![PacketId(0), PacketId(2)]
        );
        assert_eq!(res.access_log[&(RegId(0), 1)], vec![PacketId(1)]);
        assert_eq!(res.final_regs[0], vec![2, 1, 0, 0]);
    }
}
