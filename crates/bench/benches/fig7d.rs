//! Figure 7d: throughput vs packet size.

use mp5_sim::experiments::fig7d;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Figure 7d: throughput vs packet size (64..1500 B)",
        "paper 4.3.3 (line rate with packets as small as 128 B)",
    );
    let rows = fig7d();
    mp5_bench::maybe_dump_json("fig7d", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} B", r.x as usize),
                tp(r.mp5_uniform),
                tp(r.ideal_uniform),
                tp(r.mp5_skewed),
                tp(r.ideal_skewed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "packet size",
                "MP5/uniform",
                "ideal/uniform",
                "MP5/skewed",
                "ideal/skewed"
            ],
            &cells
        )
    );
    if let Some(r128) = rows.iter().find(|r| r.x == 128.0) {
        println!(
            "line rate at 128 B: uniform {} / skewed {} (paper: line rate from 128 B)",
            tp(r128.mp5_uniform),
            tp(r128.mp5_skewed)
        );
    }
}
