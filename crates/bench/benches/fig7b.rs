//! Figure 7b: throughput vs number of stateful stages.

use mp5_sim::experiments::fig7b;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Figure 7b: throughput vs stateful stages (0..10)",
        "paper 4.3.3 (~20% reduction from 0 to 10 stateful stages)",
    );
    let rows = fig7b();
    mp5_bench::maybe_dump_json("fig7b", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.x as usize),
                tp(r.mp5_uniform),
                tp(r.ideal_uniform),
                tp(r.mp5_skewed),
                tp(r.ideal_skewed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "stateful stages",
                "MP5/uniform",
                "ideal/uniform",
                "MP5/skewed",
                "ideal/skewed"
            ],
            &cells
        )
    );
    let first = &rows[0];
    let last = rows.last().unwrap();
    println!(
        "uniform reduction 0 -> 10 stateful stages: {:.1}% (paper: ~20%)",
        (1.0 - last.mp5_uniform / first.mp5_uniform) * 100.0
    );
}
