//! 4.3.2 D2 microbenchmark: dynamic vs static state sharding.

use mp5_bench::min_max;
use mp5_sim::experiments::micro_d2;
use mp5_sim::table::render;

fn main() {
    mp5_bench::banner(
        "D2: dynamically sharded shared memory",
        "paper 4.3.2 (dynamic/static throughput ratio: 1.1-3.3x skewed, 1-1.5x uniform)",
    );
    let rows = micro_d2();
    mp5_bench::maybe_dump_json("micro_d2", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                format!("{:.2}x", r.ratio_uniform),
                format!("{:.2}x", r.ratio_skewed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "stream",
                "dynamic/static (uniform)",
                "dynamic/static (skewed)"
            ],
            &cells
        )
    );
    let (ulo, uhi) = min_max(rows.iter().map(|r| r.ratio_uniform));
    let (slo, shi) = min_max(rows.iter().map(|r| r.ratio_skewed));
    println!("uniform ratio range: {ulo:.2}-{uhi:.2}x (paper: 1-1.5x)");
    println!("skewed  ratio range: {slo:.2}-{shi:.2}x (paper: 1.1-3.3x)");
}
