//! Ablation: dynamic-sharding remap period under skewed traffic —
//! the paper triggers the heuristic "every few 100s of clock cycles"
//! and evaluates with 100.

use mp5_sim::experiments::ablation_remap;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Ablation: remap period",
        "paper 3.4 (heuristic every ~100 cycles) / 4.3.1 (t = 100)",
    );
    let rows = ablation_remap();
    mp5_bench::maybe_dump_json("ablation_remap", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.period > 1_000_000 {
                    "never".into()
                } else {
                    r.period.to_string()
                },
                tp(r.throughput),
                r.moves.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["remap period (cycles)", "throughput (skewed)", "migrations"],
            &cells
        )
    );
}
