//! 4.3.2 D3 microbenchmark: inter-pipeline steering vs re-circulation.

use mp5_bench::min_max;
use mp5_sim::experiments::micro_d3;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "D3: inter-pipeline packet steering vs re-circulation",
        "paper 4.3.2 (recirc loses 31-77% vs MP5; worse than naive when recircs/pkt > k)",
    );
    let rows = micro_d3();
    mp5_bench::maybe_dump_json("micro_d3", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                tp(r.mp5),
                tp(r.recirc),
                tp(r.naive),
                format!("{:.2}", r.recircs_per_packet),
                format!("{:.1}%", (1.0 - r.recirc / r.mp5) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "stream",
                "MP5",
                "recirc",
                "naive",
                "recircs/pkt",
                "recirc loss vs MP5"
            ],
            &cells
        )
    );
    let (lo, hi) = min_max(rows.iter().map(|r| (1.0 - r.recirc / r.mp5) * 100.0));
    println!("recirculation throughput loss range: {lo:.1}%-{hi:.1}% (paper: 31-77%)");
}
