//! Regenerates paper Table 1 (chip area and clock speed vs pipelines
//! and stages) and the §4.2 SRAM-overhead paragraph, side by side with
//! the paper's published numbers.

use mp5_asic::{AsicModel, PAPER_TABLE1};
use mp5_sim::table::render;

fn main() {
    mp5_bench::banner("Table 1: chip area and clock speed", "paper §4.2, Table 1");
    let m = AsicModel::default();

    let mut rows = Vec::new();
    for k in [2usize, 4, 8] {
        for s in [4usize, 8, 12, 16] {
            let ours = m.area_mm2(k, s);
            let paper = PAPER_TABLE1
                .iter()
                .find(|&&(pk, ps, _)| pk == k && ps == s)
                .map(|&(_, _, a)| a)
                .expect("cell present");
            rows.push(vec![
                k.to_string(),
                s.to_string(),
                format!("{ours:.2}"),
                format!("{paper:.2}"),
                format!("{:+.1}%", (ours - paper) / paper * 100.0),
                format!("{:.2} GHz", m.clock_ghz(k)),
                if m.meets_1ghz(k) {
                    ">= 1 GHz ok"
                } else {
                    "below!"
                }
                .to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render(
            &[
                "k",
                "s",
                "model mm^2",
                "paper mm^2",
                "delta",
                "clock",
                "target"
            ],
            &rows
        )
    );

    println!("SRAM overhead for dynamic sharding (30 bits/register index):");
    println!(
        "  10 stateful stages x 1000 entries: {:.1} KB per pipeline (paper: ~35 KB)",
        m.sram_overhead_kb(10, 1000)
    );
    let (lo, hi) = m.area_overhead_percent(4, 16);
    println!("  4 pipelines x 16 stages on a 300-700 mm^2 die: {lo:.2}%-{hi:.2}% (paper: 0.5-1%)");
    let (lo8, hi8) = m.area_overhead_percent(8, 16);
    println!("  8 pipelines x 16 stages: {lo8:.2}%-{hi8:.2}% (paper: 2-4%)");
    println!(
        "  crossbar scaling limit: 1 GHz holds up to k={} (paper §3.5.3)",
        m.max_pipelines_at_1ghz()
    );
}
