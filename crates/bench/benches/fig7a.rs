//! Figure 7a: packet-processing throughput vs number of pipelines.

use mp5_sim::experiments::fig7a;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Figure 7a: throughput vs pipelines (1..16)",
        "paper 4.3.3 (~25% reduction from 1 to 16 pipelines; MP5 close to ideal)",
    );
    let rows = fig7a();
    mp5_bench::maybe_dump_json("fig7a", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.x as usize),
                tp(r.mp5_uniform),
                tp(r.ideal_uniform),
                tp(r.mp5_skewed),
                tp(r.ideal_skewed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "pipelines",
                "MP5/uniform",
                "ideal/uniform",
                "MP5/skewed",
                "ideal/skewed"
            ],
            &cells
        )
    );
    let first = &rows[0];
    let last = rows.last().unwrap();
    println!(
        "uniform reduction 1 -> 16 pipelines: {:.1}% (paper: ~25%)",
        (1.0 - last.mp5_uniform / first.mp5_uniform) * 100.0
    );
}
