//! Figure 8: real applications (flowlet, CONGA, WFQ, sequencer) at
//! realistic packet/flow distributions, swept over pipeline count.

use mp5_sim::experiments::fig8;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Figure 8: real applications",
        "paper 4.4 (line rate for all apps at every pipeline count; max queue 11/8/7/7)",
    );
    let rows = fig8(&mp5_apps::PAPER_APPS);
    mp5_bench::maybe_dump_json("fig8", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.pipelines.to_string(),
                tp(r.throughput),
                r.max_queue_depth.to_string(),
                if r.fpga_range { "sim+fpga" } else { "sim" }.to_string(),
                r.equivalent.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "app",
                "pipelines",
                "throughput",
                "max queue",
                "range",
                "equivalent"
            ],
            &cells
        )
    );
    for app in mp5_apps::PAPER_APPS {
        let max_q = rows
            .iter()
            .filter(|r| r.app == app.name)
            .map(|r| r.max_queue_depth)
            .max()
            .unwrap_or(0);
        println!("{:<10} worst-case queue depth: {max_q}", app.name);
    }
}
