//! Figure 7c: throughput vs register array size.

use mp5_sim::experiments::fig7c;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Figure 7c: throughput vs register size (1..4096)",
        "paper 4.3.3 (throughput increases steadily with register size)",
    );
    let rows = fig7c();
    mp5_bench::maybe_dump_json("fig7c", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.x as usize),
                tp(r.mp5_uniform),
                tp(r.ideal_uniform),
                tp(r.mp5_skewed),
                tp(r.ideal_skewed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "register size",
                "MP5/uniform",
                "ideal/uniform",
                "MP5/skewed",
                "ideal/skewed"
            ],
            &cells
        )
    );
}
