//! Extension experiment for 3.5.3: splitting the pipelines over two
//! chiplets (each an independent MP5) vs one monolithic MP5.

use mp5_sim::experiments::ext_chiplet;
use mp5_sim::table::{render, tp};

fn main() {
    mp5_bench::banner(
        "Extension: multi-chiplet MP5",
        "paper 3.5.3 (inter-chiplet processing left as future work)",
    );
    let rows = ext_chiplet();
    mp5_bench::maybe_dump_json("ext_chiplet", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.mode.clone(),
                tp(r.throughput),
                r.globally_equivalent.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["app", "mode", "throughput", "globally equivalent"],
            &cells
        )
    );
    println!(
        "Monolithic MP5 keeps functional equivalence; independent chiplets\n\
         cannot once state is shared across the port split - the gap the\n\
         paper's future work would need to close."
    );
}
