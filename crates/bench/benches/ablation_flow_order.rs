//! Ablation: 3.4 flow-order enforcement (dummy final-stage state) —
//! what it costs and what it buys on a NAT-like half-stateless program.

use mp5_sim::experiments::ablation_flow_order;
use mp5_sim::table::{pct, render, tp};

fn main() {
    mp5_bench::banner(
        "Ablation: flow-order enforcement",
        "paper 3.4 'Handling starvation and packet re-ordering'",
    );
    let rows = ablation_flow_order();
    mp5_bench::maybe_dump_json("ablation_flow_order", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pipelines.to_string(),
                tp(r.plain_throughput),
                pct(r.plain_reordered),
                tp(r.ordered_throughput),
                pct(r.ordered_reordered),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "pipelines",
                "plain tput",
                "plain reordered flows",
                "enforced tput",
                "enforced reordered"
            ],
            &cells
        )
    );
    assert!(rows.iter().all(|r| r.ordered_reordered == 0.0));
}
