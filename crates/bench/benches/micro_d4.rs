//! 4.3.2 D4 microbenchmark: C1 violation fractions.

use mp5_bench::min_max;
use mp5_sim::experiments::micro_d4;
use mp5_sim::table::{pct, render};

fn main() {
    mp5_bench::banner(
        "D4: preemptive state access order enforcement",
        "paper 4.3.2 (MP5: 0 violations; no-D4: 14-26%; recirculation: 18-31%)",
    );
    let rows = micro_d4();
    mp5_bench::maybe_dump_json("micro_d4", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.seed.to_string(), pct(r.mp5), pct(r.no_d4), pct(r.recirc)])
        .collect();
    println!(
        "{}",
        render(
            &["stream", "MP5 (D4)", "without D4", "recirculation"],
            &cells
        )
    );
    assert!(
        rows.iter().all(|r| r.mp5 == 0.0),
        "MP5 must be exactly zero"
    );
    let (nlo, nhi) = min_max(rows.iter().map(|r| r.no_d4 * 100.0));
    let (rlo, rhi) = min_max(rows.iter().map(|r| r.recirc * 100.0));
    println!("no-D4 violation range: {nlo:.1}%-{nhi:.1}% (paper: 14-26%)");
    println!("recirc violation range: {rlo:.1}%-{rhi:.1}% (paper: 18-31%)");
}
