//! Ablation: per-lane FIFO capacity vs delivered fraction — validates
//! the paper's 8-entry FIFO provisioning (4.2: "sufficient to avoid
//! tail drops based on observations in 4.4").

use mp5_sim::experiments::ablation_fifo;
use mp5_sim::table::{pct, render};

fn main() {
    mp5_bench::banner(
        "Ablation: FIFO capacity",
        "paper 4.2 footnote on FIFO sizing (8 entries/lane avoids tail drops)",
    );
    let rows = ablation_fifo();
    mp5_bench::maybe_dump_json("ablation_fifo", &rows);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.capacity.to_string(),
                pct(r.delivered_app),
                pct(r.delivered_synth),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "FIFO capacity",
                "delivered (flowlet, 4.4 traffic)",
                "delivered (worst-case 64B)"
            ],
            &cells
        )
    );
    let at8 = rows.iter().find(|r| r.capacity == 8).unwrap();
    println!(
        "at the paper's capacity of 8: flowlet delivers {} (drop-free is the paper's claim)",
        pct(at8.delivered_app)
    );
}
