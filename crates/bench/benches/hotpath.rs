//! Criterion micro-benchmarks of the hot paths: the logical FIFO
//! operations (which hardware performs every cycle), the phantom
//! channel, program compilation, and whole-switch simulation rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mp5_compiler::{compile, Target};
use mp5_core::{ExecPath, Mp5Switch, SwitchConfig};
use mp5_fabric::{LogicalFifo, OrderKey, PhantomChannel, PhantomKey, PopOutcome};
use mp5_sim::synth::{synthetic_compiled, synthetic_trace, SynthConfig};
use mp5_trace::MemSink;
use mp5_types::{PacketId, PipelineId, RegId, StageId};

fn bench_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop_data", |b| {
        let mut f: LogicalFifo<u64> = LogicalFifo::new(4, None);
        let mut i = 0u64;
        b.iter(|| {
            f.push_data(i, OrderKey(i, 0), PipelineId((i % 4) as u16))
                .unwrap();
            i += 1;
            match f.pop() {
                PopOutcome::Data(v) => v,
                _ => unreachable!(),
            }
        });
    });
    g.bench_function("phantom_insert_pop", |b| {
        let mut f: LogicalFifo<u64> = LogicalFifo::new(4, None);
        let mut i = 0u64;
        b.iter(|| {
            let key = PhantomKey {
                pkt: PacketId(i),
                reg: RegId(0),
                index: (i % 64) as u32,
            };
            f.push_phantom(key, OrderKey(i, 0), PipelineId((i % 4) as u16))
                .unwrap();
            f.insert_data(key, i).unwrap();
            i += 1;
            match f.pop() {
                PopOutcome::Data(v) => v,
                _ => unreachable!(),
            }
        });
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("phantom_channel_inject_advance", |b| {
        let mut ch: PhantomChannel<u64> = PhantomChannel::new(16);
        let mut i = 0u64;
        b.iter(|| {
            ch.inject(i, StageId(0), StageId(8));
            i += 1;
            ch.advance().len()
        });
    });
}

fn bench_compile(c: &mut Criterion) {
    let flowlet = mp5_apps::FLOWLET.source;
    c.bench_function("compile_flowlet", |b| {
        b.iter(|| compile(flowlet, &Target::default()).unwrap());
    });
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_sim");
    g.sample_size(10);
    for k in [2usize, 4, 8] {
        let cfg = SynthConfig {
            pipelines: k,
            packets: 5_000,
            ..Default::default()
        };
        let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
        g.throughput(Throughput::Elements(cfg.packets as u64));
        g.bench_with_input(BenchmarkId::new("mp5_packets", k), &k, |b, &k| {
            b.iter(|| {
                let trace = synthetic_trace(&prog, &cfg);
                Mp5Switch::new(prog.clone(), SwitchConfig::mp5(k))
                    .run(trace)
                    .completed
            });
        });
    }
    g.finish();
}

/// The work phase's two execution paths head-to-head on the flowlet
/// application: the scalar reference interpreter versus the default
/// SoA batch kernel, same trace, same config otherwise.
fn bench_exec_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_path");
    g.sample_size(10);
    let app = mp5_apps::by_name("flowlet").unwrap();
    let prog = app.compile().unwrap();
    let packets = 5_000usize;
    let (_, trace) = mp5_sim::experiments::app_trace(app, packets, 1);
    g.throughput(Throughput::Elements(packets as u64));
    for (name, exec) in [("scalar", ExecPath::Scalar), ("batch", ExecPath::Batch)] {
        g.bench_with_input(BenchmarkId::new("flowlet_k8", name), &exec, |b, &exec| {
            b.iter(|| {
                Mp5Switch::new(prog.clone(), SwitchConfig::mp5(8).with_exec(exec))
                    .run(trace.clone())
                    .completed
            });
        });
    }
    g.finish();
}

/// The batched move phase head-to-head with the scalar reference on
/// the heavy-queue hot-state workload (every packet in one flow, so
/// queues never drain and the cycle loop spends its time in the move
/// phase and the FIFO service scan — the paths the occupancy index and
/// the mask-driven batched move exist for).
fn bench_move_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("move_phase");
    g.sample_size(10);
    let packets = 3_000usize;
    let (prog, trace) = mp5_bench::suite::hotstate_trace(packets, 1);
    g.throughput(Throughput::Elements(packets as u64));
    for (name, exec) in [("scalar", ExecPath::Scalar), ("batch", ExecPath::Batch)] {
        g.bench_with_input(BenchmarkId::new("hotstate_k8", name), &exec, |b, &exec| {
            b.iter(|| {
                Mp5Switch::new(prog.clone(), SwitchConfig::mp5(8).with_exec(exec))
                    .run(trace.clone())
                    .completed
            });
        });
    }
    g.finish();
}

/// Traced execution no longer falls back to scalar: a `MemSink` run
/// rides the batch path (per-batch event buffers flushed in canonical
/// scalar order), so the scalar-vs-batch gap must survive tracing.
fn bench_traced_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("traced_exec");
    g.sample_size(10);
    let app = mp5_apps::by_name("flowlet").unwrap();
    let prog = app.compile().unwrap();
    let packets = 3_000usize;
    let (_, trace) = mp5_sim::experiments::app_trace(app, packets, 1);
    g.throughput(Throughput::Elements(packets as u64));
    for (name, exec) in [("scalar", ExecPath::Scalar), ("batch", ExecPath::Batch)] {
        g.bench_with_input(BenchmarkId::new("flowlet_k8", name), &exec, |b, &exec| {
            b.iter(|| {
                let (rep, sink) = Mp5Switch::with_sink(
                    prog.clone(),
                    SwitchConfig::mp5(8).with_exec(exec),
                    MemSink::new(),
                )
                .run_traced(trace.clone());
                (rep.completed, sink.into_events().len())
            });
        });
    }
    g.finish();
}

/// Tracing must be pay-for-what-you-use: the default `NopSink`
/// (statically dispatched, `ENABLED = false`) run must be
/// indistinguishable from the pre-tracing switch, while an in-memory
/// sink quantifies the cost of full observability.
fn bench_sink(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_sink");
    g.sample_size(10);
    let cfg = SynthConfig {
        pipelines: 4,
        packets: 5_000,
        ..Default::default()
    };
    let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
    g.throughput(Throughput::Elements(cfg.packets as u64));
    g.bench_function("nop_sink", |b| {
        b.iter(|| {
            let trace = synthetic_trace(&prog, &cfg);
            Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4))
                .run(trace)
                .completed
        });
    });
    g.bench_function("mem_sink", |b| {
        b.iter(|| {
            let trace = synthetic_trace(&prog, &cfg);
            let (rep, sink) =
                Mp5Switch::with_sink(prog.clone(), SwitchConfig::mp5(4), MemSink::new())
                    .run_traced(trace);
            (rep.completed, sink.into_events().len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fifo,
    bench_channel,
    bench_compile,
    bench_switch,
    bench_exec_path,
    bench_move_phase,
    bench_traced_exec,
    bench_sink
);
criterion_main!(benches);
