//! `mp5bench` — benchmark the sequential vs parallel cycle engines on
//! the paper's four real applications and write a machine-readable
//! report.
//!
//! ```sh
//! cargo run --release -p mp5-bench --bin mp5bench -- \
//!     [--quick] [--packets N] [--seed N] [--workers N] \
//!     [--out BENCH_main.json] [--gate ci/bench_baseline.json] \
//!     [--tolerance 0.15] [--require-speedup]
//! ```
//!
//! * Default mode runs the full matrix (4 apps × pipelines {1,2,4,8} ×
//!   both engines) and writes `BENCH_main.json`.
//! * `--quick` shrinks the matrix for the CI smoke job.
//! * `--gate FILE` additionally compares this run against a committed
//!   baseline report and exits non-zero when packet throughput
//!   regressed beyond the tolerance, printing a per-row delta table
//!   (also appended to `$GITHUB_STEP_SUMMARY` when set). A failing
//!   compare re-measures up to twice, folding the best observation per
//!   point into the report (wall-clock noise on a shared runner is
//!   one-sided; a true regression fails all three attempts). Under `--gate`
//!   the SoA check — batch work phase ≥1.5× the scalar per-cycle p50 on
//!   the `hotpath` rows at k=8 — and the hot-state check — ≥1.3× on the
//!   heavy-queue `hotstate` rows, where the empty-queue early-outs
//!   never bite — are hard failures too. Baselines are host-specific:
//!   regenerate with `--out` on the machine that will enforce the gate.
//! * `--require-speedup` turns the flowlet ≥2× @ k=8 speedup target
//!   into a hard failure (it is skipped with a notice on hosts with
//!   fewer than 4 cores, and reported informationally otherwise).

use mp5_bench::suite::{self, BenchOpts};

struct Cli {
    opts: BenchOpts,
    out: String,
    gate: Option<String>,
    tolerance: f64,
    require_speedup: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5bench [--quick] [--packets N] [--seed N] [--workers N] \
         [--out FILE] [--gate BASELINE] [--tolerance FRAC] [--require-speedup]"
    );
    std::process::exit(2)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        opts: BenchOpts::default(),
        out: "BENCH_main.json".into(),
        gate: None,
        tolerance: 0.15,
        require_speedup: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--quick" => cli.opts.quick = true,
            "--packets" => {
                cli.opts.packets = Some(val("--packets").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => cli.opts.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--workers" => {
                cli.opts.workers = Some(val("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--out" => cli.out = val("--out"),
            "--gate" => cli.gate = Some(val("--gate")),
            "--tolerance" => cli.tolerance = val("--tolerance").parse().unwrap_or_else(|_| usage()),
            "--require-speedup" => cli.require_speedup = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    println!(
        "== mp5bench ({}) ==\nmatrix: {} packets/run, seed {}, host cpus {}\n",
        if cli.opts.quick { "quick" } else { "full" },
        cli.opts.effective_packets(),
        cli.opts.seed,
        suite::host_cpus()
    );
    let mut report = suite::run_suite(&cli.opts);
    print!("{}", suite::render_summary(&report));

    if let Err(e) = std::fs::write(&cli.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", cli.out);
        std::process::exit(1);
    }
    println!("\nreport ({}): -> {}", suite::SCHEMA, cli.out);

    match suite::speedup_check(&report, 2.0, 4) {
        Ok(msg) => println!("{msg}"),
        Err(msg) => {
            eprintln!("{msg}");
            if cli.require_speedup {
                std::process::exit(1);
            }
        }
    }

    // The SoA work-phase trajectory: informational on plain runs, a
    // hard failure under --gate (a committed baseline implies the host
    // is one we trust to measure on).
    let mut soa = suite::soa_check(&report, 1.5);
    match &soa {
        Ok(msg) => println!("{msg}"),
        Err(msg) => eprintln!("{msg}"),
    }

    // Same trajectory under sustained queue pressure: the batch work
    // phase must also win when the empty-queue early-outs never bite.
    let mut hotstate = suite::hotstate_check(&report, 1.3);
    match &hotstate {
        Ok(msg) => println!("{msg}"),
        Err(msg) => eprintln!("{msg}"),
    }

    if let Some(path) = &cli.gate {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1)
        });
        let baseline = suite::BenchReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("baseline {path}: {e}");
            std::process::exit(1)
        });
        let mut outcome = suite::gate(&report, &baseline, cli.tolerance);

        // Shared-runner wall-clock noise is one-sided (the host only
        // ever runs slower than the code's capability), so a failed
        // compare re-measures up to twice and folds the best
        // observation per point into the report before the verdict —
        // a real regression still fails all three attempts.
        let mut attempts = 0;
        while !(outcome.is_ok() && soa.is_ok() && hotstate.is_ok()) && attempts < 2 {
            attempts += 1;
            eprintln!("gate: measurement below baseline; re-measuring (attempt {attempts}/2)");
            report.merge_best(suite::run_suite(&cli.opts));
            outcome = suite::gate(&report, &baseline, cli.tolerance);
            soa = suite::soa_check(&report, 1.5);
            hotstate = suite::hotstate_check(&report, 1.3);
        }
        if attempts > 0 {
            // The artifact must hold what was gated on.
            if let Err(e) = std::fs::write(&cli.out, report.to_json()) {
                eprintln!("cannot write {}: {e}", cli.out);
                std::process::exit(1);
            }
        }
        for s in &outcome.skipped {
            println!("gate: skipped {s}");
        }

        // Per-row delta table: stdout always, and into the GitHub step
        // summary when Actions provides one.
        let delta = suite::render_delta(&report, &baseline);
        println!("\ndelta vs {path}:\n{delta}");
        if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
            use std::io::Write;
            let appended = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(&summary_path)
                .and_then(|mut f| writeln!(f, "### mp5bench delta vs `{path}`\n\n{delta}"));
            if let Err(e) = appended {
                eprintln!("cannot append step summary {summary_path}: {e}");
            }
        }

        if outcome.is_ok() && soa.is_ok() && hotstate.is_ok() {
            println!(
                "gate PASSED: {} point(s) within {:.0}% of {path}",
                outcome.passed,
                cli.tolerance * 100.0
            );
        } else {
            for f in &outcome.failures {
                eprintln!("gate FAILED: {f}");
            }
            for check in [&soa, &hotstate] {
                if let Err(msg) = check {
                    eprintln!("gate FAILED: {msg}");
                }
            }
            std::process::exit(1);
        }
    }
}
