//! Shared helpers for the benchmark harness.
//!
//! Every table and figure in the paper's evaluation (§4) has a
//! `cargo bench --bench <name>` target in `benches/`:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 (chip area & clock) + §4.2 SRAM overhead |
//! | `micro_d2` | §4.3.2 dynamic vs static sharding |
//! | `micro_d3` | §4.3.2 steering vs recirculation throughput |
//! | `micro_d4` | §4.3.2 C1 violation fractions |
//! | `fig7a`–`fig7d` | Figure 7 sensitivity panels |
//! | `fig8` | Figure 8 real applications |
//! | `hotpath` | Criterion micro-benchmarks of the simulator/compiler |
//!
//! Scale knobs: `MP5_EXP_PACKETS` (default 20 000) and `MP5_EXP_SEEDS`
//! (default 5; paper used 10 streams).
//!
//! The crate also ships the `mp5bench` binary (module [`suite`]): the
//! sequential-vs-parallel engine benchmark matrix behind
//! `BENCH_main.json` and the CI perf-regression gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;

/// Prints the standard experiment banner with the active scale knobs.
pub fn banner(what: &str, paper_ref: &str) {
    println!("== {what} ==");
    println!("reproduces: {paper_ref}");
    println!(
        "scale: {} packets/run, {} streams/point (env MP5_EXP_PACKETS / MP5_EXP_SEEDS)\n",
        mp5_sim::experiments::packets_per_run(),
        mp5_sim::experiments::seeds_per_point()
    );
}

/// If `MP5_EXP_JSON` names a directory, archive the experiment's rows
/// there as `<name>.json` (pretty-printed) for post-processing.
pub fn maybe_dump_json<T: serde::Serialize>(name: &str, rows: &[T]) {
    if let Ok(dir) = std::env::var("MP5_EXP_JSON") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        let json = match mp5_sim::table::to_json(rows) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("warning: could not serialize {name} rows: {e}");
                return;
            }
        };
        match std::fs::write(&path, json) {
            Ok(()) => println!("(rows archived to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Min/max over a slice.
pub fn min_max(vals: impl IntoIterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    #[test]
    fn min_max_works() {
        assert_eq!(super::min_max([2.0, 1.0, 3.0]), (1.0, 3.0));
    }
}
