//! The `mp5bench` engine-benchmark suite: measures the sequential and
//! parallel cycle engines on the paper's four real applications and
//! emits a machine-readable report (`BENCH_main.json`, schema
//! [`SCHEMA`]) plus a human summary.
//!
//! The same module implements the CI perf-regression gate: a committed
//! baseline report is compared row-by-row against a fresh run and the
//! gate fails when packet throughput regresses beyond the tolerance.
//! Benchmarks are host-specific, so the gate is only meaningful against
//! a baseline produced on comparable hardware (it is opt-in in `ci.sh`
//! behind `CI_BENCH=1` for exactly that reason).

use std::time::Instant;

use mp5_core::{EngineMode, ExecPath, Mp5Switch, SwitchConfig};
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every report this module writes.
///
/// v2 added the fault-recovery columns (`degraded_cycles`,
/// `phantoms_recovered`); v3 added the `fabric` flag plus the
/// multi-switch fabric rows measured through `mp5-topo`; v4 added the
/// `exec` column (scalar vs SoA-batch work phase) plus the `hotpath`
/// scalar-vs-batch rows behind the SoA speedup check; v5 added the
/// `resolved` column (how the engine actually ran, exposing the
/// single-worker inline fast path) plus the `hotstate` heavy-queue
/// rows behind the hot-state speedup check; v6 added the `snapshot`
/// row measuring the live-operation checkpoint path (state extraction
/// plus codec encode) from `mp5-serve`. Regenerate committed
/// baselines with `--out` after a schema bump.
pub const SCHEMA: &str = "mp5bench/v6";

/// Pipeline counts of the full matrix.
pub const FULL_PIPELINES: [usize; 4] = [1, 2, 4, 8];

/// Pipeline counts of the `--quick` matrix (CI smoke).
pub const QUICK_PIPELINES: [usize; 2] = [1, 4];

/// Options of one suite run.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Shrink the matrix for a CI smoke run (fewer apps, fewer
    /// pipeline counts, fewer packets).
    pub quick: bool,
    /// Packets per run (`None`: 10 000 full, 2 000 quick).
    pub packets: Option<usize>,
    /// Trace seed.
    pub seed: u64,
    /// Worker threads for the parallel engine (`None`: one per
    /// pipeline).
    pub workers: Option<usize>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            packets: None,
            seed: 1,
            workers: None,
        }
    }
}

impl BenchOpts {
    /// Packets per run after applying the quick/full defaults.
    pub fn effective_packets(&self) -> usize {
        self.packets
            .unwrap_or(if self.quick { 2_000 } else { 10_000 })
    }
}

/// One measured `(app, pipelines, engine, exec)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Application name.
    pub app: String,
    /// Pipelines `k`.
    pub pipelines: usize,
    /// `"seq"` or `"par"`.
    pub engine: String,
    /// Work-phase execution path: `"batch"` (the SoA default) or
    /// `"scalar"` (the reference interpreter, measured by the
    /// `hotpath` rows).
    pub exec: String,
    /// Worker threads (0 for the sequential engine).
    pub workers: usize,
    /// How the engine actually ran: `"seq"`, `"par"`, or `"inline"` —
    /// a `Parallel(n)` config that resolved to a single worker and ran
    /// its one job on the coordinator thread, skipping the per-cycle
    /// rendezvous barrier entirely.
    pub resolved: String,
    /// Packets offered.
    pub packets: u64,
    /// Packets completed.
    pub completed: u64,
    /// Simulated cycles until drain.
    pub cycles: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Completed packets per wall-clock second.
    pub pkts_per_sec: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock speedup over the sequential engine at the same
    /// `(app, pipelines)` point (1.0 for sequential rows).
    pub speedup_vs_sequential: f64,
    /// Median per-cycle wall time in nanoseconds.
    pub p50_cycle_ns: u64,
    /// 99th-percentile per-cycle wall time in nanoseconds.
    pub p99_cycle_ns: u64,
    /// The run's simulated normalized throughput (sanity: engine
    /// choice must not change it).
    pub normalized_throughput: f64,
    /// Cycles spent with at least one dead pipeline (0 under the
    /// default `NoFaults` injector — the benchmark matrix runs
    /// fault-free, the column exists so faulted reports share the
    /// schema).
    pub degraded_cycles: u64,
    /// Lost phantoms recovered back into FIFO order (0 fault-free).
    pub phantoms_recovered: u64,
    /// True for multi-switch fabric rows (measured through `mp5-topo`;
    /// `packets`/`completed` are then fabric injected/delivered and
    /// `cycles` is global fabric ticks).
    pub fabric: bool,
}

/// A full suite report (what `BENCH_main.json` holds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Packets per run.
    pub packets: u64,
    /// Trace seed.
    pub seed: u64,
    /// Host parallelism when the report was produced (benchmarks are
    /// host-specific; gate only against comparable hardware).
    pub host_cpus: u64,
    /// The measurements.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench rows are plain structs")
    }

    /// Parses a report back (for the regression gate).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let rep: BenchReport =
            serde_json::from_str(s).map_err(|e| format!("unparseable bench report: {e}"))?;
        if rep.schema != SCHEMA {
            return Err(format!(
                "bench report schema '{}' (expected '{SCHEMA}')",
                rep.schema
            ));
        }
        Ok(rep)
    }

    /// The row at an exact `(app, pipelines, engine, exec)` point.
    pub fn row(&self, app: &str, pipelines: usize, engine: &str, exec: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| {
            r.app == app && r.pipelines == pipelines && r.engine == engine && r.exec == exec
        })
    }

    /// Folds a re-measurement into this report, keeping per matched
    /// point whichever attempt observed the higher `pkts_per_sec`
    /// (the whole row moves together, so its p50/p99 stay consistent
    /// with its throughput). Wall-clock noise on a shared host is
    /// one-sided — the machine only ever gets *slower* than the code's
    /// capability — so best-of-N is the unbiased capability estimate,
    /// and a true regression still fails every attempt. `mp5bench
    /// --gate` uses this to re-measure before failing the run.
    pub fn merge_best(&mut self, other: BenchReport) {
        for row in other.rows {
            match self.rows.iter_mut().find(|r| {
                r.app == row.app
                    && r.pipelines == row.pipelines
                    && r.engine == row.engine
                    && r.exec == row.exec
            }) {
                Some(r) if row.pkts_per_sec > r.pkts_per_sec => *r = row,
                Some(_) => {}
                None => self.rows.push(row),
            }
        }
    }
}

/// Host parallelism (1 when undeterminable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One measured single-switch run: the report with its per-cycle
/// timings and total wall clock, as produced by [`time_run`].
struct Measured {
    report: mp5_core::RunReport,
    timings: mp5_core::CycleTimings,
    wall_ms: f64,
}

fn time_run(
    prog: &mp5_compiler::CompiledProgram,
    trace: &[mp5_types::Packet],
    cfg: SwitchConfig,
) -> Measured {
    let sw = Mp5Switch::new(prog.clone(), cfg);
    let start = Instant::now();
    let (report, _sink, timings) = sw
        .try_run_timed(trace.to_vec())
        .expect("benchmark run drains");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Measured {
        report,
        timings,
        wall_ms,
    }
}

fn row_from(
    app: &str,
    k: usize,
    engine: &str,
    exec: ExecPath,
    workers: usize,
    m: &Measured,
) -> BenchRow {
    let secs = (m.wall_ms / 1e3).max(1e-12);
    BenchRow {
        app: app.to_string(),
        pipelines: k,
        engine: engine.to_string(),
        exec: exec.to_string(),
        workers,
        resolved: resolved_mode(engine, workers),
        packets: m.report.offered,
        completed: m.report.completed,
        cycles: m.report.cycles,
        wall_ms: m.wall_ms,
        pkts_per_sec: m.report.completed as f64 / secs,
        cycles_per_sec: m.report.cycles as f64 / secs,
        speedup_vs_sequential: 1.0,
        p50_cycle_ns: m.timings.percentile(50.0),
        p99_cycle_ns: m.timings.percentile(99.0),
        normalized_throughput: m.report.normalized_throughput(),
        degraded_cycles: m.report.fault.degraded_cycles,
        phantoms_recovered: m.report.fault.phantoms_recovered,
        fabric: false,
    }
}

/// Measures one leaf–spine fabric point (`leaves`×`spines`, 2 hosts per
/// leaf) on the given engine and returns `(report, wall_ms)`.
fn time_fabric(
    k: usize,
    leaves: usize,
    spines: usize,
    flows: u64,
    seed: u64,
    engine: EngineMode,
) -> (mp5_topo::FabricReport, f64) {
    use mp5_topo::{Fabric, FabricConfig, TopologyConfig};

    let app = mp5_apps::by_name("heavy_hitter").expect("bundled app");
    let prog = app.compile().expect("bundled app compiles");
    let fill = app.fill;
    let topo = TopologyConfig::leaf_spine(leaves, spines, 2)
        .validate()
        .expect("valid bench topology");
    let hosts = topo.num_hosts();
    let mut cfg = FabricConfig::new(
        SwitchConfig::mp5(k)
            .with_hardware_fifos()
            .with_engine(engine),
    );
    cfg.seed = seed;
    let workload = mp5_traffic::DcWorkload::new(hosts, flows, seed).max_pkts_per_flow(4);
    let fabric = Fabric::new(topo, cfg, prog.clone()).expect("valid fabric config");
    let prog2 = prog.clone();
    let start = Instant::now();
    let run = fabric.run(workload.stream(), move |key, rng, fields| {
        fill(&prog2, key, rng, fields)
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (run.report, wall_ms)
}

fn fabric_row(
    name: &str,
    k: usize,
    engine: &str,
    workers: usize,
    rep: &mp5_topo::FabricReport,
    wall_ms: f64,
) -> BenchRow {
    let secs = (wall_ms / 1e3).max(1e-12);
    BenchRow {
        app: name.to_string(),
        pipelines: k,
        engine: engine.to_string(),
        exec: ExecPath::Batch.to_string(),
        workers,
        resolved: resolved_mode(engine, workers),
        packets: rep.injected,
        completed: rep.delivered,
        cycles: rep.ticks,
        wall_ms,
        pkts_per_sec: rep.delivered as f64 / secs,
        cycles_per_sec: rep.ticks as f64 / secs,
        speedup_vs_sequential: 1.0,
        p50_cycle_ns: 0,
        p99_cycle_ns: 0,
        normalized_throughput: rep.delivered_fraction(),
        degraded_cycles: 0,
        phantoms_recovered: 0,
        fabric: true,
    }
}

/// Runs the suite: each app × pipeline-count point is measured with
/// the sequential engine and then the parallel engine, asserting along
/// the way that both engines produced the **same simulation** (same
/// completion counts, cycles, and normalized throughput).
pub fn run_suite(opts: &BenchOpts) -> BenchReport {
    let apps: &[mp5_apps::AppSpec] = if opts.quick {
        &mp5_apps::PAPER_APPS[..2]
    } else {
        &mp5_apps::PAPER_APPS[..]
    };
    let ks: &[usize] = if opts.quick {
        &QUICK_PIPELINES
    } else {
        &FULL_PIPELINES
    };
    let packets = opts.effective_packets();
    let mut rows = Vec::new();
    for app in apps {
        let (prog, trace) = mp5_sim::experiments::app_trace(app, packets, opts.seed);
        for &k in ks {
            let seq_cfg = SwitchConfig::mp5(k);
            let seq = time_run(&prog, &trace, seq_cfg);
            rows.push(row_from(app.name, k, "seq", ExecPath::Batch, 0, &seq));

            let workers = opts.workers.unwrap_or(k).max(1);
            let par_cfg = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(workers));
            let par = time_run(&prog, &trace, par_cfg);
            assert_eq!(
                seq.report, par.report,
                "{} k={k}: engines diverged — bit-identity broken",
                app.name
            );
            let mut row = row_from(
                app.name,
                k,
                "par",
                ExecPath::Batch,
                par_cfg_workers(workers, k),
                &par,
            );
            row.speedup_vs_sequential = seq.wall_ms / par.wall_ms.max(1e-12);
            rows.push(row);
        }
    }

    // Hot-path rows: the same flowlet trace through the sequential
    // engine on both work-phase execution paths, asserting bit-identity
    // along the way. These back the SoA speedup check ([`soa_check`])
    // and give the CI delta table a scalar-vs-batch trajectory.
    let hot_ks: &[usize] = if opts.quick { &[8] } else { &[2, 4, 8] };
    let hot_app = &mp5_apps::PAPER_APPS[0];
    debug_assert_eq!(hot_app.name, "flowlet");
    let (hot_prog, hot_trace) = mp5_sim::experiments::app_trace(hot_app, packets, opts.seed);
    for &k in hot_ks {
        let mut path_reports = Vec::new();
        for exec in [ExecPath::Scalar, ExecPath::Batch] {
            let cfg = SwitchConfig::mp5(k).with_exec(exec);
            let m = time_run(&hot_prog, &hot_trace, cfg);
            rows.push(row_from("hotpath", k, "seq", exec, 0, &m));
            path_reports.push(m.report);
        }
        assert_eq!(
            path_reports[0], path_reports[1],
            "hotpath k={k}: scalar and batch work phases diverged — bit-identity broken"
        );
    }

    // Hot-state rows: the single-hot-flow trace keeps the owning
    // pipeline's stage FIFO occupied for the whole run, so the
    // per-cycle cost is FIFO service plus serialized state access —
    // the empty-queue early-outs that dominate the `hotpath` rows
    // never bite. These back the hot-state speedup check
    // ([`hotstate_check`]).
    let hs_ks: &[usize] = if opts.quick { &[8] } else { &[4, 8] };
    // The heavy-queue run serializes on one register index, so cycles
    // scale with packets rather than packets/k; a smaller trace keeps
    // the suite's wall time in the same ballpark as the other rows.
    let hs_packets = (packets / 2).max(500);
    let (hs_prog, hs_trace) = hotstate_trace(hs_packets, opts.seed);
    for &k in hs_ks {
        let mut path_reports = Vec::new();
        for exec in [ExecPath::Scalar, ExecPath::Batch] {
            let cfg = SwitchConfig::mp5(k).with_exec(exec);
            let m = time_run(&hs_prog, &hs_trace, cfg);
            rows.push(row_from("hotstate", k, "seq", exec, 0, &m));
            path_reports.push(m.report);
        }
        assert_eq!(
            path_reports[0], path_reports[1],
            "hotstate k={k}: scalar and batch work phases diverged — bit-identity broken"
        );
    }

    // Snapshot row: cost of the live-operation checkpoint path. The
    // flowlet trace is replayed through the streaming `mp5-serve`
    // server and a checkpoint — state extraction plus the full
    // snapshot codec — is taken every few cycles; the per-checkpoint
    // wall times feed the p50/p99 columns. Three columns are
    // reinterpreted for this row: `wall_ms` is the total time spent
    // checkpointing, `pkts_per_sec` is checkpoints per second (what
    // the regression gate tracks), and `cycles_per_sec` is encoded
    // snapshot bytes per second.
    rows.push(snapshot_row(hot_app.source, &hot_trace));

    // Fabric rows: whole-switch composition through mp5-topo, seq and
    // par measured on the same workload with bit-identity asserted.
    let fabric_points: &[(usize, usize, u64)] = if opts.quick {
        &[(2, 2, 600)]
    } else {
        &[(2, 2, 2_000), (4, 2, 2_000)]
    };
    let fk = 4usize;
    for &(leaves, spines, flows) in fabric_points {
        let name = format!("fabric-{leaves}x{spines}");
        let (seq_rep, seq_ms) =
            time_fabric(fk, leaves, spines, flows, opts.seed, EngineMode::Sequential);
        rows.push(fabric_row(&name, fk, "seq", 0, &seq_rep, seq_ms));
        let workers = opts.workers.unwrap_or(fk).max(1);
        let (par_rep, par_ms) = time_fabric(
            fk,
            leaves,
            spines,
            flows,
            opts.seed,
            EngineMode::Parallel(workers),
        );
        assert_eq!(
            seq_rep, par_rep,
            "{name}: fabric engines diverged — bit-identity broken"
        );
        let mut row = fabric_row(
            &name,
            fk,
            "par",
            par_cfg_workers(workers, fk),
            &par_rep,
            par_ms,
        );
        row.speedup_vs_sequential = seq_ms / par_ms.max(1e-12);
        rows.push(row);
    }

    BenchReport {
        schema: SCHEMA.to_string(),
        quick: opts.quick,
        packets: packets as u64,
        seed: opts.seed,
        host_cpus: host_cpus() as u64,
        rows,
    }
}

/// Builds the synthetic heavy-queue trace behind the `hotstate` rows:
/// the flowlet program fed a §4.4 line-rate arrival process in which
/// **every packet belongs to the same flow**. Dynamic sharding pins the
/// flow's register to one pipeline, round-robin spray keeps all `k`
/// source lanes of that pipeline's FIFO populated, and the serialized
/// state accesses mean the queue never drains mid-run — the workload
/// the FIFO service path (occupancy index + fused stale-drain scan)
/// exists for.
pub fn hotstate_trace(
    packets: usize,
    seed: u64,
) -> (mp5_compiler::CompiledProgram, Vec<mp5_types::Packet>) {
    use mp5_traffic::FlowTraceBuilder;

    let app = &mp5_apps::PAPER_APPS[0];
    debug_assert_eq!(app.name, "flowlet");
    let prog = app.compile().expect("bundled app compiles");
    let nf = prog.num_fields();
    let fill = app.fill;
    let hot = mp5_types::FlowKey {
        src_ip: 0x0a00_0001,
        dst_ip: 0x0a00_0002,
        src_port: 7,
        dst_port: 443,
        proto: 6,
    };
    // The builder still generates its flow table (arrival process and
    // packet sizes are a function of the seed alone), but every packet
    // is filled as if it came from the one hot flow.
    let (mut trace, _flows) = FlowTraceBuilder::new(packets, seed)
        .build(nf, |rng, _key, fields| fill(&prog, &hot, rng, fields));
    if let Some(id) = prog.field("arr_ts") {
        for p in &mut trace {
            p.fields[id.index()] = p.arrival as i64;
        }
    }
    (prog, trace)
}

/// Cadence of the `snapshot` row's checkpoints, in cycles. Dense
/// enough that even the quick suite's short run collects a handful of
/// latency samples.
const SNAPSHOT_EVERY: u64 = 32;

/// Measures the `snapshot` row: replays `trace` through a streaming
/// [`mp5_serve::Server`] at `k = 4` on the sequential engine, taking a
/// checkpoint (state extraction + codec encode) every
/// [`SNAPSHOT_EVERY`] cycles, and reports the per-checkpoint latency
/// distribution.
fn snapshot_row(source: &str, trace: &[mp5_types::Packet]) -> BenchRow {
    use mp5_faults::NoFaults;
    use mp5_serve::Server;
    use mp5_trace::NopSink;

    let k = 4usize;
    let mut srv: Server<NopSink, NoFaults> =
        Server::new(source, SwitchConfig::mp5(k), NopSink, None).expect("bundled app compiles");
    srv.offer_all(trace.to_vec());
    let mut ckpt_ns: Vec<u64> = Vec::new();
    let mut encoded_bytes = 0u64;
    while !srv.is_idle() {
        srv.tick();
        srv.drain_egress();
        if srv.cycle().is_multiple_of(SNAPSHOT_EVERY) {
            let t = Instant::now();
            let text = srv.checkpoint().encode();
            ckpt_ns.push(t.elapsed().as_nanos() as u64);
            encoded_bytes += text.len() as u64;
        }
    }
    let (report, _sink) = srv.finish();

    ckpt_ns.sort_unstable();
    let pct = |p: f64| -> u64 {
        match ckpt_ns.len() {
            0 => 0,
            n => ckpt_ns[((n as f64 * p / 100.0).ceil() as usize).clamp(1, n) - 1],
        }
    };
    let total_ns: u64 = ckpt_ns.iter().sum();
    let secs = (total_ns as f64 / 1e9).max(1e-12);
    BenchRow {
        app: "snapshot".to_string(),
        pipelines: k,
        engine: "seq".to_string(),
        exec: ExecPath::Batch.to_string(),
        workers: 0,
        resolved: "seq".to_string(),
        packets: report.offered,
        completed: report.completed,
        cycles: report.cycles,
        wall_ms: total_ns as f64 / 1e6,
        pkts_per_sec: ckpt_ns.len() as f64 / secs,
        cycles_per_sec: encoded_bytes as f64 / secs,
        speedup_vs_sequential: 1.0,
        p50_cycle_ns: pct(50.0),
        p99_cycle_ns: pct(99.0),
        normalized_throughput: report.normalized_throughput(),
        degraded_cycles: 0,
        phantoms_recovered: 0,
        fabric: false,
    }
}

fn par_cfg_workers(requested: usize, pipelines: usize) -> usize {
    EngineMode::Parallel(requested).workers_for(pipelines)
}

/// The mode a row actually ran in. A parallel config whose worker
/// count resolves to 1 produces a single shard job which the engine
/// runs inline on the coordinator — no rendezvous barrier.
fn resolved_mode(engine: &str, resolved_workers: usize) -> String {
    match (engine, resolved_workers) {
        ("par", 0 | 1) => "inline".to_string(),
        _ => engine.to_string(),
    }
}

/// Renders the report as an aligned human-readable table.
pub fn render_summary(rep: &BenchReport) -> String {
    let headers = [
        "app", "k", "engine", "exec", "wrk", "mode", "pkts/s", "cyc/s", "speedup", "p50ns",
        "p99ns", "tput", "faulted",
    ];
    let rows: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.pipelines.to_string(),
                r.engine.clone(),
                r.exec.clone(),
                r.workers.to_string(),
                r.resolved.clone(),
                format!("{:.0}", r.pkts_per_sec),
                format!("{:.0}", r.cycles_per_sec),
                format!("{:.2}x", r.speedup_vs_sequential),
                r.p50_cycle_ns.to_string(),
                r.p99_cycle_ns.to_string(),
                format!("{:.3}", r.normalized_throughput),
                // degraded-cycles / recovered-phantoms; "-" fault-free.
                if r.degraded_cycles == 0 && r.phantoms_recovered == 0 {
                    "-".to_string()
                } else {
                    format!("{}/{}", r.degraded_cycles, r.phantoms_recovered)
                },
            ]
        })
        .collect();
    mp5_sim::table::render(&headers, &rows)
}

/// Outcome of the perf-regression gate.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Points compared and within tolerance.
    pub passed: usize,
    /// Points present in only one of the two reports (informational).
    pub skipped: Vec<String>,
    /// Human-readable failures; empty means the gate passed.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passed.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against a committed `baseline`: every row present
/// in both (matched on `(app, pipelines, engine, exec)`) must keep
/// `pkts_per_sec` within `tolerance` (e.g. `0.15`) below the baseline.
/// Faster-than-baseline is always fine.
pub fn gate(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in &baseline.rows {
        let Some(cur) = current.row(&base.app, base.pipelines, &base.engine, &base.exec) else {
            out.skipped.push(format!(
                "{} k={} {} {}: not measured in this run",
                base.app, base.pipelines, base.engine, base.exec
            ));
            continue;
        };
        let floor = base.pkts_per_sec * (1.0 - tolerance);
        if cur.pkts_per_sec < floor {
            out.failures.push(format!(
                "{} k={} {} {}: {:.0} pkts/s is {:.1}% below baseline {:.0} (tolerance {:.0}%)",
                base.app,
                base.pipelines,
                base.engine,
                base.exec,
                cur.pkts_per_sec,
                (1.0 - cur.pkts_per_sec / base.pkts_per_sec) * 100.0,
                base.pkts_per_sec,
                tolerance * 100.0
            ));
        } else {
            out.passed += 1;
        }
    }
    for cur in &current.rows {
        if baseline
            .row(&cur.app, cur.pipelines, &cur.engine, &cur.exec)
            .is_none()
        {
            out.skipped.push(format!(
                "{} k={} {} {}: no baseline point",
                cur.app, cur.pipelines, cur.engine, cur.exec
            ));
        }
    }
    out
}

/// Renders a per-row delta table (current vs baseline) as GitHub-
/// flavoured markdown, for the CI step summary. Rows missing from
/// either report are listed with a `—` delta so silent matrix shrinkage
/// is visible in the same table.
pub fn render_delta(current: &BenchReport, baseline: &BenchReport) -> String {
    fn pct(cur: f64, base: f64) -> String {
        if base <= 0.0 {
            return "—".into();
        }
        format!("{:+.1}%", (cur / base - 1.0) * 100.0)
    }
    let mut out = String::new();
    out.push_str("| app | k | engine | exec | pkts/s | Δ pkts/s | p50 ns | Δ p50 |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for cur in &current.rows {
        let point = format!(
            "| {} | {} | {} | {} ",
            cur.app, cur.pipelines, cur.engine, cur.exec
        );
        match baseline.row(&cur.app, cur.pipelines, &cur.engine, &cur.exec) {
            Some(base) => {
                out.push_str(&format!(
                    "{point}| {:.0} | {} | {} | {} |\n",
                    cur.pkts_per_sec,
                    pct(cur.pkts_per_sec, base.pkts_per_sec),
                    cur.p50_cycle_ns,
                    // Lower per-cycle latency is better, so the sign is
                    // the raw ratio: negative means faster cycles.
                    pct(cur.p50_cycle_ns as f64, base.p50_cycle_ns as f64),
                ));
            }
            None => {
                out.push_str(&format!(
                    "{point}| {:.0} | — (no baseline) | {} | — |\n",
                    cur.pkts_per_sec, cur.p50_cycle_ns
                ));
            }
        }
    }
    for base in &baseline.rows {
        if current
            .row(&base.app, base.pipelines, &base.engine, &base.exec)
            .is_none()
        {
            out.push_str(&format!(
                "| {} | {} | {} | {} | — (not measured) | — | — | — |\n",
                base.app, base.pipelines, base.engine, base.exec
            ));
        }
    }
    out
}

/// The §4.3.1 flowlet speedup acceptance check: on hosts with at least
/// `min_cpus` cores, the parallel engine must reach `target`× at
/// `k = 8`; on smaller hosts the check is skipped with a notice.
/// Returns `Ok(message)` on pass/skip, `Err(message)` on failure.
pub fn speedup_check(rep: &BenchReport, target: f64, min_cpus: usize) -> Result<String, String> {
    if (rep.host_cpus as usize) < min_cpus {
        return Ok(format!(
            "speedup check SKIPPED: host has {} core(s), needs >= {min_cpus}",
            rep.host_cpus
        ));
    }
    let Some(row) = rep.row("flowlet", 8, "par", "batch") else {
        return Ok("speedup check SKIPPED: no flowlet k=8 parallel point in this run".into());
    };
    if row.speedup_vs_sequential >= target {
        Ok(format!(
            "speedup check PASSED: flowlet k=8 parallel engine at {:.2}x (target {target:.1}x)",
            row.speedup_vs_sequential
        ))
    } else {
        Err(format!(
            "speedup check FAILED: flowlet k=8 parallel engine at {:.2}x, target {target:.1}x",
            row.speedup_vs_sequential
        ))
    }
}

/// The SoA acceptance check: on the `hotpath` rows (flowlet through the
/// sequential engine) at `k = 8`, the batch work phase must cut the
/// median per-cycle wall time by at least `target`× versus the scalar
/// reference interpreter. Returns `Ok(message)` on pass/skip,
/// `Err(message)` on failure.
pub fn soa_check(rep: &BenchReport, target: f64) -> Result<String, String> {
    let (Some(scalar), Some(batch)) = (
        rep.row("hotpath", 8, "seq", "scalar"),
        rep.row("hotpath", 8, "seq", "batch"),
    ) else {
        return Ok("SoA check SKIPPED: no hotpath k=8 scalar/batch pair in this run".into());
    };
    if batch.p50_cycle_ns == 0 {
        return Ok("SoA check SKIPPED: hotpath batch p50 is zero (clock too coarse)".into());
    }
    let ratio = scalar.p50_cycle_ns as f64 / batch.p50_cycle_ns as f64;
    if ratio >= target {
        Ok(format!(
            "SoA check PASSED: hotpath k=8 batch p50 {}ns vs scalar {}ns = {ratio:.2}x (target {target:.1}x)",
            batch.p50_cycle_ns, scalar.p50_cycle_ns
        ))
    } else {
        Err(format!(
            "SoA check FAILED: hotpath k=8 batch p50 {}ns vs scalar {}ns = {ratio:.2}x, target {target:.1}x",
            batch.p50_cycle_ns, scalar.p50_cycle_ns
        ))
    }
}

/// The hot-state acceptance check: on the `hotstate` rows (the
/// single-hot-flow heavy-queue trace through the sequential engine) at
/// `k = 8`, the batch work phase must cut the median per-cycle wall
/// time by at least `target`× versus the scalar reference — i.e. the
/// SoA win must survive a workload where queues are never empty and
/// FIFO service dominates. Returns `Ok(message)` on pass/skip,
/// `Err(message)` on failure.
pub fn hotstate_check(rep: &BenchReport, target: f64) -> Result<String, String> {
    let (Some(scalar), Some(batch)) = (
        rep.row("hotstate", 8, "seq", "scalar"),
        rep.row("hotstate", 8, "seq", "batch"),
    ) else {
        return Ok("hot-state check SKIPPED: no hotstate k=8 scalar/batch pair in this run".into());
    };
    if batch.p50_cycle_ns == 0 {
        return Ok("hot-state check SKIPPED: hotstate batch p50 is zero (clock too coarse)".into());
    }
    let ratio = scalar.p50_cycle_ns as f64 / batch.p50_cycle_ns as f64;
    if ratio >= target {
        Ok(format!(
            "hot-state check PASSED: hotstate k=8 batch p50 {}ns vs scalar {}ns = {ratio:.2}x (target {target:.1}x)",
            batch.p50_cycle_ns, scalar.p50_cycle_ns
        ))
    } else {
        Err(format!(
            "hot-state check FAILED: hotstate k=8 batch p50 {}ns vs scalar {}ns = {ratio:.2}x, target {target:.1}x",
            batch.p50_cycle_ns, scalar.p50_cycle_ns
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rows: Vec<BenchRow>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            packets: 100,
            seed: 1,
            host_cpus: 1,
            rows,
        }
    }

    fn row(app: &str, k: usize, engine: &str, pps: f64) -> BenchRow {
        BenchRow {
            app: app.to_string(),
            pipelines: k,
            engine: engine.to_string(),
            exec: "batch".to_string(),
            workers: if engine == "seq" { 0 } else { k },
            resolved: resolved_mode(engine, if engine == "seq" { 0 } else { k }),
            packets: 100,
            completed: 100,
            cycles: 50,
            wall_ms: 1.0,
            pkts_per_sec: pps,
            cycles_per_sec: pps / 2.0,
            speedup_vs_sequential: 1.0,
            p50_cycle_ns: 10,
            p99_cycle_ns: 20,
            normalized_throughput: 1.0,
            degraded_cycles: 0,
            phantoms_recovered: 0,
            fabric: false,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let rep = report_with(vec![row("flowlet", 4, "seq", 1000.0)]);
        let back = BenchReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].app, "flowlet");
        assert_eq!(back.rows[0].pipelines, 4);
        assert!((back.rows[0].pkts_per_sec - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let mut rep = report_with(vec![]);
        rep.schema = "mp5bench/v0".into();
        assert!(BenchReport::from_json(&rep.to_json()).is_err());
        assert!(BenchReport::from_json("[1, 2").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = report_with(vec![
            row("flowlet", 4, "seq", 1000.0),
            row("flowlet", 4, "par", 1000.0),
        ]);
        // 10% slower: within a 15% tolerance.
        let ok = report_with(vec![
            row("flowlet", 4, "seq", 900.0),
            row("flowlet", 4, "par", 2000.0), // faster is always fine
        ]);
        let out = gate(&ok, &baseline, 0.15);
        assert!(out.is_ok(), "{:?}", out.failures);
        assert_eq!(out.passed, 2);
        // 30% slower: beyond tolerance.
        let bad = report_with(vec![
            row("flowlet", 4, "seq", 700.0),
            row("flowlet", 4, "par", 1000.0),
        ]);
        let out = gate(&bad, &baseline, 0.15);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("flowlet k=4 seq"));
    }

    #[test]
    fn gate_skips_unmatched_points() {
        let baseline = report_with(vec![row("conga", 8, "par", 1000.0)]);
        let current = report_with(vec![row("flowlet", 4, "seq", 900.0)]);
        let out = gate(&current, &baseline, 0.15);
        assert!(out.is_ok());
        assert_eq!(out.passed, 0);
        assert_eq!(out.skipped.len(), 2);
    }

    #[test]
    fn merge_best_keeps_fastest_observation_per_point() {
        let mut first = report_with(vec![
            row("flowlet", 4, "seq", 900.0),
            row("flowlet", 4, "par", 500.0),
        ]);
        let again = report_with(vec![
            row("flowlet", 4, "seq", 700.0),  // slower: ignored
            row("flowlet", 4, "par", 1100.0), // faster: replaces
            row("conga", 8, "seq", 300.0),    // new point: appended
        ]);
        first.merge_best(again);
        assert_eq!(
            first
                .row("flowlet", 4, "seq", "batch")
                .unwrap()
                .pkts_per_sec,
            900.0
        );
        assert_eq!(
            first
                .row("flowlet", 4, "par", "batch")
                .unwrap()
                .pkts_per_sec,
            1100.0
        );
        assert_eq!(
            first.row("conga", 8, "seq", "batch").unwrap().pkts_per_sec,
            300.0
        );
        assert_eq!(first.rows.len(), 3);
    }

    #[test]
    fn speedup_check_skips_on_small_hosts() {
        let rep = report_with(vec![]);
        let msg = speedup_check(&rep, 2.0, 4).unwrap();
        assert!(msg.contains("SKIPPED"), "{msg}");
    }

    #[test]
    fn speedup_check_verdicts_on_big_hosts() {
        let mut fast = row("flowlet", 8, "par", 1000.0);
        fast.speedup_vs_sequential = 2.5;
        let mut rep = report_with(vec![fast]);
        rep.host_cpus = 8;
        assert!(speedup_check(&rep, 2.0, 4).unwrap().contains("PASSED"));
        rep.rows[0].speedup_vs_sequential = 1.2;
        assert!(speedup_check(&rep, 2.0, 4).is_err());
    }

    #[test]
    fn soa_check_verdicts_and_skips() {
        let rep = report_with(vec![]);
        assert!(soa_check(&rep, 1.5).unwrap().contains("SKIPPED"));
        let mut scalar = row("hotpath", 8, "seq", 1000.0);
        scalar.exec = "scalar".into();
        scalar.p50_cycle_ns = 3000;
        let mut batch = row("hotpath", 8, "seq", 1000.0);
        batch.p50_cycle_ns = 1500;
        let mut rep = report_with(vec![scalar, batch]);
        assert!(soa_check(&rep, 1.5).unwrap().contains("PASSED"));
        rep.rows[1].p50_cycle_ns = 2800;
        assert!(soa_check(&rep, 1.5).is_err());
    }

    #[test]
    fn hotstate_check_verdicts_and_skips() {
        let rep = report_with(vec![]);
        assert!(hotstate_check(&rep, 1.3).unwrap().contains("SKIPPED"));
        let mut scalar = row("hotstate", 8, "seq", 1000.0);
        scalar.exec = "scalar".into();
        scalar.p50_cycle_ns = 2600;
        let mut batch = row("hotstate", 8, "seq", 1000.0);
        batch.p50_cycle_ns = 2000;
        let mut rep = report_with(vec![scalar, batch]);
        assert!(hotstate_check(&rep, 1.3).unwrap().contains("PASSED"));
        rep.rows[1].p50_cycle_ns = 2500;
        assert!(hotstate_check(&rep, 1.3).is_err());
    }

    #[test]
    fn hotstate_trace_is_one_flow_at_line_rate() {
        let (prog, trace) = hotstate_trace(400, 9);
        assert_eq!(trace.len(), 400);
        // Every packet carries the same 5-tuple field values.
        let key_fields: Vec<usize> = mp5_types::FlowKey::FIELD_NAMES
            .iter()
            .filter_map(|n| prog.field(n).map(|id| id.index()))
            .collect();
        assert!(!key_fields.is_empty());
        let first = &trace[0];
        for p in &trace[1..] {
            for &f in &key_fields {
                assert_eq!(p.fields[f], first.fields[f], "hot flow key must not vary");
            }
        }
        // The arrival process is still the line-rate one: arrivals are
        // non-decreasing and spread over time rather than batched at 0.
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace.last().unwrap().arrival > 0);
    }

    #[test]
    fn delta_table_covers_both_reports() {
        let baseline = report_with(vec![
            row("flowlet", 4, "seq", 1000.0),
            row("conga", 8, "par", 500.0),
        ]);
        let current = report_with(vec![
            row("flowlet", 4, "seq", 1100.0),
            row("hotpath", 8, "seq", 900.0),
        ]);
        let table = render_delta(&current, &baseline);
        // Matched row carries a signed delta; one-sided rows are marked.
        assert!(table.contains("+10.0%"), "{table}");
        assert!(table.contains("no baseline"), "{table}");
        assert!(table.contains("not measured"), "{table}");
        // Header + separator + 2 current rows + 1 baseline-only row.
        assert_eq!(table.lines().count(), 5, "{table}");
    }

    #[test]
    fn quick_suite_runs_and_engines_agree() {
        let opts = BenchOpts {
            quick: true,
            packets: Some(300),
            seed: 7,
            workers: Some(2),
        };
        let rep = run_suite(&opts);
        // 2 apps × 2 pipeline counts × 2 engines + 2 hotpath exec rows
        // + 2 hotstate exec rows + 1 snapshot row + 1 fabric point
        // × 2 engines.
        assert_eq!(rep.rows.len(), 15);
        let snap: Vec<_> = rep.rows.iter().filter(|r| r.app == "snapshot").collect();
        assert_eq!(snap.len(), 1, "one snapshot-cost row");
        assert!(
            snap[0].packets > 0 && snap[0].p50_cycle_ns > 0 && snap[0].p99_cycle_ns > 0,
            "snapshot row measured at least one checkpoint"
        );
        let fab: Vec<_> = rep.rows.iter().filter(|r| r.fabric).collect();
        assert_eq!(fab.len(), 2, "quick suite measures one fabric point");
        assert!(fab.iter().all(|r| r.app == "fabric-2x2"));
        for family in ["hotpath", "hotstate"] {
            let hot: Vec<_> = rep.rows.iter().filter(|r| r.app == family).collect();
            assert_eq!(hot.len(), 2, "quick suite measures one {family} point");
            assert_eq!(
                (hot[0].exec.as_str(), hot[1].exec.as_str()),
                ("scalar", "batch")
            );
            assert_eq!(hot[0].completed, hot[1].completed);
            assert_eq!(hot[0].cycles, hot[1].cycles);
        }
        // The k=1 parallel points resolve to a single worker and run
        // inline; multi-worker points keep the "par" mode.
        for r in rep.rows.iter().filter(|r| r.engine == "par") {
            let want = if r.workers <= 1 { "inline" } else { "par" };
            assert_eq!(r.resolved, want, "{} k={}", r.app, r.pipelines);
        }
        assert!(rep.rows.iter().any(|r| r.resolved == "inline"));
        // Engine pairs (every non-exec-comparison row) are
        // bit-identical runs.
        let paired: Vec<_> = rep
            .rows
            .iter()
            .filter(|r| r.app != "hotpath" && r.app != "hotstate" && r.app != "snapshot")
            .collect();
        for chunk in paired.chunks(2) {
            let (seq, par) = (&chunk[0], &chunk[1]);
            assert_eq!(seq.engine, "seq");
            assert_eq!(par.engine, "par");
            assert_eq!(seq.completed, par.completed);
            assert_eq!(seq.cycles, par.cycles);
            assert!((seq.normalized_throughput - par.normalized_throughput).abs() < 1e-12);
        }
        // Summary renders every row.
        let summary = render_summary(&rep);
        assert_eq!(summary.lines().count(), 2 + rep.rows.len());
    }
}
