//! The `mp5bench` engine-benchmark suite: measures the sequential and
//! parallel cycle engines on the paper's four real applications and
//! emits a machine-readable report (`BENCH_main.json`, schema
//! [`SCHEMA`]) plus a human summary.
//!
//! The same module implements the CI perf-regression gate: a committed
//! baseline report is compared row-by-row against a fresh run and the
//! gate fails when packet throughput regresses beyond the tolerance.
//! Benchmarks are host-specific, so the gate is only meaningful against
//! a baseline produced on comparable hardware (it is opt-in in `ci.sh`
//! behind `CI_BENCH=1` for exactly that reason).

use std::time::Instant;

use mp5_core::{EngineMode, Mp5Switch, SwitchConfig};
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every report this module writes.
///
/// v2 added the fault-recovery columns (`degraded_cycles`,
/// `phantoms_recovered`); v3 added the `fabric` flag plus the
/// multi-switch fabric rows measured through `mp5-topo`. Regenerate
/// committed baselines with `--out` after a schema bump.
pub const SCHEMA: &str = "mp5bench/v3";

/// Pipeline counts of the full matrix.
pub const FULL_PIPELINES: [usize; 4] = [1, 2, 4, 8];

/// Pipeline counts of the `--quick` matrix (CI smoke).
pub const QUICK_PIPELINES: [usize; 2] = [1, 4];

/// Options of one suite run.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Shrink the matrix for a CI smoke run (fewer apps, fewer
    /// pipeline counts, fewer packets).
    pub quick: bool,
    /// Packets per run (`None`: 10 000 full, 2 000 quick).
    pub packets: Option<usize>,
    /// Trace seed.
    pub seed: u64,
    /// Worker threads for the parallel engine (`None`: one per
    /// pipeline).
    pub workers: Option<usize>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            packets: None,
            seed: 1,
            workers: None,
        }
    }
}

impl BenchOpts {
    /// Packets per run after applying the quick/full defaults.
    pub fn effective_packets(&self) -> usize {
        self.packets
            .unwrap_or(if self.quick { 2_000 } else { 10_000 })
    }
}

/// One measured `(app, pipelines, engine)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Application name.
    pub app: String,
    /// Pipelines `k`.
    pub pipelines: usize,
    /// `"seq"` or `"par"`.
    pub engine: String,
    /// Worker threads (0 for the sequential engine).
    pub workers: usize,
    /// Packets offered.
    pub packets: u64,
    /// Packets completed.
    pub completed: u64,
    /// Simulated cycles until drain.
    pub cycles: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Completed packets per wall-clock second.
    pub pkts_per_sec: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock speedup over the sequential engine at the same
    /// `(app, pipelines)` point (1.0 for sequential rows).
    pub speedup_vs_sequential: f64,
    /// Median per-cycle wall time in nanoseconds.
    pub p50_cycle_ns: u64,
    /// 99th-percentile per-cycle wall time in nanoseconds.
    pub p99_cycle_ns: u64,
    /// The run's simulated normalized throughput (sanity: engine
    /// choice must not change it).
    pub normalized_throughput: f64,
    /// Cycles spent with at least one dead pipeline (0 under the
    /// default `NoFaults` injector — the benchmark matrix runs
    /// fault-free, the column exists so faulted reports share the
    /// schema).
    pub degraded_cycles: u64,
    /// Lost phantoms recovered back into FIFO order (0 fault-free).
    pub phantoms_recovered: u64,
    /// True for multi-switch fabric rows (measured through `mp5-topo`;
    /// `packets`/`completed` are then fabric injected/delivered and
    /// `cycles` is global fabric ticks).
    pub fabric: bool,
}

/// A full suite report (what `BENCH_main.json` holds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Packets per run.
    pub packets: u64,
    /// Trace seed.
    pub seed: u64,
    /// Host parallelism when the report was produced (benchmarks are
    /// host-specific; gate only against comparable hardware).
    pub host_cpus: u64,
    /// The measurements.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench rows are plain structs")
    }

    /// Parses a report back (for the regression gate).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let rep: BenchReport =
            serde_json::from_str(s).map_err(|e| format!("unparseable bench report: {e}"))?;
        if rep.schema != SCHEMA {
            return Err(format!(
                "bench report schema '{}' (expected '{SCHEMA}')",
                rep.schema
            ));
        }
        Ok(rep)
    }

    /// The row at an exact `(app, pipelines, engine)` point.
    pub fn row(&self, app: &str, pipelines: usize, engine: &str) -> Option<&BenchRow> {
        self.rows
            .iter()
            .find(|r| r.app == app && r.pipelines == pipelines && r.engine == engine)
    }
}

/// Host parallelism (1 when undeterminable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn time_run(
    prog: &mp5_compiler::CompiledProgram,
    trace: &[mp5_types::Packet],
    cfg: SwitchConfig,
) -> (mp5_core::RunReport, mp5_core::CycleTimings, f64) {
    let sw = Mp5Switch::new(prog.clone(), cfg);
    let start = Instant::now();
    let (report, _sink, timings) = sw
        .try_run_timed(trace.to_vec())
        .expect("benchmark run drains");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (report, timings, wall_ms)
}

fn row_from(
    app: &str,
    k: usize,
    engine: &str,
    workers: usize,
    report: &mp5_core::RunReport,
    timings: &mp5_core::CycleTimings,
    wall_ms: f64,
) -> BenchRow {
    let secs = (wall_ms / 1e3).max(1e-12);
    BenchRow {
        app: app.to_string(),
        pipelines: k,
        engine: engine.to_string(),
        workers,
        packets: report.offered,
        completed: report.completed,
        cycles: report.cycles,
        wall_ms,
        pkts_per_sec: report.completed as f64 / secs,
        cycles_per_sec: report.cycles as f64 / secs,
        speedup_vs_sequential: 1.0,
        p50_cycle_ns: timings.percentile(50.0),
        p99_cycle_ns: timings.percentile(99.0),
        normalized_throughput: report.normalized_throughput(),
        degraded_cycles: report.fault.degraded_cycles,
        phantoms_recovered: report.fault.phantoms_recovered,
        fabric: false,
    }
}

/// Measures one leaf–spine fabric point (`leaves`×`spines`, 2 hosts per
/// leaf) on the given engine and returns `(report, wall_ms)`.
fn time_fabric(
    k: usize,
    leaves: usize,
    spines: usize,
    flows: u64,
    seed: u64,
    engine: EngineMode,
) -> (mp5_topo::FabricReport, f64) {
    use mp5_topo::{Fabric, FabricConfig, TopologyConfig};

    let app = mp5_apps::by_name("heavy_hitter").expect("bundled app");
    let prog = app.compile().expect("bundled app compiles");
    let fill = app.fill;
    let topo = TopologyConfig::leaf_spine(leaves, spines, 2)
        .validate()
        .expect("valid bench topology");
    let hosts = topo.num_hosts();
    let mut cfg = FabricConfig::new(
        SwitchConfig::mp5(k)
            .with_hardware_fifos()
            .with_engine(engine),
    );
    cfg.seed = seed;
    let workload = mp5_traffic::DcWorkload::new(hosts, flows, seed).max_pkts_per_flow(4);
    let fabric = Fabric::new(topo, cfg, prog.clone()).expect("valid fabric config");
    let prog2 = prog.clone();
    let start = Instant::now();
    let run = fabric.run(workload.stream(), move |key, rng, fields| {
        fill(&prog2, key, rng, fields)
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (run.report, wall_ms)
}

fn fabric_row(
    name: &str,
    k: usize,
    engine: &str,
    workers: usize,
    rep: &mp5_topo::FabricReport,
    wall_ms: f64,
) -> BenchRow {
    let secs = (wall_ms / 1e3).max(1e-12);
    BenchRow {
        app: name.to_string(),
        pipelines: k,
        engine: engine.to_string(),
        workers,
        packets: rep.injected,
        completed: rep.delivered,
        cycles: rep.ticks,
        wall_ms,
        pkts_per_sec: rep.delivered as f64 / secs,
        cycles_per_sec: rep.ticks as f64 / secs,
        speedup_vs_sequential: 1.0,
        p50_cycle_ns: 0,
        p99_cycle_ns: 0,
        normalized_throughput: rep.delivered_fraction(),
        degraded_cycles: 0,
        phantoms_recovered: 0,
        fabric: true,
    }
}

/// Runs the suite: each app × pipeline-count point is measured with
/// the sequential engine and then the parallel engine, asserting along
/// the way that both engines produced the **same simulation** (same
/// completion counts, cycles, and normalized throughput).
pub fn run_suite(opts: &BenchOpts) -> BenchReport {
    let apps: &[mp5_apps::AppSpec] = if opts.quick {
        &mp5_apps::PAPER_APPS[..2]
    } else {
        &mp5_apps::PAPER_APPS[..]
    };
    let ks: &[usize] = if opts.quick {
        &QUICK_PIPELINES
    } else {
        &FULL_PIPELINES
    };
    let packets = opts.effective_packets();
    let mut rows = Vec::new();
    for app in apps {
        let (prog, trace) = mp5_sim::experiments::app_trace(app, packets, opts.seed);
        for &k in ks {
            let seq_cfg = SwitchConfig::mp5(k);
            let (seq_rep, seq_t, seq_ms) = time_run(&prog, &trace, seq_cfg);
            rows.push(row_from(app.name, k, "seq", 0, &seq_rep, &seq_t, seq_ms));

            let workers = opts.workers.unwrap_or(k).max(1);
            let par_cfg = SwitchConfig::mp5(k).with_engine(EngineMode::Parallel(workers));
            let (par_rep, par_t, par_ms) = time_run(&prog, &trace, par_cfg);
            assert_eq!(
                seq_rep, par_rep,
                "{} k={k}: engines diverged — bit-identity broken",
                app.name
            );
            let mut row = row_from(
                app.name,
                k,
                "par",
                par_cfg_workers(workers, k),
                &par_rep,
                &par_t,
                par_ms,
            );
            row.speedup_vs_sequential = seq_ms / par_ms.max(1e-12);
            rows.push(row);
        }
    }

    // Fabric rows: whole-switch composition through mp5-topo, seq and
    // par measured on the same workload with bit-identity asserted.
    let fabric_points: &[(usize, usize, u64)] = if opts.quick {
        &[(2, 2, 600)]
    } else {
        &[(2, 2, 2_000), (4, 2, 2_000)]
    };
    let fk = 4usize;
    for &(leaves, spines, flows) in fabric_points {
        let name = format!("fabric-{leaves}x{spines}");
        let (seq_rep, seq_ms) =
            time_fabric(fk, leaves, spines, flows, opts.seed, EngineMode::Sequential);
        rows.push(fabric_row(&name, fk, "seq", 0, &seq_rep, seq_ms));
        let workers = opts.workers.unwrap_or(fk).max(1);
        let (par_rep, par_ms) = time_fabric(
            fk,
            leaves,
            spines,
            flows,
            opts.seed,
            EngineMode::Parallel(workers),
        );
        assert_eq!(
            seq_rep, par_rep,
            "{name}: fabric engines diverged — bit-identity broken"
        );
        let mut row = fabric_row(
            &name,
            fk,
            "par",
            par_cfg_workers(workers, fk),
            &par_rep,
            par_ms,
        );
        row.speedup_vs_sequential = seq_ms / par_ms.max(1e-12);
        rows.push(row);
    }

    BenchReport {
        schema: SCHEMA.to_string(),
        quick: opts.quick,
        packets: packets as u64,
        seed: opts.seed,
        host_cpus: host_cpus() as u64,
        rows,
    }
}

fn par_cfg_workers(requested: usize, pipelines: usize) -> usize {
    EngineMode::Parallel(requested).workers_for(pipelines)
}

/// Renders the report as an aligned human-readable table.
pub fn render_summary(rep: &BenchReport) -> String {
    let headers = [
        "app", "k", "engine", "wrk", "pkts/s", "cyc/s", "speedup", "p50ns", "p99ns", "tput",
        "faulted",
    ];
    let rows: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.pipelines.to_string(),
                r.engine.clone(),
                r.workers.to_string(),
                format!("{:.0}", r.pkts_per_sec),
                format!("{:.0}", r.cycles_per_sec),
                format!("{:.2}x", r.speedup_vs_sequential),
                r.p50_cycle_ns.to_string(),
                r.p99_cycle_ns.to_string(),
                format!("{:.3}", r.normalized_throughput),
                // degraded-cycles / recovered-phantoms; "-" fault-free.
                if r.degraded_cycles == 0 && r.phantoms_recovered == 0 {
                    "-".to_string()
                } else {
                    format!("{}/{}", r.degraded_cycles, r.phantoms_recovered)
                },
            ]
        })
        .collect();
    mp5_sim::table::render(&headers, &rows)
}

/// Outcome of the perf-regression gate.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Points compared and within tolerance.
    pub passed: usize,
    /// Points present in only one of the two reports (informational).
    pub skipped: Vec<String>,
    /// Human-readable failures; empty means the gate passed.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passed.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against a committed `baseline`: every row present
/// in both (matched on `(app, pipelines, engine)`) must keep
/// `pkts_per_sec` within `tolerance` (e.g. `0.15`) below the baseline.
/// Faster-than-baseline is always fine.
pub fn gate(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in &baseline.rows {
        let Some(cur) = current.row(&base.app, base.pipelines, &base.engine) else {
            out.skipped.push(format!(
                "{} k={} {}: not measured in this run",
                base.app, base.pipelines, base.engine
            ));
            continue;
        };
        let floor = base.pkts_per_sec * (1.0 - tolerance);
        if cur.pkts_per_sec < floor {
            out.failures.push(format!(
                "{} k={} {}: {:.0} pkts/s is {:.1}% below baseline {:.0} (tolerance {:.0}%)",
                base.app,
                base.pipelines,
                base.engine,
                cur.pkts_per_sec,
                (1.0 - cur.pkts_per_sec / base.pkts_per_sec) * 100.0,
                base.pkts_per_sec,
                tolerance * 100.0
            ));
        } else {
            out.passed += 1;
        }
    }
    for cur in &current.rows {
        if baseline.row(&cur.app, cur.pipelines, &cur.engine).is_none() {
            out.skipped.push(format!(
                "{} k={} {}: no baseline point",
                cur.app, cur.pipelines, cur.engine
            ));
        }
    }
    out
}

/// The §4.3.1 flowlet speedup acceptance check: on hosts with at least
/// `min_cpus` cores, the parallel engine must reach `target`× at
/// `k = 8`; on smaller hosts the check is skipped with a notice.
/// Returns `Ok(message)` on pass/skip, `Err(message)` on failure.
pub fn speedup_check(rep: &BenchReport, target: f64, min_cpus: usize) -> Result<String, String> {
    if (rep.host_cpus as usize) < min_cpus {
        return Ok(format!(
            "speedup check SKIPPED: host has {} core(s), needs >= {min_cpus}",
            rep.host_cpus
        ));
    }
    let Some(row) = rep.row("flowlet", 8, "par") else {
        return Ok("speedup check SKIPPED: no flowlet k=8 parallel point in this run".into());
    };
    if row.speedup_vs_sequential >= target {
        Ok(format!(
            "speedup check PASSED: flowlet k=8 parallel engine at {:.2}x (target {target:.1}x)",
            row.speedup_vs_sequential
        ))
    } else {
        Err(format!(
            "speedup check FAILED: flowlet k=8 parallel engine at {:.2}x, target {target:.1}x",
            row.speedup_vs_sequential
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rows: Vec<BenchRow>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            packets: 100,
            seed: 1,
            host_cpus: 1,
            rows,
        }
    }

    fn row(app: &str, k: usize, engine: &str, pps: f64) -> BenchRow {
        BenchRow {
            app: app.to_string(),
            pipelines: k,
            engine: engine.to_string(),
            workers: if engine == "seq" { 0 } else { k },
            packets: 100,
            completed: 100,
            cycles: 50,
            wall_ms: 1.0,
            pkts_per_sec: pps,
            cycles_per_sec: pps / 2.0,
            speedup_vs_sequential: 1.0,
            p50_cycle_ns: 10,
            p99_cycle_ns: 20,
            normalized_throughput: 1.0,
            degraded_cycles: 0,
            phantoms_recovered: 0,
            fabric: false,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let rep = report_with(vec![row("flowlet", 4, "seq", 1000.0)]);
        let back = BenchReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].app, "flowlet");
        assert_eq!(back.rows[0].pipelines, 4);
        assert!((back.rows[0].pkts_per_sec - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let mut rep = report_with(vec![]);
        rep.schema = "mp5bench/v0".into();
        assert!(BenchReport::from_json(&rep.to_json()).is_err());
        assert!(BenchReport::from_json("[1, 2").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = report_with(vec![
            row("flowlet", 4, "seq", 1000.0),
            row("flowlet", 4, "par", 1000.0),
        ]);
        // 10% slower: within a 15% tolerance.
        let ok = report_with(vec![
            row("flowlet", 4, "seq", 900.0),
            row("flowlet", 4, "par", 2000.0), // faster is always fine
        ]);
        let out = gate(&ok, &baseline, 0.15);
        assert!(out.is_ok(), "{:?}", out.failures);
        assert_eq!(out.passed, 2);
        // 30% slower: beyond tolerance.
        let bad = report_with(vec![
            row("flowlet", 4, "seq", 700.0),
            row("flowlet", 4, "par", 1000.0),
        ]);
        let out = gate(&bad, &baseline, 0.15);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("flowlet k=4 seq"));
    }

    #[test]
    fn gate_skips_unmatched_points() {
        let baseline = report_with(vec![row("conga", 8, "par", 1000.0)]);
        let current = report_with(vec![row("flowlet", 4, "seq", 900.0)]);
        let out = gate(&current, &baseline, 0.15);
        assert!(out.is_ok());
        assert_eq!(out.passed, 0);
        assert_eq!(out.skipped.len(), 2);
    }

    #[test]
    fn speedup_check_skips_on_small_hosts() {
        let rep = report_with(vec![]);
        let msg = speedup_check(&rep, 2.0, 4).unwrap();
        assert!(msg.contains("SKIPPED"), "{msg}");
    }

    #[test]
    fn speedup_check_verdicts_on_big_hosts() {
        let mut fast = row("flowlet", 8, "par", 1000.0);
        fast.speedup_vs_sequential = 2.5;
        let mut rep = report_with(vec![fast]);
        rep.host_cpus = 8;
        assert!(speedup_check(&rep, 2.0, 4).unwrap().contains("PASSED"));
        rep.rows[0].speedup_vs_sequential = 1.2;
        assert!(speedup_check(&rep, 2.0, 4).is_err());
    }

    #[test]
    fn quick_suite_runs_and_engines_agree() {
        let opts = BenchOpts {
            quick: true,
            packets: Some(300),
            seed: 7,
            workers: Some(2),
        };
        let rep = run_suite(&opts);
        // 2 apps × 2 pipeline counts × 2 engines + 1 fabric point × 2.
        assert_eq!(rep.rows.len(), 10);
        let fab: Vec<_> = rep.rows.iter().filter(|r| r.fabric).collect();
        assert_eq!(fab.len(), 2, "quick suite measures one fabric point");
        assert!(fab.iter().all(|r| r.app == "fabric-2x2"));
        for chunk in rep.rows.chunks(2) {
            let (seq, par) = (&chunk[0], &chunk[1]);
            assert_eq!(seq.engine, "seq");
            assert_eq!(par.engine, "par");
            assert_eq!(seq.completed, par.completed);
            assert_eq!(seq.cycles, par.cycles);
            assert!((seq.normalized_throughput - par.normalized_throughput).abs() < 1e-12);
        }
        // Summary renders every row.
        let summary = render_summary(&rep);
        assert_eq!(summary.lines().count(), 2 + rep.rows.len());
    }
}
