//! Flow-structured traffic with realistic size distributions (§4.4).
//!
//! The paper drives the real-application experiments with "Web search
//! workload for flow size and traffic distribution" (DCTCP / pFabric)
//! and bimodal packet sizes. We encode the commonly used piecewise
//! approximation of the Web-search flow-size CDF; what matters for MP5
//! is the *shape* — a heavy tail in which a few flows carry most bytes —
//! which governs the state-access skew.

use mp5_types::{FlowKey, Packet, PacketId, PortId, Time, Value};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::streams::stream_rng;
use crate::SizeDist;

/// Piecewise-linear CDF of flow sizes in KB for the Web-search workload
/// (approximation of the DCTCP measurement): `(cumulative probability,
/// flow size in KB)`.
pub const WEB_SEARCH_CDF: &[(f64, f64)] = &[
    (0.0, 1.0),
    (0.15, 6.0),
    (0.30, 10.0),
    (0.50, 19.0),
    (0.60, 29.0),
    (0.70, 100.0),
    (0.80, 333.0),
    (0.90, 1_000.0),
    (0.95, 3_333.0),
    (0.99, 10_000.0),
    (1.0, 30_000.0),
];

/// Samples a flow size in bytes from [`WEB_SEARCH_CDF`] by inverse
/// transform over the piecewise-linear CDF.
pub fn web_search_flow_bytes(rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen();
    let mut prev = WEB_SEARCH_CDF[0];
    for &pt in &WEB_SEARCH_CDF[1..] {
        if u <= pt.0 {
            let (p0, s0) = prev;
            let (p1, s1) = pt;
            let t = if p1 > p0 { (u - p0) / (p1 - p0) } else { 0.0 };
            // Interpolate in log-space (the tail spans 4 decades).
            let kb = (s0.ln() + t * (s1.ln() - s0.ln())).exp();
            return (kb * 1024.0) as u64;
        }
        prev = pt;
    }
    (WEB_SEARCH_CDF.last().unwrap().1 * 1024.0) as u64
}

/// One generated flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Total bytes.
    pub bytes: u64,
    /// Ingress port carrying this flow.
    pub port: PortId,
}

/// Builds flow-structured traces: heavy-tailed flows, bimodal packet
/// sizes, each flow pinned to one ingress port (ports interleave flows
/// in the merged arrival stream).
#[derive(Debug, Clone)]
pub struct FlowTraceBuilder {
    /// Switch ports (default 64).
    pub ports: usize,
    /// RNG seed.
    pub seed: u64,
    /// Packet size distribution (default: datacenter bimodal).
    pub size: SizeDist,
    /// Approximate number of packets to generate.
    pub count: usize,
    /// Offered load as a fraction of line rate.
    pub load: f64,
}

impl FlowTraceBuilder {
    /// Default §4.4 configuration.
    pub fn new(count: usize, seed: u64) -> Self {
        FlowTraceBuilder {
            ports: 64,
            seed,
            size: SizeDist::datacenter_bimodal(),
            count,
            load: 1.0,
        }
    }

    /// Sets offered load.
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0);
        self.load = load;
        self
    }

    /// Generates the trace. `fill(rng, flow_key, fields)` populates each
    /// packet's header fields; most programs write the 5-tuple fields
    /// plus program-specific ones.
    ///
    /// Returns the packets (entry-ordered) and the flow table.
    ///
    /// Flow structure (keys and flow sizes), packet sizes, and the
    /// `fill` callback each consume an independent child stream of
    /// `seed` (see [`crate::streams`]), so the generated *flow table*
    /// is a function of the seed alone: swapping the packet-size
    /// distribution or the field filler reproduces the exact same
    /// flows.
    pub fn build<F>(&self, nfields: usize, mut fill: F) -> (Vec<Packet>, Vec<Flow>)
    where
        F: FnMut(&mut SmallRng, &FlowKey, &mut [Value]),
    {
        // Child streams: 0 = flow structure, 1 = packet sizes,
        // 2 = caller's field filler.
        let mut flow_rng = stream_rng(self.seed, 0);
        let mut size_rng = stream_rng(self.seed, 1);
        let mut fill_rng = stream_rng(self.seed, 2);
        let mut flows: Vec<Flow> = Vec::new();
        let mut packets: Vec<Packet> = Vec::with_capacity(self.count);
        // Per-port state: time the port frees, and the flow it is
        // currently sending (flows on one port are sent one after
        // another, so concurrently active flows interleave across
        // ports).
        // Stagger port start times (see TraceBuilder) for smooth
        // line-rate aggregation.
        let stagger = self.size.mean() / self.load;
        let mut port_free: Vec<f64> = (0..self.ports).map(|p| p as f64 * stagger).collect();
        let mut port_flow: Vec<Option<(usize, u64)>> = vec![None; self.ports]; // (flow idx, bytes left)
        let mut next_id = 0u64;

        while packets.len() < self.count {
            let port = (0..self.ports)
                .min_by(|&a, &b| port_free[a].partial_cmp(&port_free[b]).unwrap())
                .unwrap();
            // Start a new flow on this port if needed.
            let (flow_idx, bytes_left) = match port_flow[port] {
                Some((fi, left)) if left > 0 => (fi, left),
                _ => {
                    let key = FlowKey {
                        src_ip: flow_rng.gen(),
                        dst_ip: flow_rng.gen(),
                        src_port: flow_rng.gen_range(1024..60_000),
                        dst_port: [80u16, 443, 8080, 5201][flow_rng.gen_range(0..4)],
                        proto: 6,
                    };
                    let bytes = web_search_flow_bytes(&mut flow_rng);
                    flows.push(Flow {
                        key,
                        bytes,
                        port: PortId(port as u16),
                    });
                    (flows.len() - 1, bytes)
                }
            };
            let size = self
                .size
                .sample(&mut size_rng)
                .min(bytes_left.max(64) as u32);
            let arrival = port_free[port].ceil() as Time;
            port_free[port] += (size as f64) * (self.ports as f64) / self.load;
            port_flow[port] = Some((flow_idx, bytes_left.saturating_sub(size as u64)));

            let key = flows[flow_idx].key;
            let mut pkt = Packet::new(
                PacketId(next_id),
                PortId(port as u16),
                arrival,
                size,
                nfields,
            );
            next_id += 1;
            fill(&mut fill_rng, &key, &mut pkt.fields);
            packets.push(pkt);
        }
        packets.sort_by_key(|p| p.entry_order_key());
        (packets, flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(11);
        let sizes: Vec<u64> = (0..20_000)
            .map(|_| web_search_flow_bytes(&mut rng))
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[sorted.len() * 99 / 100];
        assert!(median < 64 * 1024, "median {median} should be tens of KB");
        assert!(
            p99 > 100 * median,
            "tail must dominate: p99 {p99} vs median {median}"
        );
        // Top 10% of flows should carry the majority of bytes.
        let total: u64 = sorted.iter().sum();
        let top10: u64 = sorted[sorted.len() * 9 / 10..].iter().sum();
        assert!(top10 as f64 / total as f64 > 0.6);
    }

    #[test]
    fn trace_interleaves_flows_across_ports() {
        let (pkts, flows) = FlowTraceBuilder::new(5000, 3).build(5, |_, k, f| {
            let v = k.field_values();
            f[..5].copy_from_slice(&v);
        });
        assert_eq!(pkts.len(), 5000);
        assert!(
            flows.len() > 10,
            "should see multiple flows: {}",
            flows.len()
        );
        // Entry-ordered and deterministic.
        assert!(pkts
            .windows(2)
            .all(|w| w[0].entry_order_key() <= w[1].entry_order_key()));
        let (pkts2, _) = FlowTraceBuilder::new(5000, 3).build(5, |_, k, f| {
            let v = k.field_values();
            f[..5].copy_from_slice(&v);
        });
        assert_eq!(pkts, pkts2);
    }

    #[test]
    fn flow_table_depends_only_on_the_seed() {
        // The determinism contract: flow structure is a function of the
        // seed alone. Swapping the packet-size distribution must
        // reproduce the same flows (packet counts differ, so compare
        // the common creation-order prefix).
        let (_, bimodal) = FlowTraceBuilder::new(3_000, 9).build(5, |_, k, f| {
            f[..5].copy_from_slice(&k.field_values());
        });
        let mut small = FlowTraceBuilder::new(3_000, 9);
        small.size = SizeDist::Fixed(64);
        let (_, fixed) = small.build(5, |_, _, _| {});
        let common = bimodal.len().min(fixed.len());
        assert!(common > 10, "want a meaningful prefix, got {common}");
        for (a, b) in bimodal[..common].iter().zip(&fixed[..common]) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn golden_digest_pins_the_generator() {
        // Golden hash: any change to the flow generator's draw order,
        // arrival process, or packet layout shows up here. Computed
        // with the vendored rand (bit-exact xoshiro256++ / rand 0.8.5
        // streams).
        let (pkts, flows) = FlowTraceBuilder::new(500, 7).build(5, |_, k, f| {
            f[..5].copy_from_slice(&k.field_values());
        });
        let digest = crate::streams::stream_digest(&pkts);
        let flow_digest = flows.iter().fold(0xcbf2_9ce4_8422_2325_u64, |h, fl| {
            let h = crate::streams::fnv1a_fold(h, fl.key.src_ip as u64);
            let h = crate::streams::fnv1a_fold(h, fl.key.dst_ip as u64);
            crate::streams::fnv1a_fold(h, fl.bytes)
        });
        assert_eq!(
            (digest, flow_digest),
            (0x4bf8_bbc9_5322_3fcd, 0x5daf_d90f_72aa_823d),
            "digest {digest:#018x}, flow digest {flow_digest:#018x}"
        );
    }

    #[test]
    fn packets_within_flow_share_fields() {
        let (pkts, _flows) = FlowTraceBuilder::new(2000, 5).build(5, |_, k, f| {
            let v = k.field_values();
            f[..5].copy_from_slice(&v);
        });
        // Group by 5-tuple fields: each group must have consistent port.
        use std::collections::HashMap;
        let mut by_key: HashMap<Vec<Value>, std::collections::HashSet<u16>> = HashMap::new();
        for p in &pkts {
            by_key
                .entry(p.fields[..5].to_vec())
                .or_default()
                .insert(p.port.0);
        }
        for (_, ports) in by_key {
            assert_eq!(ports.len(), 1, "a flow must stay on one port");
        }
    }
}
