//! Streaming datacenter workload for fabric simulation.
//!
//! [`FlowTraceBuilder`](crate::FlowTraceBuilder) materializes a whole
//! trace up front, which caps experiments at a few million packets.
//! Fabric runs (`mp5-topo`) drive *millions of flows* through several
//! switches, so this module generates packets lazily: [`DcWorkload`]
//! describes the workload, [`DcStream`] is an iterator that yields
//! [`DcPacket`]s in global arrival order without ever holding more than
//! one pending packet per host in memory.
//!
//! Structure follows the paper's §4.4 methodology: flow sizes from the
//! Web-search CDF ([`web_search_flow_bytes`]), bimodal packet sizes,
//! Poisson-like flow interleaving across hosts. Determinism comes from
//! per-host child streams ([`stream_rng`]): host `h`'s flow sequence is
//! a function of `(seed, h)` alone, so the merged stream is bit-stable
//! regardless of how the consumer paces it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mp5_types::{FlowKey, Time};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::flows::web_search_flow_bytes;
use crate::streams::stream_rng;
use crate::SizeDist;

/// Traffic matrix shape for a [`DcWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DcPattern {
    /// Every flow picks a uniformly random destination host (≠ source).
    Uniform,
    /// Periodic incast epochs: in each epoch one victim host receives
    /// flows from `fanin` simultaneous senders; all other flows stay
    /// uniform. This is the many-to-one pattern that stresses egress
    /// queues and, in MP5 terms, concentrates state on one leaf.
    Incast {
        /// Number of hosts converging on the victim per epoch.
        fanin: usize,
        /// Every `period`-th flow of a participating host joins the
        /// incast (smaller = more frequent incasts).
        period: usize,
    },
    /// Outcast (one-to-many): each epoch one source sprays flows to
    /// `fanout` distinct destinations in a row.
    Outcast {
        /// Number of consecutive spray destinations.
        fanout: usize,
    },
}

/// Description of a streaming datacenter workload.
#[derive(Debug, Clone)]
pub struct DcWorkload {
    /// Number of end hosts generating traffic.
    pub hosts: usize,
    /// Total number of flows across all hosts.
    pub flows: u64,
    /// Master seed; all structure derives from it.
    pub seed: u64,
    /// Offered load per host NIC as a fraction of line rate.
    pub load: f64,
    /// Packet size distribution within a flow.
    pub size: SizeDist,
    /// Cap on packets per flow (heavy-tailed flows are truncated so a
    /// single elephant cannot dominate a bounded experiment). Flow
    /// *sizes* still follow the CDF; only the emitted packet count is
    /// clamped.
    pub max_pkts_per_flow: u32,
    /// Traffic matrix shape.
    pub pattern: DcPattern,
}

impl DcWorkload {
    /// A §4.4-flavoured workload: Web-search flow sizes, bimodal
    /// 200 B / 1400 B packets, uniform traffic matrix, 0.8 load.
    pub fn new(hosts: usize, flows: u64, seed: u64) -> Self {
        DcWorkload {
            hosts,
            flows,
            seed,
            load: 0.8,
            size: SizeDist::datacenter_bimodal(),
            max_pkts_per_flow: 64,
            pattern: DcPattern::Uniform,
        }
    }

    /// Sets the offered load (fraction of host line rate).
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        self.load = load;
        self
    }

    /// Sets the traffic matrix shape.
    pub fn pattern(mut self, pattern: DcPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the per-flow packet cap.
    pub fn max_pkts_per_flow(mut self, cap: u32) -> Self {
        assert!(cap > 0);
        self.max_pkts_per_flow = cap;
        self
    }

    /// Opens the packet stream. The stream yields packets in global
    /// arrival order (ties broken by host id), is `O(hosts)` in memory,
    /// and is a pure function of this description.
    pub fn stream(&self) -> DcStream {
        DcStream::new(self.clone())
    }

    /// Total packets the stream will yield (consumes a throwaway
    /// stream; only use on workloads small enough to enumerate).
    pub fn count_packets(&self) -> u64 {
        self.stream().map(|_| 1u64).sum()
    }
}

/// One packet emitted by a [`DcStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct DcPacket {
    /// Globally unique flow id: `(src_host << 24) | per-host counter`.
    pub flow_id: u64,
    /// The flow's 5-tuple (src/dst ip encode the host ids).
    pub key: FlowKey,
    /// Sending host.
    pub src_host: u32,
    /// Receiving host.
    pub dst_host: u32,
    /// Packet index within the flow (0-based).
    pub seq: u32,
    /// True on the flow's final packet.
    pub last: bool,
    /// Arrival time at the source NIC, in byte-times.
    pub arrival: Time,
    /// Wire size in bytes.
    pub size: u32,
}

/// Per-host generator state: its RNG stream plus the flow it is
/// currently transmitting.
struct HostGen {
    rng: SmallRng,
    /// Flows this host has started so far.
    started: u64,
    /// Flows this host is allowed to start in total.
    budget: u64,
    /// Current flow, if mid-transmission:
    /// (flow counter, key, dst, next seq, packets total).
    cur: Option<(u64, FlowKey, u32, u32, u32)>,
    /// Time the host NIC frees up, in fractional byte-times.
    free_at: f64,
}

/// Lazy, globally arrival-ordered packet stream. See [`DcWorkload`].
pub struct DcStream {
    w: DcWorkload,
    hosts: Vec<HostGen>,
    /// Min-heap of (next arrival, host id) for hosts with work left.
    heap: BinaryHeap<Reverse<(Time, u32)>>,
    yielded: u64,
}

/// Host id → the 10.x.y.z-style address used in flow keys.
fn host_ip(host: u32) -> u32 {
    0x0A00_0000 | host
}

impl DcStream {
    fn new(w: DcWorkload) -> Self {
        assert!(w.hosts >= 2, "need at least two hosts for src != dst");
        let base = w.flows / w.hosts as u64;
        let rem = (w.flows % w.hosts as u64) as usize;
        // Stagger NIC start times so hosts do not fire in lockstep.
        let stagger = w.size.mean() / w.load / w.hosts as f64;
        let mut hosts = Vec::with_capacity(w.hosts);
        let mut heap = BinaryHeap::with_capacity(w.hosts);
        for h in 0..w.hosts {
            let budget = base + u64::from(h < rem);
            let free_at = h as f64 * stagger;
            hosts.push(HostGen {
                rng: stream_rng(w.seed, h as u64),
                started: 0,
                budget,
                cur: None,
                free_at,
            });
            if budget > 0 {
                heap.push(Reverse((free_at.ceil() as Time, h as u32)));
            }
        }
        DcStream {
            w,
            hosts,
            heap,
            yielded: 0,
        }
    }

    /// Picks the destination for host `h`'s flow number `n` according
    /// to the traffic pattern. Consumes RNG draws from the host stream
    /// only (so the draw count per flow is pattern-dependent but the
    /// per-host stream stays self-contained).
    fn pick_dst(w: &DcWorkload, rng: &mut SmallRng, h: u32, n: u64) -> u32 {
        let hosts = w.hosts as u32;
        let uniform = |rng: &mut SmallRng| {
            let d = rng.gen_range(0..hosts - 1);
            if d >= h {
                d + 1
            } else {
                d
            }
        };
        match w.pattern {
            DcPattern::Uniform => uniform(rng),
            DcPattern::Incast { fanin, period } => {
                // Epoch e = n / period. Deterministically choose the
                // victim and whether this host participates; no RNG so
                // every participant agrees on the victim.
                let e = n / period.max(1) as u64;
                let victim = (e % hosts as u64) as u32;
                let joins = n.is_multiple_of(period.max(1) as u64)
                    && ((h as u64 + e) % hosts as u64) < fanin as u64
                    && victim != h;
                if joins {
                    victim
                } else {
                    uniform(rng)
                }
            }
            DcPattern::Outcast { fanout } => {
                // Epoch of `fanout` consecutive flows sprays a run of
                // distinct destinations starting from a rotating base.
                let e = n / fanout.max(1) as u64;
                let i = n % fanout.max(1) as u64;
                let base = ((h as u64).wrapping_mul(0x9e37_79b9) + e) % hosts as u64;
                let d = ((base + i) % hosts as u64) as u32;
                if d == h {
                    uniform(rng)
                } else {
                    d
                }
            }
        }
    }

    /// Starts host `h`'s next flow, if it has budget left.
    fn start_flow(&mut self, h: u32) {
        let w = self.w.clone();
        let hg = &mut self.hosts[h as usize];
        if hg.started >= hg.budget {
            return;
        }
        let n = hg.started;
        hg.started += 1;
        let dst = Self::pick_dst(&w, &mut hg.rng, h, n);
        let key = FlowKey {
            src_ip: host_ip(h),
            dst_ip: host_ip(dst),
            src_port: hg.rng.gen_range(1024..60_000),
            dst_port: [80u16, 443, 8080, 5201][hg.rng.gen_range(0..4)],
            proto: 6,
        };
        let bytes = web_search_flow_bytes(&mut hg.rng);
        let pkts = bytes.div_ceil(1400).clamp(1, w.max_pkts_per_flow as u64) as u32;
        // Inter-flow gap: think-time drawn so the host offers ~`load`
        // of its line rate over many flows.
        let gap = hg.rng.gen::<f64>() * 2.0 * w.size.mean() / w.load;
        hg.free_at += gap;
        hg.cur = Some((n, key, dst, 0, pkts));
    }
}

impl Iterator for DcStream {
    type Item = DcPacket;

    fn next(&mut self) -> Option<DcPacket> {
        let (h, n, key, dst, seq, pkts) = loop {
            let Reverse((t, h)) = self.heap.pop()?;
            if self.hosts[h as usize].cur.is_none() {
                self.start_flow(h);
            }
            let hg = &mut self.hosts[h as usize];
            let Some(cur) = hg.cur else { continue };
            // Starting a flow added think-time, so the host may no
            // longer be due at its heap key; re-queue at the real time
            // to keep the merged stream globally arrival-ordered.
            let due = hg.free_at.ceil() as Time;
            if due > t {
                self.heap.push(Reverse((due, h)));
                continue;
            }
            hg.cur = None;
            let (n, key, dst, seq, pkts) = cur;
            break (h, n, key, dst, seq, pkts);
        };
        let w_size = self.w.size;
        let w_load = self.w.load;
        let hg = &mut self.hosts[h as usize];
        let size = {
            let s = w_size.sample(&mut hg.rng);
            s.max(64)
        };
        let arrival = hg.free_at.ceil() as Time;
        hg.free_at += size as f64 / w_load;
        let last = seq + 1 >= pkts;
        if !last {
            hg.cur = Some((n, key, dst, seq + 1, pkts));
        }
        let more = hg.cur.is_some() || hg.started < hg.budget;
        if more {
            let next_at = hg.free_at.ceil() as Time;
            self.heap.push(Reverse((next_at, h)));
        }
        self.yielded += 1;
        Some(DcPacket {
            flow_id: (u64::from(h) << 24) | n,
            key,
            src_host: h,
            dst_host: dst,
            seq,
            last,
            arrival,
            size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn collect(w: &DcWorkload) -> Vec<DcPacket> {
        w.stream().collect()
    }

    #[test]
    fn stream_is_deterministic_and_arrival_ordered() {
        let w = DcWorkload::new(8, 500, 42);
        let a = collect(&w);
        let b = collect(&w);
        assert_eq!(a, b, "same description must replay bit-identically");
        assert!(!a.is_empty());
        // Global arrival order with (arrival, host) tie-break.
        assert!(a
            .windows(2)
            .all(|p| (p[0].arrival, p[0].src_host) <= (p[1].arrival, p[1].src_host)));
    }

    #[test]
    fn every_flow_completes_exactly_once() {
        let w = DcWorkload::new(6, 200, 7);
        let pkts = collect(&w);
        let mut seen: HashMap<u64, (u32, bool)> = HashMap::new();
        for p in &pkts {
            let e = seen.entry(p.flow_id).or_insert((0, false));
            assert_eq!(p.seq, e.0, "per-flow seq must be gapless");
            assert!(!e.1, "no packets after `last`");
            e.0 += 1;
            e.1 = p.last;
        }
        assert_eq!(seen.len() as u64, w.flows, "all flows must appear");
        for (fid, (count, done)) in &seen {
            assert!(*done, "flow {fid} never finished");
            assert!(*count <= w.max_pkts_per_flow, "cap violated on {fid}");
        }
    }

    #[test]
    fn flow_budget_splits_across_hosts() {
        // 10 flows, 4 hosts -> budgets 3,3,2,2.
        let w = DcWorkload::new(4, 10, 1);
        let pkts = collect(&w);
        let mut per_host: HashMap<u32, std::collections::HashSet<u64>> = HashMap::new();
        for p in &pkts {
            per_host.entry(p.src_host).or_default().insert(p.flow_id);
            assert_ne!(p.src_host, p.dst_host);
            assert_eq!(p.key.src_ip, 0x0A00_0000 | p.src_host);
            assert_eq!(p.key.dst_ip, 0x0A00_0000 | p.dst_host);
        }
        assert_eq!(per_host[&0].len(), 3);
        assert_eq!(per_host[&1].len(), 3);
        assert_eq!(per_host[&2].len(), 2);
        assert_eq!(per_host[&3].len(), 2);
    }

    #[test]
    fn incast_converges_many_senders_per_epoch() {
        // Victims rotate per epoch (so aggregate per-destination counts
        // stay flat); the incast signature is that *within* an epoch,
        // close to `fanin` senders converge on the epoch's victim.
        let (hosts, fanin, period) = (16u64, 12usize, 2u64);
        let w = DcWorkload::new(hosts as usize, 2_000, 9).pattern(DcPattern::Incast {
            fanin,
            period: period as usize,
        });
        let pkts = collect(&w);
        for e in 0..8u64 {
            let victim = (e % hosts) as u32;
            let senders: std::collections::HashSet<u32> = pkts
                .iter()
                .filter(|p| {
                    let n = p.flow_id & 0xFF_FFFF;
                    p.seq == 0 && n == e * period && p.dst_host == victim
                })
                .map(|p| p.src_host)
                .collect();
            assert!(
                senders.len() >= fanin - 1,
                "epoch {e}: expected ~{fanin} senders on victim {victim}, got {}",
                senders.len()
            );
        }
        // Uniform control: the same query finds almost no convergence.
        let u = collect(&DcWorkload::new(hosts as usize, 2_000, 9));
        for e in 0..8u64 {
            let victim = (e % hosts) as u32;
            let senders = u
                .iter()
                .filter(|p| {
                    let n = p.flow_id & 0xFF_FFFF;
                    p.seq == 0 && n == e * period && p.dst_host == victim
                })
                .count();
            assert!(senders < fanin - 1, "uniform epoch {e}: {senders} senders");
        }
    }

    #[test]
    fn outcast_sprays_distinct_destinations() {
        let w = DcWorkload::new(12, 600, 3).pattern(DcPattern::Outcast { fanout: 6 });
        let pkts = collect(&w);
        // Per source host, consecutive flows should hit many distinct
        // destinations.
        let mut per_src: HashMap<u32, Vec<(u64, u32)>> = HashMap::new();
        for p in &pkts {
            if p.seq == 0 {
                per_src
                    .entry(p.src_host)
                    .or_default()
                    .push((p.flow_id, p.dst_host));
            }
        }
        for (src, mut flows) in per_src {
            flows.sort_unstable();
            let dsts: std::collections::HashSet<u32> =
                flows.iter().take(6).map(|&(_, d)| d).collect();
            assert!(
                dsts.len() >= 5,
                "host {src}: first spray epoch should cover distinct dsts, got {dsts:?}"
            );
        }
    }

    #[test]
    fn stream_memory_is_bounded_by_hosts() {
        // 100k flows stream through without materializing: just count.
        let w = DcWorkload::new(32, 100_000, 5).max_pkts_per_flow(4);
        let mut pkts = 0u64;
        let mut flows_done = 0u64;
        for p in w.stream() {
            pkts += 1;
            flows_done += u64::from(p.last);
        }
        assert_eq!(flows_done, 100_000);
        assert!(pkts >= 100_000);
    }
}
