//! State access patterns (§4.3.1).

use rand::rngs::SmallRng;
use rand::Rng;

/// How packets distribute their accesses over a key space of `n` states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// "each state is accessed by roughly the same number of input
    /// packets".
    Uniform,
    /// "most packets (95% in our case) access only a small fraction of
    /// states (30% in our case)" — derived from heavy-tailed datacenter
    /// traffic.
    Skewed {
        /// Fraction of the key space that is hot (paper: 0.30).
        hot_frac: f64,
        /// Probability a packet targets the hot set (paper: 0.95).
        hot_prob: f64,
    },
}

impl AccessPattern {
    /// The paper's skewed pattern: 95 % of packets over 30 % of states.
    pub fn paper_skewed() -> Self {
        AccessPattern::Skewed {
            hot_frac: 0.30,
            hot_prob: 0.95,
        }
    }

    /// Draws a key in `[0, n)` according to the pattern.
    pub fn draw(&self, n: u64, rng: &mut SmallRng) -> u64 {
        debug_assert!(n > 0);
        match *self {
            AccessPattern::Uniform => rng.gen_range(0..n),
            AccessPattern::Skewed { hot_frac, hot_prob } => {
                let hot = ((n as f64 * hot_frac).ceil() as u64).clamp(1, n);
                if rng.gen_bool(hot_prob) && hot < n {
                    rng.gen_range(0..hot)
                } else if hot < n {
                    rng.gen_range(hot..n)
                } else {
                    rng.gen_range(0..n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_key_space() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hist = [0u32; 16];
        for _ in 0..16_000 {
            hist[AccessPattern::Uniform.draw(16, &mut rng) as usize] += 1;
        }
        for (i, &c) in hist.iter().enumerate() {
            assert!(c > 700 && c < 1300, "key {i} count {c} not ~1000");
        }
    }

    #[test]
    fn skewed_concentrates_on_hot_set() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pat = AccessPattern::paper_skewed();
        let n = 100u64;
        let hot = 30u64;
        let mut in_hot = 0u32;
        for _ in 0..10_000 {
            if pat.draw(n, &mut rng) < hot {
                in_hot += 1;
            }
        }
        let frac = in_hot as f64 / 10_000.0;
        assert!((frac - 0.95).abs() < 0.02, "hot fraction {frac} != ~0.95");
    }

    #[test]
    fn skewed_degenerates_gracefully_for_tiny_spaces() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pat = AccessPattern::paper_skewed();
        for _ in 0..100 {
            assert_eq!(pat.draw(1, &mut rng), 0);
            assert!(pat.draw(2, &mut rng) < 2);
        }
    }
}
