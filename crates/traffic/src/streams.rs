//! Deterministic RNG stream splitting and trace digests.
//!
//! Every generator in this crate is seeded, but a *single* RNG shared
//! between independent concerns (flow structure, packet sizes, header
//! fields) couples them: changing the packet-size distribution used to
//! perturb which flows exist. [`stream_rng`] derives independent,
//! reproducible child streams from one master seed so each concern
//! consumes its own sequence — same seed, same flows, no matter which
//! size distribution or field filler rides along.
//!
//! [`stream_digest`] gives a stable 64-bit fingerprint of a packet
//! trace (FNV-1a, not `DefaultHasher`, so golden values survive rustc
//! upgrades and hold across platforms).

use mp5_types::Packet;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64's output mix — a strong 64→64 bit avalanche.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of child stream `stream` from `seed`. Distinct
/// streams of one seed are decorrelated; the same (seed, stream) pair
/// always yields the same child seed.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    // Two SplitMix64 rounds over a golden-ratio spread of the stream
    // index: one round alone maps (seed, 0) to splitmix(seed), which
    // callers might also use directly as a plain seed.
    splitmix64(splitmix64(seed) ^ splitmix64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// A `SmallRng` positioned at the start of child stream `stream` of
/// `seed`. See the module docs for why generators split streams.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(stream_seed(seed, stream))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a accumulator.
pub fn fnv1a_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable FNV-1a digest of a packet trace: identity, arrival
/// process, sizes, and every header field, in stream order.
pub fn stream_digest(packets: &[Packet]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in packets {
        h = fnv1a_fold(h, p.id.0);
        h = fnv1a_fold(h, p.port.0 as u64);
        h = fnv1a_fold(h, p.arrival);
        h = fnv1a_fold(h, p.size as u64);
        for &f in &p.fields {
            h = fnv1a_fold(h, f as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_types::{PacketId, PortId};
    use rand::RngCore;

    #[test]
    fn child_streams_are_decorrelated_and_stable() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let mut a2 = stream_rng(42, 0);
        let first_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let first_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let again_a: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_eq!(first_a, again_a, "same (seed, stream) must replay");
        assert_ne!(first_a, first_b, "streams of one seed must differ");
    }

    #[test]
    fn digest_tracks_every_component() {
        let base = || {
            let mut p = Packet::new(PacketId(1), PortId(2), 30, 64, 2);
            p.fields = vec![5, -9];
            vec![p]
        };
        let d0 = stream_digest(&base());
        for (i, tweak) in [
            Box::new(|p: &mut Packet| p.id = PacketId(9)) as Box<dyn Fn(&mut Packet)>,
            Box::new(|p: &mut Packet| p.port = PortId(3)),
            Box::new(|p: &mut Packet| p.arrival = 31),
            Box::new(|p: &mut Packet| p.size = 65),
            Box::new(|p: &mut Packet| p.fields[1] = 9),
        ]
        .into_iter()
        .enumerate()
        {
            let mut t = base();
            tweak(&mut t[0]);
            assert_ne!(stream_digest(&t), d0, "component {i} not hashed");
        }
    }

    #[test]
    fn digest_is_a_fixed_function() {
        // Golden value: guards against accidental algorithm changes
        // (FNV-1a over little-endian words, offset basis 0xcbf29ce484222325).
        let mut p = Packet::new(PacketId(0), PortId(0), 0, 64, 1);
        p.fields = vec![1];
        assert_eq!(stream_digest(&[p]), 0xe161_4908_ab4d_2264);
    }
}
