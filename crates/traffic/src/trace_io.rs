//! Trace persistence: save and reload generated packet traces so an
//! experiment's exact input can be archived alongside its results.

use mp5_types::Packet;

/// Serializes a trace to pretty JSON.
pub fn to_json(trace: &[Packet]) -> String {
    serde_json::to_string_pretty(trace).expect("packets serialize")
}

/// Parses a trace from JSON.
pub fn from_json(json: &str) -> Result<Vec<Packet>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Writes a trace to a file.
pub fn save(trace: &[Packet], path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_json(trace))
}

/// Reads a trace from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<Vec<Packet>> {
    let text = std::fs::read_to_string(path)?;
    from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn json_roundtrip_preserves_trace() {
        let trace = TraceBuilder::new(200, 9).build(3, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(-50..50);
        });
        let back = from_json(&to_json(&trace)).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mp5_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let trace = TraceBuilder::new(50, 1).build(2, |_, i, f| f[0] = i as i64);
        save(&trace, &path).unwrap();
        assert_eq!(load(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("[{]").is_err());
        assert!(from_json("42").is_err());
    }
}
