//! Workload and trace generation.
//!
//! Produces the input packet streams for every experiment in the paper:
//!
//! * [`TraceBuilder`] — line-rate arrivals on an `N`-port switch with
//!   configurable packet-size distribution and offered load, plus a
//!   caller-supplied field filler ("in the same spirit of stressing our
//!   system to the fullest, we ensure that the input packets always
//!   arrive at line rate", §4.3.1).
//! * [`AccessPattern`] — the uniform and skewed (95 % of packets touch
//!   30 % of states) state-access patterns of §4.3.1.
//! * [`FlowTraceBuilder`] — flow-structured traffic with the Web-search
//!   heavy-tailed flow-size distribution and bimodal 200 B/1400 B packet
//!   sizes used for the real-application experiments (§4.4).
//!
//! All generators are seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dc;
pub mod flows;
pub mod pattern;
pub mod streams;
pub mod trace_io;

pub use dc::{DcPacket, DcPattern, DcStream, DcWorkload};
pub use flows::{FlowTraceBuilder, WEB_SEARCH_CDF};
pub use pattern::AccessPattern;
pub use streams::{stream_digest, stream_rng, stream_seed};

use mp5_types::{Packet, PacketId, PortId, Time, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Packet size distribution on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every packet has this many bytes (64 = worst case, §4.3.1).
    Fixed(u32),
    /// Bimodal datacenter mix (§4.4 uses 200 B / 1400 B).
    Bimodal {
        /// Small-mode size in bytes.
        small: u32,
        /// Large-mode size in bytes.
        large: u32,
        /// Probability of the small mode.
        p_small: f64,
    },
}

impl SizeDist {
    /// The paper's §4.4 bimodal distribution, "clustered around 200 B
    /// and 1400 B, as commonly observed in datacenters".
    pub fn datacenter_bimodal() -> Self {
        SizeDist::Bimodal {
            small: 200,
            large: 1400,
            p_small: 0.55,
        }
    }

    /// Mean packet size in bytes.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(s) => s as f64,
            SizeDist::Bimodal {
                small,
                large,
                p_small,
            } => small as f64 * p_small + large as f64 * (1.0 - p_small),
        }
    }

    /// Draws one packet size.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Bimodal {
                small,
                large,
                p_small,
            } => {
                if rng.gen_bool(p_small) {
                    small
                } else {
                    large
                }
            }
        }
    }
}

/// Builds a line-rate packet trace on an `N`-port switch.
///
/// Arrival model: each port transmits back-to-back at its own rate `B`
/// (= aggregate / `ports`), so a packet of `s` bytes occupies its port
/// for `s · ports` byte-times. `load < 1.0` stretches per-port gaps
/// proportionally. The merged stream therefore offers
/// `load × N·B` bytes per byte-time to the switch.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    /// Number of switch ports (paper default: 64).
    pub ports: usize,
    /// RNG seed (every trace is deterministic).
    pub seed: u64,
    /// Packet size distribution.
    pub size: SizeDist,
    /// Number of packets to generate.
    pub count: usize,
    /// Offered load as a fraction of line rate (default 1.0).
    pub load: f64,
}

impl TraceBuilder {
    /// A default 64-port, line-rate, 64 B-packet trace (the paper's
    /// stress configuration).
    pub fn new(count: usize, seed: u64) -> Self {
        TraceBuilder {
            ports: 64,
            seed,
            size: SizeDist::Fixed(64),
            count,
            load: 1.0,
        }
    }

    /// Sets the packet size distribution.
    pub fn size(mut self, size: SizeDist) -> Self {
        self.size = size;
        self
    }

    /// Sets the offered load fraction.
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        self.load = load;
        self
    }

    /// Sets the port count.
    pub fn ports(mut self, ports: usize) -> Self {
        assert!(ports > 0);
        self.ports = ports;
        self
    }

    /// Generates the trace. `fill(rng, packet_index, fields)` populates
    /// each packet's declared header fields; `nfields` sizes the field
    /// vector (use the compiled program's `num_fields()`).
    ///
    /// Returned packets are sorted by entry order.
    pub fn build<F>(&self, nfields: usize, mut fill: F) -> Vec<Packet>
    where
        F: FnMut(&mut SmallRng, u64, &mut [Value]),
    {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Next time each port is free to begin a packet. Ports are
        // staggered by one mean packet time each so the merged stream is
        // smooth line rate rather than phase-locked 64-packet bursts.
        let stagger = self.size.mean() / self.load;
        let mut port_free: Vec<f64> = (0..self.ports).map(|p| p as f64 * stagger).collect();
        let mut packets = Vec::with_capacity(self.count);
        for i in 0..self.count as u64 {
            // The next arrival comes from the port that frees earliest;
            // ties by port id (matching the paper's entry-order rule).
            let port = (0..self.ports)
                .min_by(|&a, &b| {
                    port_free[a]
                        .partial_cmp(&port_free[b])
                        .expect("times are finite")
                })
                .expect("ports > 0");
            let size = self.size.sample(&mut rng);
            let arrival = port_free[port].ceil() as Time;
            // Port occupancy: size bytes at rate aggregate/ports.
            port_free[port] += (size as f64) * (self.ports as f64) / self.load;
            let mut pkt = Packet::new(PacketId(i), PortId(port as u16), arrival, size, nfields);
            fill(&mut rng, i, &mut pkt.fields);
            packets.push(pkt);
        }
        packets.sort_by_key(|p| p.entry_order_key());
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_line_rate_has_uniform_spacing() {
        let trace = TraceBuilder::new(1000, 7).build(1, |_, _, _| {});
        // At line rate with 64 B packets, aggregate inter-arrival is
        // 64 byte-times: packet i arrives at ~64*i/ports per port, and
        // the merged stream delivers ~1 packet per 64 byte-times.
        let t_last = trace.last().unwrap().arrival;
        let span = t_last.max(1) as f64;
        let rate = trace.len() as f64 / span; // packets per byte-time
        let ideal = 1.0 / 64.0;
        assert!(
            (rate - ideal).abs() / ideal < 0.15,
            "rate {rate} vs ideal {ideal}"
        );
    }

    #[test]
    fn load_scales_arrival_rate() {
        let full = TraceBuilder::new(2000, 1).build(1, |_, _, _| {});
        let half = TraceBuilder::new(2000, 1).load(0.5).build(1, |_, _, _| {});
        let full_span = full.last().unwrap().arrival;
        let half_span = half.last().unwrap().arrival;
        assert!(
            (half_span as f64 / full_span as f64 - 2.0).abs() < 0.2,
            "half load should take ~2x longer: {half_span} vs {full_span}"
        );
    }

    #[test]
    fn trace_is_deterministic() {
        let a = TraceBuilder::new(500, 42).build(2, |r, _, f| f[0] = r.gen_range(0..100));
        let b = TraceBuilder::new(500, 42).build(2, |r, _, f| f[0] = r.gen_range(0..100));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceBuilder::new(100, 1).build(2, |r, _, f| f[0] = r.gen_range(0..1000));
        let b = TraceBuilder::new(100, 2).build(2, |r, _, f| f[0] = r.gen_range(0..1000));
        assert_ne!(a, b);
    }

    #[test]
    fn packets_sorted_and_unique_ids() {
        let trace = TraceBuilder::new(300, 3)
            .size(SizeDist::datacenter_bimodal())
            .build(1, |_, _, _| {});
        assert!(trace
            .windows(2)
            .all(|w| w[0].entry_order_key() <= w[1].entry_order_key()));
        let mut ids: Vec<u64> = trace.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 300);
    }

    #[test]
    fn bimodal_sizes_only_two_modes() {
        let trace = TraceBuilder::new(500, 9)
            .size(SizeDist::datacenter_bimodal())
            .build(1, |_, _, _| {});
        assert!(trace.iter().all(|p| p.size == 200 || p.size == 1400));
        let small = trace.iter().filter(|p| p.size == 200).count();
        assert!(small > 150 && small < 400, "mix should be roughly 55/45");
    }

    #[test]
    fn ports_spread_arrivals() {
        let trace = TraceBuilder::new(640, 5).build(1, |_, _, _| {});
        let used: std::collections::HashSet<u16> = trace.iter().map(|p| p.port.0).collect();
        assert_eq!(used.len(), 64, "all 64 ports should carry traffic");
    }
}
