//! Golden-file tests: every stable `MP5xxx` diagnostic code fires on
//! its fixture with the expected severity and span, rustc-style
//! rendering stays stable, and the `mp5lint` binary agrees (including
//! `--format=json` round-trips).

use std::path::{Path, PathBuf};
use std::process::Command;

use mp5_analysis::{analyze_source, json::Json};
use mp5_compiler::Target;
use mp5_lang::{Code, Severity};

fn fixture_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

fn apps_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/programs")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// (fixture, expected `(code, severity, line)` findings, in order).
/// Line 0 means the diagnostic carries no span.
#[allow(clippy::type_complexity)]
fn broken_expectations() -> Vec<(&'static str, Vec<(Code, Severity, u32)>)> {
    use Severity::{Error, Warning};
    vec![
        (
            "semantic_errors.mp5",
            vec![
                (Code::DUPLICATE_FIELD, Error, 0),
                (Code::DUPLICATE_REGISTER, Error, 9),
                (Code::UNKNOWN_FIELD, Error, 12),
                (Code::UNKNOWN_REGISTER, Error, 13),
                (Code::ARRAY_WITHOUT_INDEX, Error, 14),
                (Code::UNDECLARED_IDENTIFIER, Error, 15),
            ],
        ),
        ("syntax_error.mp5", vec![(Code::PARSE_ERROR, Error, 5)]),
        ("lex_error.mp5", vec![(Code::LEX_ERROR, Error, 5)]),
        (
            "stateful_index.mp5",
            vec![
                (Code::PINNED_STATEFUL_INDEX, Warning, 10),
                (Code::ARRAY_LEVEL_SERIALIZATION, Warning, 10),
            ],
        ),
        (
            "multi_index.mp5",
            vec![(Code::PINNED_MULTI_INDEX, Warning, 9)],
        ),
        (
            "stateful_predicate.mp5",
            vec![
                (Code::PINNED_STATEFUL_PREDICATE, Warning, 10),
                (Code::ARRAY_LEVEL_SERIALIZATION, Warning, 10),
            ],
        ),
        (
            "co_resident.mp5",
            vec![
                (Code::PINNED_CO_RESIDENT, Warning, 10),
                (Code::PINNED_CO_RESIDENT, Warning, 10),
                (Code::ARRAY_LEVEL_SERIALIZATION, Warning, 10),
            ],
        ),
        ("sram_overflow.mp5", vec![(Code::SRAM_OVERFLOW, Error, 0)]),
    ]
}

#[test]
fn every_broken_fixture_fires_its_codes_with_expected_spans() {
    for (file, expected) in broken_expectations() {
        let path = fixture_dir("broken").join(file);
        let analysis = analyze_source(&read(&path), &Target::default());
        let got: Vec<(Code, Severity, u32)> = analysis
            .diagnostics
            .iter()
            .map(|d| (d.code, d.severity, d.span.line))
            .collect();
        assert_eq!(got, expected, "{file}: diagnostic mismatch");
    }
}

#[test]
fn clean_fixtures_have_no_findings() {
    for file in ["counter.mp5", "two_tables.mp5"] {
        let path = fixture_dir("clean").join(file);
        let analysis = analyze_source(&read(&path), &Target::default());
        assert!(
            analysis.diagnostics.is_empty(),
            "{file}: {:?}",
            analysis.diagnostics
        );
        let report = analysis.report.expect("clean program yields a report");
        assert_eq!(report.shardable_count(), report.regs.len());
        assert!(report.pressure.as_ref().unwrap().fits);
    }
}

#[test]
fn targeted_fixtures_fire_under_constrained_targets() {
    let no_pairs = Target {
        allow_pairs: false,
        ..Target::default()
    };
    let a = analyze_source(
        &read(&fixture_dir("targeted").join("pairs_unsupported.mp5")),
        &no_pairs,
    );
    assert!(a
        .diagnostics
        .iter()
        .any(|d| d.code == Code::PAIRS_UNSUPPORTED && d.severity == Severity::Error));

    let squeezed = Target {
        max_stages: 2,
        ..Target::default()
    };
    let a = analyze_source(
        &read(&fixture_dir("targeted").join("too_many_stages.mp5")),
        &squeezed,
    );
    assert!(a
        .diagnostics
        .iter()
        .any(|d| d.code == Code::TOO_MANY_STAGES && d.severity == Severity::Error));
}

#[test]
fn too_many_ops_fires_under_tiny_ops_budget() {
    let src = read(&fixture_dir("clean").join("two_tables.mp5"));
    let tiny_ops = Target {
        max_ops_per_stage: 1,
        ..Target::default()
    };
    let a = analyze_source(&src, &tiny_ops);
    assert!(a
        .diagnostics
        .iter()
        .any(|d| d.code == Code::TOO_MANY_OPS && d.severity == Severity::Error));
}

#[test]
fn rendering_of_stateful_index_fixture_is_stable() {
    let path = fixture_dir("broken").join("stateful_index.mp5");
    let source = read(&path);
    let analysis = analyze_source(&source, &Target::default());
    let rendered = mp5_lang::diag::render_all(&analysis.diagnostics, &source, "stateful_index.mp5");
    assert!(
        rendered.contains("warning[MP5201]: register 'ring' is indexed by stateful data"),
        "{rendered}"
    );
    assert!(
        rendered.contains("--> stateful_index.mp5:10:5"),
        "{rendered}"
    );
    assert!(
        rendered.contains("10 |     ring[cursor] = p.h;"),
        "{rendered}"
    );
    // Caret sits under column 5.
    assert!(rendered.contains("   |     ^"), "{rendered}");
    assert!(rendered.contains("warning[MP5301]"), "{rendered}");
    assert!(
        rendered.contains("stateful_index.mp5: 2 warning(s)"),
        "{rendered}"
    );
}

// ---------------------------------------------------------------------
// mp5lint binary
// ---------------------------------------------------------------------

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mp5lint"))
        .args(args)
        .output()
        .expect("mp5lint runs")
}

#[test]
fn lint_accepts_annotated_fixtures_and_clean_corpus() {
    let broken = fixture_dir("broken");
    let clean = fixture_dir("clean");
    let out = lint(&["-q", broken.to_str().unwrap(), clean.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "annotated fixtures must lint clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_accepts_the_apps_corpus() {
    let out = lint(&["-q", apps_dir().to_str().unwrap()]);
    assert!(
        out.status.success(),
        "bundled apps must lint clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_flags_cover_targeted_fixtures() {
    let dir = fixture_dir("targeted");
    let pairs = dir.join("pairs_unsupported.mp5");
    let stages = dir.join("too_many_stages.mp5");
    // With the right flags the annotations match and the lint passes.
    assert!(lint(&["-q", "--no-pairs", pairs.to_str().unwrap()])
        .status
        .success());
    assert!(lint(&["-q", "--max-stages=2", stages.to_str().unwrap()])
        .status
        .success());
    // Under the default target the annotations do not fire, which is
    // itself an MP5999 finding.
    let out = lint(&[pairs.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MP5999"), "{text}");
    assert!(
        text.contains("expected diagnostic MP5404 did not fire"),
        "{text}"
    );
}

#[test]
fn lint_fails_on_unannotated_findings_and_deny_warnings_promotes() {
    let dir = std::env::temp_dir().join("mp5lint-golden-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("warn_only.mp5");
    std::fs::write(
        &file,
        "struct Packet { int h; };\n\
         int cursor = 0;\n\
         int ring[8];\n\
         void func(struct Packet p) { cursor = (cursor + 1) % 8; ring[cursor] = p.h; }\n",
    )
    .unwrap();
    // Warnings alone do not fail the default lint...
    let out = lint(&[file.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "warnings are not errors by default"
    );
    // ...but --deny-warnings promotes them.
    let out = lint(&["--deny-warnings", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MP5201"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_usage_errors_exit_2() {
    assert_eq!(lint(&[]).status.code(), Some(2));
    assert_eq!(lint(&["--format=yaml", "x.mp5"]).status.code(), Some(2));
    assert_eq!(lint(&["/nonexistent/path.mp5"]).status.code(), Some(2));
}

#[test]
fn lint_json_output_round_trips() {
    let broken = fixture_dir("broken");
    let clean = fixture_dir("clean");
    let out = lint(&[
        "--format=json",
        broken.to_str().unwrap(),
        clean.to_str().unwrap(),
    ]);
    let text = String::from_utf8(out.stdout).unwrap();
    let doc = Json::parse(text.trim()).expect("mp5lint emits valid JSON");

    // Emission is deterministic: parse → emit → parse is a fixed point.
    let reemitted = doc.emit();
    assert_eq!(Json::parse(&reemitted).unwrap(), doc);

    let Json::Arr(files) = &doc else {
        panic!("top level must be an array")
    };
    assert_eq!(files.len(), 10, "8 broken + 2 clean fixtures");
    for f in files {
        let name = match f.get("file") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("file field: {other:?}"),
        };
        assert!(matches!(f.get("clean"), Some(Json::Bool(true))), "{name}");
        let Some(Json::Arr(diags)) = f.get("diagnostics") else {
            panic!("{name}: diagnostics array")
        };
        // Every fixture's expected findings were consumed by its
        // annotations, so the JSON shows none unexpected.
        assert!(diags.is_empty(), "{name}: {diags:?}");
        if name.contains("clean") {
            let report = f.get("report").expect("report field");
            assert!(
                matches!(report.get("regs"), Some(Json::Arr(r)) if !r.is_empty()),
                "{name}: populated report"
            );
            assert!(
                matches!(
                    report.get("pressure").and_then(|p| p.get("fits")),
                    Some(Json::Bool(true))
                ),
                "{name}: pressure fits"
            );
        }
    }
}
