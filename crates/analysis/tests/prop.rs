//! Property tests (hand-rolled generator — the container has no
//! external property-testing crate) tying the static analyzer to the
//! compiler's actual behaviour:
//!
//! 1. **Analyzer-clean ⇒ compiles**: a program with no error-level
//!    findings under the default [`Target`] must pass
//!    `mp5_compiler::compile` with that target.
//! 2. **Classes match codegen**: for every program the compiler
//!    accepts, the report's per-register shardability classes agree
//!    exactly with the `shardable` bit codegen stamps on [`RegMeta`].

use mp5_analysis::analyze_source;
use mp5_compiler::{compile, Target};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Generates a random well-formed MP5 program exercising the
/// shardability-relevant corners: pure hash indexes, stateful indexes,
/// repeated vs distinct indexes, predicated updates (pure and stateful
/// predicates), and read-back into packet fields.
fn gen_program(rng: &mut Rng) -> String {
    let nregs = 1 + rng.below(3) as usize;
    let mut decls = String::new();
    let mut body = String::new();
    let sizes = [1usize, 4, 8, 16];

    for r in 0..nregs {
        let size = sizes[rng.below(sizes.len() as u64) as usize];
        decls.push_str(&format!("int reg{r}[{size}] = {{0}};\n"));
        let idx = |rng: &mut Rng| -> String {
            if size == 1 {
                "0".to_string()
            } else {
                match rng.below(3) {
                    0 => format!("p.h % {size}"),
                    1 => format!("hash2(p.h, {}) % {size}", 1 + rng.below(97)),
                    _ => format!("p.g % {size}"),
                }
            }
        };
        let i = idx(rng);
        match rng.below(5) {
            // Plain counter at one index (the common, shardable case).
            0 => body.push_str(&format!("reg{r}[{i}] = reg{r}[{i}] + 1;\n")),
            // Counter plus read-back into a field.
            1 => {
                body.push_str(&format!("reg{r}[{i}] = reg{r}[{i}] + p.h;\n"));
                body.push_str(&format!("p.out = reg{r}[{i}];\n"));
            }
            // Purely-predicated update (resolvable predicate).
            2 => body.push_str(&format!(
                "if (p.h > {}) {{ reg{r}[{i}] = reg{r}[{i}] + 1; }}\n",
                rng.below(100)
            )),
            // Stateful predicate over a single-index access: the access
            // still shards via a speculative phantom.
            3 => body.push_str(&format!(
                "if (reg{r}[{i}] < {}) {{ reg{r}[{i}] = reg{r}[{i}] + 1; }}\n",
                1 + rng.below(1000)
            )),
            // Two accesses, possibly at distinct indexes (may pin).
            _ => {
                let j = idx(rng);
                body.push_str(&format!("reg{r}[{i}] = reg{r}[{i}] + 1;\n"));
                body.push_str(&format!("p.out = reg{r}[{j}];\n"));
            }
        }
        // Occasionally index a later register with this register's value
        // (stateful index: pins the later register).
        if r + 1 < nregs && rng.chance(20) {
            let size2 = 8;
            decls.push_str(&format!("int sidx{r}[{size2}] = {{0}};\n"));
            body.push_str(&format!("sidx{r}[reg{r}[{i}] % {size2}] = p.h;\n"));
        }
    }

    format!(
        "struct Packet {{ int h; int g; int out; }};\n{decls}void func(struct Packet p) {{\n{body}}}\n"
    )
}

#[test]
fn analyzer_clean_programs_compile_and_classes_match_codegen() {
    let target = Target::default();
    let mut compiled_ok = 0usize;
    let mut pinned_seen = 0usize;
    for seed in 0..300u64 {
        let src = gen_program(&mut Rng::new(seed));
        let analysis = analyze_source(&src, &target);

        match compile(&src, &target) {
            Ok(prog) => {
                compiled_ok += 1;
                // Property 1 direction: compiler-accepted programs never
                // carry analyzer errors (warnings are fine).
                assert!(
                    !analysis.has_errors(),
                    "seed {seed}: compiler accepted but analyzer errored\n{src}\n{:?}",
                    analysis.diagnostics
                );
                // Property 2: class ⇔ codegen's shardable bit, register
                // by register.
                let report = analysis.report.as_ref().expect("report exists");
                assert_eq!(report.regs.len(), prog.regs.len(), "seed {seed}");
                for (ra, meta) in report.regs.iter().zip(prog.regs.iter()) {
                    assert_eq!(
                        ra.class.is_shardable(),
                        meta.shardable,
                        "seed {seed}: register '{}' class {:?} vs codegen \
                         shardable={}\n{src}",
                        ra.name,
                        ra.class,
                        meta.shardable
                    );
                    pinned_seen += usize::from(!meta.shardable);
                }
            }
            Err(e) => {
                // Property 1: analyzer-clean programs always compile.
                assert!(
                    analysis.has_errors(),
                    "seed {seed}: analyzer was clean but compile failed: {e}\n{src}"
                );
            }
        }
    }
    // The generator must actually exercise both regimes.
    assert!(compiled_ok > 200, "only {compiled_ok}/300 compiled");
    assert!(pinned_seen > 10, "only {pinned_seen} pinned registers seen");
}

#[test]
fn shardable_verdicts_survive_transform() {
    // Register-level agreement specifically for the Shardable class:
    // the transformer must never pin a register the analyzer called
    // shardable (the merge-aware analyzer already folds stage-merge
    // pinning into its classes).
    let target = Target::default();
    let mut checked = 0usize;
    for seed in 300..400u64 {
        let src = gen_program(&mut Rng::new(seed));
        let analysis = analyze_source(&src, &target);
        let Some(report) = &analysis.report else {
            continue;
        };
        let Ok(prog) = compile(&src, &target) else {
            continue;
        };
        for ra in &report.regs {
            if ra.class.is_shardable() {
                let meta = prog.regs.iter().find(|m| m.name == ra.name).unwrap();
                assert!(
                    meta.shardable,
                    "seed {seed}: '{}' declared shardable but transform pinned it\n{src}",
                    ra.name
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "only {checked} shardable registers checked");
}
