//! Minimal JSON support for `mp5lint --format=json`.
//!
//! A tiny self-contained JSON document model with an emitter and a
//! parser, so JSON output can be produced *and* round-trip-verified
//! without external dependencies. Keys keep insertion order, which
//! makes emission deterministic and round-trips exact.

use std::fmt::Write as _;

use mp5_compiler::AnalysisReport;
use mp5_lang::{Diagnostic, Severity};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (emitted without a fractional part when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: integer → number.
    pub fn int(v: impl Into<i64>) -> Json {
        Json::Num(v.into() as f64)
    }

    /// Convenience: string-ish → string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for round-trips of our own
    /// output; tolerant of whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

// ---------------------------------------------------------------------
// Report / diagnostic serialization
// ---------------------------------------------------------------------

/// A diagnostic as a JSON object.
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".into(), Json::str(d.code.to_string())),
        (
            "severity".into(),
            Json::str(match d.severity {
                Severity::Note => "note",
                Severity::Warning => "warning",
                Severity::Error => "error",
            }),
        ),
        ("line".into(), Json::int(i64::from(d.span.line))),
        ("col".into(), Json::int(i64::from(d.span.col))),
        ("message".into(), Json::str(d.message.clone())),
        (
            "notes".into(),
            Json::Arr(d.notes.iter().map(|n| Json::str(n.clone())).collect()),
        ),
    ])
}

/// An analysis report as a JSON object.
pub fn report_to_json(report: &AnalysisReport) -> Json {
    let regs = report
        .regs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".into(), Json::str(r.name.clone())),
                ("size".into(), Json::int(i64::from(r.size))),
                ("class".into(), Json::str(r.class.as_str())),
                (
                    "culprits".into(),
                    Json::Arr(r.culprits.iter().map(|&c| Json::int(c as i64)).collect()),
                ),
                ("speculative".into(), Json::Bool(r.speculative)),
                ("covered".into(), Json::Bool(r.covered)),
            ])
        })
        .collect();
    let pressure = match &report.pressure {
        None => Json::Null,
        Some(p) => Json::Obj(vec![
            (
                "prologue_stages".into(),
                Json::int(p.prologue_stages as i64),
            ),
            ("body_stages".into(), Json::int(p.body_stages as i64)),
            ("total_stages".into(), Json::int(p.total_stages as i64)),
            ("max_stages".into(), Json::int(p.max_stages as i64)),
            ("peak_stage_ops".into(), Json::int(p.peak_stage_ops as i64)),
            (
                "max_ops_per_stage".into(),
                Json::int(p.max_ops_per_stage as i64),
            ),
            (
                "predicted_merges".into(),
                Json::int(p.predicted_merges as i64),
            ),
            (
                "sram_bits".into(),
                Json::Arr(p.sram_bits.iter().map(|&b| Json::int(b as i64)).collect()),
            ),
            (
                "max_sram_bits_per_stage".into(),
                Json::int(p.max_sram_bits_per_stage as i64),
            ),
            ("fits".into(), Json::Bool(p.fits)),
        ]),
    };
    Json::Obj(vec![
        ("regs".into(), Json::Arr(regs)),
        ("pressure".into(), pressure),
        (
            "diagnostics".into(),
            Json::Arr(report.diagnostics.iter().map(diagnostic_to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::int(3)),
            ("b".into(), Json::str("hi \"there\"\nline2")),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(1.5)]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = v.emit();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Emission is deterministic, so a second trip is byte-identical.
        assert_eq!(back.emit(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("{}extra").is_err());
    }

    #[test]
    fn get_looks_up_object_keys() {
        let v = Json::parse(r#"{"x": 1, "y": [2]}"#).unwrap();
        assert_eq!(v.get("x"), Some(&Json::Num(1.0)));
        assert!(v.get("z").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
