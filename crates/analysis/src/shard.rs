//! Shardability classification (paper §3.3).
//!
//! Mirrors the decision procedure of `mp5-compiler`'s PVSM-to-PVSM
//! transformer, but keeps the *reasons*: for every register array it
//! reports not just whether the array can be dynamically sharded across
//! pipelines (design principle D2) but which access sites — by TAC
//! position and source span — force a pinned classification. The
//! `transform` pass only returns a `Vec<bool>`; this module is the
//! explainable version, and a property test asserts the two always
//! agree.

use mp5_compiler::schedule::Schedule;
use mp5_compiler::slice::Slicer;
use mp5_compiler::ShardClass;
use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::{Code, Diagnostic, Operand};

/// Classification of one register array, with evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegClassification {
    /// The verdict.
    pub class: ShardClass,
    /// TAC instruction positions responsible for a pinned verdict
    /// (empty for `Shardable`).
    pub culprits: Vec<usize>,
    /// Whether the access plan will be *speculative* (stateful
    /// predicate, single access group — shardable but phantoms are
    /// generated for both branch outcomes).
    pub speculative: bool,
}

impl RegClassification {
    fn shardable() -> Self {
        RegClassification {
            class: ShardClass::Shardable,
            culprits: Vec::new(),
            speculative: false,
        }
    }
}

/// One access site of a register (TAC position + operands).
struct Site {
    pos: usize,
    idx: Operand,
    pred: Option<Operand>,
}

/// Classifies every register array of a scheduled program.
///
/// Returns one entry per register, indexed by `RegId`, mirroring
/// `transform`'s shardability verdicts: `class.is_shardable()` is `true`
/// exactly when `transform(..).shardable[reg]` is.
pub fn classify(tac: &TacProgram, sched: &Schedule) -> Vec<RegClassification> {
    let slicer = Slicer::new(tac);
    let mut out = vec![RegClassification::shardable(); tac.regs.len()];

    for cluster in &sched.clusters {
        // Pairs-class atom: entangled arrays co-reside in one stage and
        // the whole group is pinned.
        if cluster.regs.len() > 1 {
            let culprits: Vec<usize> = cluster
                .members
                .iter()
                .copied()
                .filter(|&m| {
                    matches!(
                        tac.instrs[m],
                        TacInstr::RegRead { .. } | TacInstr::RegWrite { .. }
                    )
                })
                .collect();
            for &r in &cluster.regs {
                out[r.index()] = RegClassification {
                    class: ShardClass::PinnedCoResident,
                    culprits: culprits.clone(),
                    speculative: false,
                };
            }
            continue;
        }

        let reg = cluster.regs[0];
        let mut sites: Vec<Site> = Vec::new();
        for &m in &cluster.members {
            if let TacInstr::RegRead { idx, pred, .. } | TacInstr::RegWrite { idx, pred, .. } =
                &tac.instrs[m]
            {
                sites.push(Site {
                    pos: m,
                    idx: *idx,
                    pred: *pred,
                });
            }
        }
        debug_assert!(!sites.is_empty());

        // Group by syntactic index operand (CSE makes equal indexes
        // literally identical), exactly as the transformer does.
        let mut groups: Vec<(Operand, Vec<Site>)> = Vec::new();
        for s in sites {
            match groups.iter_mut().find(|(op, _)| *op == s.idx) {
                Some((_, v)) => v.push(s),
                None => groups.push((s.idx, vec![s])),
            }
        }

        // Per group: can the index / predicate be resolved in the
        // prologue (i.e. sliced to pure header computation)?
        let mut any_idx_stateful = false;
        let mut any_pred_speculative = false;
        let mut idx_culprits: Vec<usize> = Vec::new();
        let mut pred_culprits: Vec<usize> = Vec::new();
        let mut single_group_speculative = false;
        for (idx_op, sites) in &groups {
            if slicer.try_slice(*idx_op, sites[0].pos).is_none() {
                any_idx_stateful = true;
                idx_culprits.extend(sites.iter().map(|s| s.pos));
            }
            // Union predicate over the group's sites — an unpredicated
            // site makes the union Always, masking stateful predicates
            // (the transformer's rule).
            let always = sites.iter().any(|s| s.pred.is_none());
            let speculative = sites.iter().any(|s| match s.pred {
                None => false,
                Some(p) => slicer.try_slice(p, s.pos).is_none(),
            });
            if !always && speculative {
                any_pred_speculative = true;
                single_group_speculative = true;
                pred_culprits.extend(sites.iter().filter_map(|s| {
                    s.pred.and_then(|p| {
                        if slicer.try_slice(p, s.pos).is_none() {
                            Some(s.pos)
                        } else {
                            None
                        }
                    })
                }));
            }
        }

        out[reg.index()] = if groups.len() == 1 {
            if any_idx_stateful {
                RegClassification {
                    class: ShardClass::PinnedStatefulIndex,
                    culprits: idx_culprits,
                    speculative: false,
                }
            } else {
                RegClassification {
                    class: ShardClass::Shardable,
                    culprits: Vec::new(),
                    speculative: single_group_speculative,
                }
            }
        } else {
            // Multiple distinct indexes pin the array regardless; name
            // the dominant cause.
            let (class, culprits) = if any_idx_stateful {
                (ShardClass::PinnedStatefulIndex, idx_culprits)
            } else if any_pred_speculative {
                (ShardClass::PinnedStatefulPredicate, pred_culprits)
            } else {
                (
                    ShardClass::PinnedCoResident,
                    groups
                        .iter()
                        .flat_map(|(_, ss)| ss.iter().map(|s| s.pos))
                        .collect(),
                )
            };
            RegClassification {
                class,
                culprits,
                speculative: false,
            }
        };
    }

    out
}

/// Renders shardability findings as diagnostics (warnings for pinned
/// arrays, a note for speculative phantom plans).
pub fn diagnostics(tac: &TacProgram, classes: &[RegClassification]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (ri, c) in classes.iter().enumerate() {
        let name = &tac.regs[ri].name;
        let span = c
            .culprits
            .first()
            .map(|&p| tac.span_of(p))
            .filter(|s| s.line > 0)
            .or_else(|| {
                // Fall back to the register's first stateful access.
                use mp5_lang::tac::TacInstr;
                let rid = mp5_types::RegId::from(ri);
                tac.instrs
                    .iter()
                    .position(|i| match i {
                        TacInstr::RegRead { reg, .. } | TacInstr::RegWrite { reg, .. } => {
                            *reg == rid
                        }
                        TacInstr::Assign { .. } => false,
                    })
                    .map(|p| tac.span_of(p))
            })
            .unwrap_or_default();
        let site_note = |d: Diagnostic| {
            if c.culprits.is_empty() {
                d
            } else {
                let rendered: Vec<String> = c
                    .culprits
                    .iter()
                    .map(|&p| format!("[{p}] {}", tac.fmt_instr(&tac.instrs[p])))
                    .collect();
                d.with_note(format!("responsible access(es): {}", rendered.join("; ")))
            }
        };
        match c.class {
            ShardClass::Shardable => {
                if c.speculative {
                    diags.push(Diagnostic::note(
                        Code::SPECULATIVE_PHANTOM,
                        span,
                        format!(
                            "register '{name}' is guarded by a stateful predicate: \
                             MP5 assumes it true and emits a speculative phantom \
                             (one wasted cycle when false)"
                        ),
                    ));
                }
            }
            ShardClass::PinnedStatefulIndex => diags.push(site_note(Diagnostic::warning(
                Code::PINNED_STATEFUL_INDEX,
                span,
                format!(
                    "register '{name}' is indexed by stateful data: the array is \
                     pinned to one pipeline (no D2 sharding)"
                ),
            ))),
            ShardClass::PinnedCoResident => diags.push(site_note(Diagnostic::warning(
                if c.culprits.len() > 1 && has_multi_index(tac, c) {
                    Code::PINNED_MULTI_INDEX
                } else {
                    Code::PINNED_CO_RESIDENT
                },
                span,
                format!(
                    "register '{name}' is pinned to one pipeline: it shares a stage \
                     or is accessed at multiple distinct indexes"
                ),
            ))),
            ShardClass::PinnedStatefulPredicate => diags.push(site_note(Diagnostic::warning(
                Code::PINNED_STATEFUL_PREDICATE,
                span,
                format!(
                    "register '{name}' has multiple access sites under a stateful \
                     predicate: the taken set cannot be resolved in the prologue, \
                     so the array is pinned"
                ),
            ))),
        }
    }
    diags
}

/// Do the culprits of a co-resident verdict use more than one distinct
/// index operand (the multiple-distinct-indexes hard case, as opposed to
/// a pairs-class entanglement)?
fn has_multi_index(tac: &TacProgram, c: &RegClassification) -> bool {
    let mut idxs: Vec<Operand> = Vec::new();
    let mut regs: Vec<mp5_types::RegId> = Vec::new();
    for &p in &c.culprits {
        if let TacInstr::RegRead { reg, idx, .. } | TacInstr::RegWrite { reg, idx, .. } =
            &tac.instrs[p]
        {
            if !idxs.contains(idx) {
                idxs.push(*idx);
            }
            if !regs.contains(reg) {
                regs.push(*reg);
            }
        }
    }
    regs.len() == 1 && idxs.len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_compiler::schedule::pipeline;
    use mp5_compiler::transform::transform;
    use mp5_lang::frontend;

    fn classified(src: &str) -> (TacProgram, Vec<RegClassification>) {
        let tac = frontend(src).unwrap();
        let sched = pipeline(&tac, 4).unwrap();
        let classes = classify(&tac, &sched);
        // Invariant: agrees with the transformer on shardability.
        let xf = transform(&tac, &sched, 4);
        for (ri, c) in classes.iter().enumerate() {
            assert_eq!(
                c.class.is_shardable(),
                xf.shardable[ri],
                "class {:?} disagrees with transform for reg {ri}",
                c.class
            );
        }
        (tac, classes)
    }

    #[test]
    fn pure_index_is_shardable() {
        let (_, cs) = classified(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
        );
        assert_eq!(cs[0].class, ShardClass::Shardable);
        assert!(cs[0].culprits.is_empty());
        assert!(!cs[0].speculative);
    }

    #[test]
    fn stateful_index_pins_with_culprit() {
        let (tac, cs) = classified(
            "struct Packet { int h; };
             int ptr = 0;
             int r[8];
             void func(struct Packet p) { r[ptr % 8] = 1; }",
        );
        assert_eq!(cs[1].class, ShardClass::PinnedStatefulIndex);
        assert_eq!(cs[1].culprits.len(), 1);
        // Culprit points at the RegWrite on r.
        assert!(matches!(
            tac.instrs[cs[1].culprits[0]],
            TacInstr::RegWrite { .. }
        ));
    }

    #[test]
    fn stateful_predicate_single_group_is_speculative_but_shardable() {
        let (_, cs) = classified(
            "struct Packet { int h; };
             int gate = 0;
             int r[8];
             void func(struct Packet p) {
                 if (gate > 0) { r[p.h % 8] = 1; }
             }",
        );
        assert_eq!(cs[1].class, ShardClass::Shardable);
        assert!(cs[1].speculative);
    }

    #[test]
    fn distinct_indexes_pin_co_resident() {
        let (_, cs) = classified(
            "struct Packet { int m; int i; int j; };
             int r[8];
             void func(struct Packet p) {
                 if (p.m == 1) { r[p.i % 8] = 1; } else { r[p.j % 8] = 2; }
             }",
        );
        assert_eq!(cs[0].class, ShardClass::PinnedCoResident);
        assert_eq!(cs[0].culprits.len(), 2);
    }

    #[test]
    fn stateful_predicate_multi_group_pins() {
        let (_, cs) = classified(
            "struct Packet { int i; int j; };
             int gate = 0;
             int r[8];
             void func(struct Packet p) {
                 if (gate > 0) { r[p.i % 8] = 1; }
                 if (gate > 1) { r[p.j % 8] = 2; }
             }",
        );
        assert_eq!(cs[1].class, ShardClass::PinnedStatefulPredicate);
        assert!(!cs[1].culprits.is_empty());
    }

    #[test]
    fn pairs_atoms_pin_co_resident() {
        let (_, cs) = classified(
            "struct Packet { int h; int o; };
             int a[4] = {0};
             int b[4] = {0};
             void func(struct Packet p) {
                 int t = a[p.h % 4] + b[p.h % 4];
                 a[p.h % 4] = t;
                 b[p.h % 4] = t;
                 p.o = t;
             }",
        );
        assert_eq!(cs[0].class, ShardClass::PinnedCoResident);
        assert_eq!(cs[1].class, ShardClass::PinnedCoResident);
    }

    #[test]
    fn diagnostics_carry_spans_and_codes() {
        let (tac, cs) = classified(
            "struct Packet { int h; };
             int ptr = 0;
             int r[8];
             void func(struct Packet p) { r[ptr % 8] = 1; }",
        );
        let ds = diagnostics(&tac, &cs);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::PINNED_STATEFUL_INDEX);
        assert!(
            ds[0].span.line >= 4,
            "span should hit the write: {:?}",
            ds[0].span
        );
    }
}
