//! `mp5-analysis` — static program analysis between TAC and codegen.
//!
//! The MP5 compiler's all-or-nothing guarantee (a program either runs at
//! line rate or does not compile) lives or dies by the quality of its
//! static feedback. This crate analyzes a lowered [`TacProgram`] against
//! a [`Target`] *before* code generation and produces a structured
//! [`AnalysisReport`]:
//!
//! * **Shardability** ([`shard`]): classifies every register array as
//!   `Shardable`, `PinnedStatefulIndex`, `PinnedCoResident`, or
//!   `PinnedStatefulPredicate` (paper §3.3) with the responsible TAC
//!   instructions.
//! * **Hazards / D4** ([`hazard`]): verifies every stateful access's
//!   address is resolvable in the prologue and the phantom plan covers
//!   every stateful stage; flags accesses whose serial order degrades to
//!   array-level serialization.
//! * **Resource pressure** ([`pressure`]): predicts stages, per-stage
//!   operations, and SRAM against the target — simulating codegen's
//!   tail-merge fallback — so oversize programs fail with a precise
//!   explanation.
//!
//! All findings are span-carrying [`Diagnostic`]s with stable `MP5xxx`
//! codes, rendered rustc-style by `mp5-lang`'s diagnostics engine. The
//! `mp5lint` binary drives this over `.mp5` sources; [`analyze_tac`]
//! plugs into `mp5_compiler::CompileOptions::analyzer` so
//! `compile_with_options` can gate compilation on a clean report and
//! attach it to the [`CompiledProgram`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hazard;
pub mod json;
pub mod pressure;
pub mod shard;

use mp5_compiler::schedule::{pipeline_with, ScheduleError};
use mp5_compiler::transform::transform;
use mp5_compiler::{
    AnalysisReport, CompileError, CompileOptions, CompiledProgram, RegAnalysis, Target,
};
use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::{Code, Diagnostic};
use mp5_types::RegId;

pub use mp5_compiler::ShardClass;

/// Analyzes a lowered program against a target.
///
/// This has the [`mp5_compiler::AnalyzerFn`] signature, so it can be
/// plugged straight into [`CompileOptions::analyzer`].
pub fn analyze_tac(tac: &TacProgram, target: &Target) -> AnalysisReport {
    let sched = match pipeline_with(tac, target.max_chain_depth, target.allow_pairs) {
        Ok(s) => s,
        Err(e) => return schedule_failure_report(tac, e),
    };

    // Shardability with evidence.
    let classes = shard::classify(tac, &sched);
    let mut diagnostics = shard::diagnostics(tac, &classes);

    // Ground-truth plans from the transformer, for hazard checks.
    let xf = transform(tac, &sched, target.max_chain_depth);

    // Map each accessed register to its PVSM stage.
    let mut reg_pvsm_stage: Vec<Option<usize>> = vec![None; tac.regs.len()];
    for c in &sched.clusters {
        for &r in &c.regs {
            reg_pvsm_stage[r.index()] = Some(c.stage);
        }
    }
    diagnostics.extend(hazard::plan_hazards(
        tac,
        &xf.resolution.plans,
        xf.resolution.stages,
        &reg_pvsm_stage,
    ));

    // Resource pressure (simulating codegen's merge fallback).
    let p = pressure::estimate(tac, &sched, xf.resolution.stages, target);
    diagnostics.extend(p.diagnostics.iter().cloned());

    // Merge-induced pinning: arrays the codegen fallback will co-locate.
    let mut final_classes = classes;
    for &r in &p.merged_pinned {
        let c = &mut final_classes[r.index()];
        if c.class.is_shardable() {
            c.class = ShardClass::PinnedCoResident;
            diagnostics.push(Diagnostic::warning(
                Code::PINNED_CO_RESIDENT,
                first_access_span(tac, r),
                format!(
                    "register '{}' will be pinned by the stage-merge fallback: \
                     the program exceeds the stage budget, so codegen co-locates \
                     tail stages",
                    tac.regs[r.index()].name
                ),
            ));
        }
    }

    // D4 coverage per register (for the report rows).
    let covered: Vec<bool> = (0..tac.regs.len())
        .map(|ri| {
            let reg = RegId::from(ri);
            match reg_pvsm_stage[ri] {
                None => true, // never accessed: nothing to cover
                Some(stage) => xf.resolution.plans.iter().any(|pl| {
                    pl.reg == reg
                        || (pl.reg == mp5_compiler::program::REG_STAGE_SENTINEL
                            && pl.stage.index() == xf.resolution.stages + stage)
                }),
            }
        })
        .collect();

    let regs = final_classes
        .into_iter()
        .enumerate()
        .map(|(ri, c)| RegAnalysis {
            reg: RegId::from(ri),
            name: tac.regs[ri].name.clone(),
            size: tac.regs[ri].size,
            class: c.class,
            culprits: c.culprits,
            speculative: c.speculative,
            covered: covered[ri],
        })
        .collect();

    sort_diags(&mut diagnostics);
    AnalysisReport {
        regs,
        pressure: Some(p.estimate),
        diagnostics,
    }
}

/// Report for a program that cannot even be scheduled.
fn schedule_failure_report(tac: &TacProgram, e: ScheduleError) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    let mut regs: Vec<RegAnalysis> = tac
        .regs
        .iter()
        .enumerate()
        .map(|(ri, r)| RegAnalysis {
            reg: RegId::from(ri),
            name: r.name.clone(),
            size: r.size,
            class: ShardClass::Shardable,
            culprits: Vec::new(),
            speculative: false,
            covered: false,
        })
        .collect();
    match e {
        ScheduleError::CrossRegisterAtom { regs: names } => {
            let mut span = mp5_lang::Span::default();
            for (ri, r) in tac.regs.iter().enumerate() {
                if names.contains(&r.name) {
                    regs[ri].class = ShardClass::PinnedCoResident;
                    regs[ri].culprits = access_positions(tac, RegId::from(ri));
                    if span == mp5_lang::Span::default() {
                        span = regs[ri]
                            .culprits
                            .first()
                            .map(|&p| tac.span_of(p))
                            .unwrap_or_default();
                    }
                }
            }
            diagnostics.push(Diagnostic::error(
                Code::PAIRS_UNSUPPORTED,
                span,
                format!(
                    "registers '{}' are entangled by one atomic operation, but the \
                     target provides no pairs-class atoms",
                    names.join("', '")
                ),
            ));
        }
        other => diagnostics.push(Diagnostic::error(
            Code::INTERNAL,
            mp5_lang::Span::default(),
            format!("pipelining failed: {other}"),
        )),
    }
    AnalysisReport {
        regs,
        pressure: None,
        diagnostics,
    }
}

fn access_positions(tac: &TacProgram, reg: RegId) -> Vec<usize> {
    tac.instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| match i {
            TacInstr::RegRead { reg: r, .. } | TacInstr::RegWrite { reg: r, .. } => *r == reg,
            TacInstr::Assign { .. } => false,
        })
        .map(|(p, _)| p)
        .collect()
}

fn first_access_span(tac: &TacProgram, reg: RegId) -> mp5_lang::Span {
    access_positions(tac, reg)
        .first()
        .map(|&p| tac.span_of(p))
        .unwrap_or_default()
}

/// Stable order: by source position, then code (diagnostics without a
/// span sort last within their line group).
fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| (d.span.line, d.span.col, d.code));
}

/// Result of analyzing raw source text.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAnalysis {
    /// Frontend diagnostics followed by analysis findings, in source
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// The analysis report; `None` when frontend errors prevented
    /// lowering.
    pub report: Option<AnalysisReport>,
}

impl SourceAnalysis {
    /// Does any diagnostic have error severity?
    pub fn has_errors(&self) -> bool {
        mp5_lang::diag::has_errors(&self.diagnostics)
    }
}

/// Parses, checks, lowers, and analyzes source text, accumulating every
/// diagnostic along the way (the `mp5lint` entry point).
pub fn analyze_source(source: &str, target: &Target) -> SourceAnalysis {
    let (tac, mut diagnostics) = mp5_lang::frontend_diagnostics(source);
    let report = tac.map(|tac| analyze_tac(&tac, target));
    if let Some(r) = &report {
        diagnostics.extend(r.diagnostics.iter().cloned());
    }
    sort_diags(&mut diagnostics);
    SourceAnalysis {
        diagnostics,
        report,
    }
}

/// Compiles with the analyzer in the loop: the report gates compilation
/// (error findings abort with [`CompileError::AnalysisRejected`]) and is
/// attached to the compiled program.
pub fn compile_with_analysis(
    source: &str,
    target: &Target,
) -> Result<CompiledProgram, CompileError> {
    let opts = CompileOptions {
        analyzer: Some(analyze_tac),
        ..CompileOptions::default()
    };
    mp5_compiler::compile_with_options(source, target, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_produces_clean_report() {
        let tac = mp5_lang::frontend(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
        )
        .unwrap();
        let report = analyze_tac(&tac, &Target::default());
        assert!(!report.has_errors());
        assert_eq!(report.shardable_count(), 1);
        assert!(report.regs[0].covered);
        assert!(report.pressure.as_ref().unwrap().fits);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn stateful_index_is_reported_not_fatal() {
        let report = analyze_source(
            "struct Packet { int h; };
             int ptr = 0;
             int r[8];
             void func(struct Packet p) { r[ptr % 8] = 1; }",
            &Target::default(),
        );
        assert!(!report.has_errors(), "pinning is a warning, not an error");
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::PINNED_STATEFUL_INDEX), "{codes:?}");
        assert!(
            codes.contains(&Code::ARRAY_LEVEL_SERIALIZATION),
            "{codes:?}"
        );
        let r = report.report.unwrap();
        assert_eq!(
            r.reg_by_name("r").unwrap().class,
            ShardClass::PinnedStatefulIndex
        );
        assert_eq!(r.reg_by_name("ptr").unwrap().class, ShardClass::Shardable);
    }

    #[test]
    fn frontend_errors_flow_through() {
        let report = analyze_source(
            "struct Packet { int a; };
             void func(struct Packet p) { p.b = 1; }",
            &Target::default(),
        );
        assert!(report.has_errors());
        assert!(report.report.is_none());
        assert_eq!(report.diagnostics[0].code, Code::UNKNOWN_FIELD);
    }

    #[test]
    fn pairs_without_pairs_atoms_is_an_error() {
        let src = "struct Packet { int h; int o; };
             int a[4] = {0};
             int b[4] = {0};
             void func(struct Packet p) {
                 int t = a[p.h % 4] + b[p.h % 4];
                 a[p.h % 4] = t;
                 b[p.h % 4] = t;
                 p.o = t;
             }";
        let no_pairs = Target {
            allow_pairs: false,
            ..Target::default()
        };
        let report = analyze_source(src, &no_pairs);
        assert!(report.has_errors());
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::PAIRS_UNSUPPORTED), "{codes:?}");
        // With pairs atoms it is merely pinned.
        let report = analyze_source(src, &Target::default());
        assert!(!report.has_errors());
    }

    #[test]
    fn analyzer_hook_attaches_report() {
        let prog = compile_with_analysis(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
            &Target::default(),
        )
        .unwrap();
        let report = prog.analysis.as_ref().expect("report attached");
        assert_eq!(report.shardable_count(), 1);
    }

    #[test]
    fn analyzer_hook_rejects_oversize_programs() {
        let err = compile_with_analysis(
            "struct Packet { int h; };
             int big[100000];
             void func(struct Packet p) { big[p.h % 100000] = 1; }",
            &Target::default(),
        )
        .unwrap_err();
        match err {
            CompileError::AnalysisRejected { diagnostics } => {
                assert!(diagnostics.iter().any(|d| d.code == Code::SRAM_OVERFLOW));
            }
            other => panic!("expected AnalysisRejected, got {other:?}"),
        }
        // The same program compiles without the analyzer (codegen does
        // not model SRAM) — exactly the gap the analyzer closes.
        assert!(mp5_compiler::compile(
            "struct Packet { int h; };
             int big[100000];
             void func(struct Packet p) { big[p.h % 100000] = 1; }",
            &Target::default()
        )
        .is_ok());
    }

    #[test]
    fn merge_pinning_is_reflected_in_report() {
        let src = "struct Packet { int h; };
             int a[4];
             int b[4];
             int c[4];
             void func(struct Packet p) {
                 a[p.h % 4] = a[p.h % 4] + 1;
                 b[p.h % 4] = b[p.h % 4] + 1;
                 c[p.h % 4] = c[p.h % 4] + 1;
             }";
        let full = mp5_compiler::compile(src, &Target::default()).unwrap();
        let squeezed = Target {
            max_stages: full.num_stages() - 1,
            ..Target::default()
        };
        let tac = mp5_lang::frontend(src).unwrap();
        let report = analyze_tac(&tac, &squeezed);
        assert!(!report.has_errors());
        let pinned = report
            .regs
            .iter()
            .filter(|r| r.class == ShardClass::PinnedCoResident)
            .count();
        assert!(pinned >= 2, "{:?}", report.regs);
        // Matches what codegen actually does.
        let compiled = mp5_compiler::compile(src, &squeezed).unwrap();
        for (ra, meta) in report.regs.iter().zip(&compiled.regs) {
            assert_eq!(ra.class.is_shardable(), meta.shardable, "{}", meta.name);
        }
    }
}
