//! Resource-pressure estimation against a [`Target`], before codegen.
//!
//! Predicts exactly what `mp5_compiler::codegen::compile_tac` will do —
//! including the §3.3 conservative fallback that merges body stages from
//! the tail of the pipeline when the stage budget is exceeded — so an
//! oversize program fails *here*, with a precise explanation of which
//! budget broke and by how much, instead of deep inside codegen.
//!
//! The SRAM model follows §4.2: each register slot costs the 64-bit
//! value word plus `mp5-asic`'s 30 bits of per-index sharding metadata.

use mp5_compiler::schedule::Schedule;
use mp5_compiler::{PressureEstimate, Target};
use mp5_lang::tac::TacProgram;
use mp5_lang::{Code, Diagnostic};

/// Bits of SRAM one register slot occupies: the 64-bit data word plus
/// the per-index sharding metadata from the paper's ASIC model (§4.2).
pub const SRAM_BITS_PER_SLOT: u64 = 64 + 30;

/// Outcome of the pressure simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pressure {
    /// The numeric estimate (also attached to the analysis report).
    pub estimate: PressureEstimate,
    /// Budget findings (errors when a budget is exceeded).
    pub diagnostics: Vec<Diagnostic>,
    /// Registers that codegen's tail-merge fallback will newly pin
    /// (co-resident in a merged stage).
    pub merged_pinned: Vec<mp5_types::RegId>,
}

/// Simulates codegen's stage assembly and tail-merge fallback, then
/// checks every budget of `target`.
pub fn estimate(
    tac: &TacProgram,
    sched: &Schedule,
    prologue_stages: usize,
    target: &Target,
) -> Pressure {
    // Body stages as codegen builds them: instruction counts and
    // resident registers per stage.
    let num_body = sched.num_stages.max(1);
    let mut ops: Vec<usize> = vec![0; num_body];
    for &s in &sched.stage_of {
        ops[s] += 1;
    }
    let mut regs: Vec<Vec<mp5_types::RegId>> = vec![Vec::new(); num_body];
    for c in &sched.clusters {
        regs[c.stage].extend(c.regs.iter().copied());
    }

    // Tail-merge fallback, exactly as codegen performs it.
    let mut merges = 0usize;
    while prologue_stages + ops.len() > target.max_stages && ops.len() > 1 {
        let tail_ops = ops.pop().expect("len > 1");
        let tail_regs = regs.pop().expect("len > 1");
        *ops.last_mut().expect("len > 1") += tail_ops;
        regs.last_mut().expect("len > 1").extend(tail_regs);
        merges += 1;
    }

    let mut diagnostics = Vec::new();
    let total_stages = prologue_stages + ops.len();
    if total_stages > target.max_stages {
        diagnostics.push(
            Diagnostic::error(
                Code::TOO_MANY_STAGES,
                Default::default(),
                format!(
                    "program needs {total_stages} stages ({prologue_stages} \
                     prologue + {} body) even after merging every body stage; \
                     the target has {}",
                    ops.len(),
                    target.max_stages
                ),
            )
            .with_note(
                "the address-resolution prologue cannot be merged: shrink the \
                 program's dependent state chain or raise Target::max_stages",
            ),
        );
    }

    let peak_stage_ops = ops.iter().copied().max().unwrap_or(0);
    for (si, &n) in ops.iter().enumerate() {
        if n > target.max_ops_per_stage {
            diagnostics.push(Diagnostic::error(
                Code::TOO_MANY_OPS,
                Default::default(),
                format!(
                    "stage {} holds {n} operations, the target allows {} per stage",
                    prologue_stages + si,
                    target.max_ops_per_stage
                ),
            ));
        }
    }

    // SRAM per merged stage.
    let sram_bits: Vec<u64> = tac
        .regs
        .iter()
        .map(|r| r.size as u64 * SRAM_BITS_PER_SLOT)
        .collect();
    for (si, stage_regs) in regs.iter().enumerate() {
        let bits: u64 = stage_regs.iter().map(|r| sram_bits[r.index()]).sum();
        if bits > target.max_sram_bits_per_stage {
            let names: Vec<&str> = stage_regs
                .iter()
                .map(|r| tac.regs[r.index()].name.as_str())
                .collect();
            diagnostics.push(Diagnostic::error(
                Code::SRAM_OVERFLOW,
                Default::default(),
                format!(
                    "stage {} needs {bits} SRAM bits for register(s) '{}' \
                     ({} bits/slot incl. sharding metadata); the target \
                     provides {} bits per stage",
                    prologue_stages + si,
                    names.join("', '"),
                    SRAM_BITS_PER_SLOT,
                    target.max_sram_bits_per_stage
                ),
            ));
        }
    }

    // Registers newly pinned by merging: codegen pins every register in
    // a multi-register stage once any merge happened.
    let mut merged_pinned = Vec::new();
    if merges > 0 {
        for stage_regs in &regs {
            if stage_regs.len() > 1 {
                merged_pinned.extend(stage_regs.iter().copied());
            }
        }
    }

    let fits = diagnostics.is_empty();
    Pressure {
        estimate: PressureEstimate {
            prologue_stages,
            body_stages: ops.len(),
            total_stages,
            max_stages: target.max_stages,
            peak_stage_ops,
            max_ops_per_stage: target.max_ops_per_stage,
            predicted_merges: merges,
            sram_bits,
            max_sram_bits_per_stage: target.max_sram_bits_per_stage,
            fits,
        },
        diagnostics,
        merged_pinned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_compiler::schedule::pipeline_with;
    use mp5_compiler::transform::transform;
    use mp5_lang::frontend;

    fn pressure_of(src: &str, target: &Target) -> Pressure {
        let tac = frontend(src).unwrap();
        let sched = pipeline_with(&tac, target.max_chain_depth, target.allow_pairs).unwrap();
        let xf = transform(&tac, &sched, target.max_chain_depth);
        estimate(&tac, &sched, xf.resolution.stages, target)
    }

    const CHAIN3: &str = "struct Packet { int h; };
         int a[4];
         int b[4];
         int c[4];
         void func(struct Packet p) {
             a[p.h % 4] = a[p.h % 4] + 1;
             b[p.h % 4] = b[p.h % 4] + 1;
             c[p.h % 4] = c[p.h % 4] + 1;
         }";

    #[test]
    fn small_program_fits_default_target() {
        let p = pressure_of(CHAIN3, &Target::default());
        assert!(p.estimate.fits, "{:?}", p.diagnostics);
        assert_eq!(p.estimate.predicted_merges, 0);
        assert!(p.merged_pinned.is_empty());
        assert_eq!(p.estimate.sram_bits, vec![4 * 94; 3]);
    }

    #[test]
    fn merge_prediction_matches_codegen() {
        // Squeeze by one stage: codegen merges the two tail stages and
        // pins their registers; the estimate must predict the same.
        let full = mp5_compiler::compile(CHAIN3, &Target::default()).unwrap();
        let squeezed_target = Target {
            max_stages: full.num_stages() - 1,
            ..Target::default()
        };
        let p = pressure_of(CHAIN3, &squeezed_target);
        assert!(p.estimate.fits, "{:?}", p.diagnostics);
        assert!(p.estimate.predicted_merges >= 1);
        assert!(!p.merged_pinned.is_empty());
        let squeezed = mp5_compiler::compile(CHAIN3, &squeezed_target).unwrap();
        assert_eq!(p.estimate.total_stages, squeezed.num_stages());
        // Exactly the registers codegen pinned are predicted.
        let predicted: Vec<usize> = p.merged_pinned.iter().map(|r| r.index()).collect();
        for (ri, meta) in squeezed.regs.iter().enumerate() {
            assert_eq!(
                !meta.shardable,
                predicted.contains(&ri),
                "reg {ri} pin prediction mismatch"
            );
        }
    }

    #[test]
    fn impossible_stage_budget_is_an_error() {
        let p = pressure_of(
            "struct Packet { int h; };
             int a[4];
             void func(struct Packet p) { a[p.h % 4] = a[p.h % 4] + hash2(p.h, 3); }",
            &Target::tiny(1),
        );
        assert!(!p.estimate.fits);
        assert!(p
            .diagnostics
            .iter()
            .any(|d| d.code == Code::TOO_MANY_STAGES));
    }

    #[test]
    fn ops_budget_is_checked() {
        let mut body = String::new();
        let mut fields = String::new();
        for i in 0..20 {
            body.push_str(&format!("p.f{i} = p.f{i} + 1;\n"));
            fields.push_str(&format!("int f{i};\n"));
        }
        let src = format!(
            "struct Packet {{ {fields} }};
             void func(struct Packet p) {{ {body} }}"
        );
        let p = pressure_of(&src, &Target::tiny(16));
        assert!(p.diagnostics.iter().any(|d| d.code == Code::TOO_MANY_OPS));
    }

    #[test]
    fn sram_budget_is_checked() {
        let p = pressure_of(
            "struct Packet { int h; };
             int big[100000];
             void func(struct Packet p) { big[p.h % 100000] = 1; }",
            &Target::default(),
        );
        assert!(p.diagnostics.iter().any(|d| d.code == Code::SRAM_OVERFLOW));
        assert_eq!(p.estimate.sram_bits, vec![100000 * 94]);
    }
}
