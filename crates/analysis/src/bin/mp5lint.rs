//! `mp5lint` — lint MP5 (Domino-like) programs.
//!
//! Runs the full frontend plus the `mp5-analysis` static analyzer over
//! one or more `.mp5` sources (files or directories) and reports every
//! finding with rustc-style rendering or as JSON.
//!
//! ```text
//! mp5lint [OPTIONS] <PATH>...
//!
//! OPTIONS:
//!   --format=text|json    output format (default: text)
//!   --max-stages=N        override Target::max_stages
//!   --no-pairs            target without pairs-class atoms
//!   --deny-warnings       exit non-zero on warnings too
//!   -q, --quiet           suppress per-file OK lines
//! ```
//!
//! ## Expected-diagnostic annotations
//!
//! A source line may carry `//~ MP5xxx` to declare that a diagnostic
//! with that code is *expected* on that line (or carries no span).
//! Expected diagnostics do not fail the lint; an annotation that never
//! fires is itself an error. This is how the deliberately-warning apps
//! in the corpus and the `fixtures/broken` golden files stay checkable.
//!
//! Exit codes: `0` clean (all findings expected), `1` findings, `2`
//! usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mp5_analysis::analyze_source;
use mp5_analysis::json::{diagnostic_to_json, report_to_json, Json};
use mp5_compiler::Target;
use mp5_lang::diag::render_all;
use mp5_lang::{Code, Diagnostic, Severity};

struct Options {
    json: bool,
    quiet: bool,
    deny_warnings: bool,
    target: Target,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: mp5lint [--format=text|json] [--max-stages=N] [--no-pairs] \
     [--deny-warnings] [-q|--quiet] <path>..."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quiet: false,
        deny_warnings: false,
        target: Target::default(),
        paths: Vec::new(),
    };
    for a in args {
        if let Some(fmt) = a.strip_prefix("--format=") {
            match fmt {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => return Err(format!("unknown format '{other}'")),
            }
        } else if let Some(n) = a.strip_prefix("--max-stages=") {
            opts.target.max_stages = n
                .parse()
                .map_err(|_| format!("invalid --max-stages value '{n}'"))?;
        } else if a == "--no-pairs" {
            opts.target.allow_pairs = false;
        } else if a == "--deny-warnings" {
            opts.deny_warnings = true;
        } else if a == "-q" || a == "--quiet" {
            opts.quiet = true;
        } else if a.starts_with('-') {
            return Err(format!("unknown option '{a}'"));
        } else {
            opts.paths.push(PathBuf::from(a));
        }
    }
    if opts.paths.is_empty() {
        return Err("no input paths".into());
    }
    Ok(opts)
}

/// Collects `.mp5` files from the given paths (directories are walked
/// one level deep plus nested directories, sorted for determinism).
fn collect_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        collect_into(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        return Err("no .mp5 files found".into());
    }
    Ok(files)
}

fn collect_into(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if meta.is_dir() {
        let entries = std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", path.display()))?;
            let p = entry.path();
            if p.is_dir() {
                collect_into(&p, out)?;
            } else if p.extension().is_some_and(|e| e == "mp5") {
                out.push(p);
            }
        }
    } else {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// An `//~ MP5xxx` expectation parsed from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Expectation {
    line: u32,
    code: Code,
}

fn parse_expectations(source: &str) -> Vec<Expectation> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            let tail = &rest[pos + 3..];
            let token = tail.split_whitespace().next().unwrap_or("");
            if let Some(code) = Code::parse(token) {
                out.push(Expectation {
                    line: (i + 1) as u32,
                    code,
                });
            }
            rest = tail;
        }
    }
    out
}

/// Splits diagnostics into (unexpected, unmatched-annotation errors),
/// consuming expectations that match a produced diagnostic. A
/// diagnostic matches an annotation when the codes agree and the
/// diagnostic either has no span (line 0) or sits on the annotated
/// line.
fn apply_expectations(
    diags: Vec<Diagnostic>,
    mut expected: Vec<Expectation>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut unexpected = Vec::new();
    for d in diags {
        let matched = expected
            .iter()
            .position(|e| e.code == d.code && (d.span.line == 0 || d.span.line == e.line));
        match matched {
            Some(i) => {
                expected.remove(i);
            }
            None => unexpected.push(d),
        }
    }
    let unmatched = expected
        .into_iter()
        .map(|e| {
            Diagnostic::error(
                Code::INTERNAL,
                mp5_lang::Span {
                    line: e.line,
                    col: 1,
                },
                format!("expected diagnostic {} did not fire", e.code),
            )
        })
        .collect();
    (unexpected, unmatched)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mp5lint: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let files = match collect_files(&opts.paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mp5lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut any_findings = false;
    let mut json_files = Vec::new();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mp5lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let analysis = analyze_source(&source, &opts.target);
        let expected = parse_expectations(&source);
        let (unexpected, unmatched) = apply_expectations(analysis.diagnostics.clone(), expected);
        let mut shown: Vec<Diagnostic> = unexpected;
        shown.extend(unmatched);
        let threshold = if opts.deny_warnings {
            Severity::Warning
        } else {
            Severity::Error
        };
        let failing = shown.iter().any(|d| d.severity >= threshold);
        any_findings |= failing;

        let name = file.display().to_string();
        if opts.json {
            let mut fields = vec![
                ("file".to_string(), Json::str(name)),
                ("clean".to_string(), Json::Bool(!failing)),
                (
                    "diagnostics".to_string(),
                    Json::Arr(shown.iter().map(diagnostic_to_json).collect()),
                ),
            ];
            match &analysis.report {
                Some(r) => fields.push(("report".to_string(), report_to_json(r))),
                None => fields.push(("report".to_string(), Json::Null)),
            }
            json_files.push(Json::Obj(fields));
        } else if !shown.is_empty() {
            print!("{}", render_all(&shown, &source, &name));
        } else if !opts.quiet {
            let summary = match &analysis.report {
                Some(r) => format!(
                    "{} register(s), {} shardable, {} stage(s)",
                    r.regs.len(),
                    r.shardable_count(),
                    r.pressure
                        .as_ref()
                        .map(|p| p.total_stages)
                        .unwrap_or_default(),
                ),
                None => "no report".to_string(),
            };
            println!("{name}: OK ({summary})");
        }
    }

    if opts.json {
        println!("{}", Json::Arr(json_files).emit());
    }
    if any_findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
