//! Hazard / ordering analysis: the D4 preconditions.
//!
//! MP5's design principle D4 (pre-emptive state-access-order
//! enforcement) freezes the serial order of every stateful access at
//! packet arrival: the address-resolution prologue computes each
//! access's `(register, index)` and the phantom plan reserves the
//! access's slot before the packet enters the pipelines. That only
//! works when
//!
//! 1. every stateful access is *covered* by an access plan (a phantom is
//!    generated for its stage), and
//! 2. accesses whose address cannot be resolved pre-emptively degrade to
//!    *array-level* serialization — correct, but every packet serializes
//!    through the array's stage, so we surface it as a warning.
//!
//! This module checks both, on the planned accesses before codegen
//! ([`plan_hazards`]) and on a finished [`CompiledProgram`]
//! ([`verify_coverage`], usable as a post-codegen audit).

use mp5_compiler::program::REG_STAGE_SENTINEL;
use mp5_compiler::{AccessPlan, CompiledProgram, IdxPlan};
use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::{Code, Diagnostic};
use mp5_types::RegId;

/// Diagnoses planned accesses (pre-codegen): array-level serialization
/// warnings plus uncovered-stage errors.
///
/// `reg_pvsm_stage` maps each register to the PVSM stage its plans live
/// in (`plan.stage` values are physical ids = prologue + PVSM stage).
pub fn plan_hazards(
    tac: &TacProgram,
    plans: &[AccessPlan],
    prologue_stages: usize,
    reg_pvsm_stage: &[Option<usize>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // (1) Array-level serialization warnings.
    for plan in plans {
        if matches!(plan.idx, IdxPlan::ArrayLevel) {
            let (name, span) = if plan.reg == REG_STAGE_SENTINEL {
                // Stage-level plan: name every register in that stage.
                let names: Vec<&str> = reg_pvsm_stage
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.map(|s| s + prologue_stages == plan.stage.index()) == Some(true)
                    })
                    .map(|(ri, _)| tac.regs[ri].name.as_str())
                    .collect();
                (names.join("', '"), first_access_span(tac, None))
            } else {
                (
                    tac.regs[plan.reg.index()].name.clone(),
                    first_access_span(tac, Some(plan.reg)),
                )
            };
            diags.push(Diagnostic::warning(
                Code::ARRAY_LEVEL_SERIALIZATION,
                span,
                format!(
                    "access to register '{name}' cannot be address-resolved in the \
                     prologue: every packet serializes through its stage \
                     (array-level phantom)"
                ),
            ));
        }
    }

    // (2) D4 coverage: every register with a stateful access needs a
    // plan (its own, or a stage-level plan at its stage).
    for (ri, pvsm_stage) in reg_pvsm_stage.iter().enumerate() {
        let Some(pvsm_stage) = pvsm_stage else {
            continue;
        };
        let reg = RegId::from(ri);
        let covered = plans.iter().any(|p| {
            p.reg == reg
                || (p.reg == REG_STAGE_SENTINEL && p.stage.index() == prologue_stages + pvsm_stage)
        });
        if !covered {
            diags.push(Diagnostic::error(
                Code::UNCOVERED_STATEFUL_STAGE,
                first_access_span(tac, Some(reg)),
                format!(
                    "stateful stage of register '{}' is not covered by the phantom \
                     plan: its serial access order cannot be frozen (D4 violated)",
                    tac.regs[ri].name
                ),
            ));
        }
    }

    diags
}

/// Audits a finished [`CompiledProgram`]: every register placed in a
/// stage must be covered by a resolution plan (own plan, or a
/// stage-level plan for its stage). Returns one `MP5302` error per
/// uncovered register. A correct compiler output yields no findings;
/// this exists so that hand-built or mutated programs (and future
/// compiler changes) can be audited.
pub fn verify_coverage(prog: &CompiledProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (ri, meta) in prog.regs.iter().enumerate() {
        let reg = RegId::from(ri);
        // Only registers actually accessed by the TAC need phantoms.
        let accessed = prog.tac.instrs.iter().any(|i| match i {
            TacInstr::RegRead { reg: r, .. } | TacInstr::RegWrite { reg: r, .. } => *r == reg,
            TacInstr::Assign { .. } => false,
        });
        if !accessed {
            continue;
        }
        let covered = prog
            .resolution
            .plans
            .iter()
            .any(|p| p.reg == reg || (p.reg == REG_STAGE_SENTINEL && p.stage == meta.stage));
        if !covered {
            diags.push(Diagnostic::error(
                Code::UNCOVERED_STATEFUL_STAGE,
                first_access_span(&prog.tac, Some(reg)),
                format!(
                    "stateful stage {} (register '{}') has no access plan: serial \
                     order cannot be frozen pre-emptively (D4 violated)",
                    meta.stage.index(),
                    meta.name
                ),
            ));
        }
    }
    diags
}

/// Span of the first stateful access to `reg` (or to any register when
/// `None`), for diagnostic placement.
fn first_access_span(tac: &TacProgram, reg: Option<RegId>) -> mp5_lang::Span {
    tac.instrs
        .iter()
        .position(|i| match i {
            TacInstr::RegRead { reg: r, .. } | TacInstr::RegWrite { reg: r, .. } => {
                reg.map(|want| *r == want).unwrap_or(true)
            }
            TacInstr::Assign { .. } => false,
        })
        .map(|p| tac.span_of(p))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_compiler::{compile, Target};

    #[test]
    fn compiled_programs_are_covered() {
        let prog = compile(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
            &Target::default(),
        )
        .unwrap();
        assert!(verify_coverage(&prog).is_empty());
    }

    #[test]
    fn removing_a_plan_is_detected() {
        let mut prog = compile(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
            &Target::default(),
        )
        .unwrap();
        prog.resolution.plans.clear();
        let ds = verify_coverage(&prog);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::UNCOVERED_STATEFUL_STAGE);
        assert!(
            ds[0].span.line > 0,
            "span points at the access: {:?}",
            ds[0].span
        );
    }

    #[test]
    fn unaccessed_register_needs_no_plan() {
        let mut prog = compile(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = 1; }",
            &Target::default(),
        )
        .unwrap();
        // Strip the access from the TAC: the register is now unused, so
        // a missing plan is fine.
        prog.tac
            .instrs
            .retain(|i| matches!(i, TacInstr::Assign { .. }));
        prog.resolution.plans.clear();
        assert!(verify_coverage(&prog).is_empty());
    }
}
