//! A fixed-capacity ring buffer with stable element addresses.
//!
//! The paper implements each per-pipeline FIFO "as an independent ring
//! buffer" (§3.2, citing the classic circular buffer). Beyond the usual
//! push/pop, MP5's `insert` operation replaces a *phantom* entry in the
//! middle of the queue with its data packet. To support that, every
//! pushed element gets a monotonically increasing **sequence number** that
//! remains a valid address for the element until it is popped, regardless
//! of how the head moves — exactly how a hardware ring addresses slots by
//! (wrapped) write pointer.

/// A circular buffer whose elements are addressable by the sequence
/// number assigned at push time.
///
/// Capacity may be `None`, meaning unbounded. The simulator uses
/// unbounded mode for the paper's "dynamically adapt FIFO sizes to ensure
/// no packet loss" sensitivity experiments (§4.3.1), and bounded mode
/// (default 8 entries, §4.2) for drop-behaviour experiments.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: std::collections::VecDeque<T>,
    /// Sequence number of the element currently at the head.
    head_seq: u64,
    /// Maximum number of elements; `None` = unbounded.
    capacity: Option<usize>,
    /// High-water mark of occupancy, for the paper's max-queue-depth
    /// statistics (§4.4 reports 11/8/7/7 for the four real applications).
    max_occupancy: usize,
}

impl<T> RingBuffer<T> {
    /// Creates a ring with the given capacity (`None` = unbounded).
    pub fn new(capacity: Option<usize>) -> Self {
        RingBuffer {
            buf: std::collections::VecDeque::with_capacity(capacity.unwrap_or(16)),
            head_seq: 0,
            capacity,
            max_occupancy: 0,
        }
    }

    /// Number of elements currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no elements are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if a push would be rejected.
    #[inline]
    pub fn is_full(&self) -> bool {
        match self.capacity {
            Some(c) => self.buf.len() >= c,
            None => false,
        }
    }

    /// The configured capacity (`None` = unbounded).
    #[inline]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Highest occupancy ever observed.
    #[inline]
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Appends an element at the tail, returning its stable sequence
    /// number, or `Err(value)` if the ring is full.
    pub fn push_back(&mut self, value: T) -> Result<u64, T> {
        if self.is_full() {
            return Err(value);
        }
        let seq = self.head_seq + self.buf.len() as u64;
        self.buf.push_back(value);
        self.max_occupancy = self.max_occupancy.max(self.buf.len());
        Ok(seq)
    }

    /// Removes and returns the head element.
    pub fn pop_front(&mut self) -> Option<T> {
        let v = self.buf.pop_front();
        if v.is_some() {
            self.head_seq += 1;
        }
        v
    }

    /// Borrows the head element.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Sequence number of the current head element (meaningful only if
    /// non-empty).
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Borrows the element with the given sequence number, if still
    /// queued.
    pub fn get(&self, seq: u64) -> Option<&T> {
        let off = seq.checked_sub(self.head_seq)? as usize;
        self.buf.get(off)
    }

    /// Mutably borrows the element with the given sequence number, if
    /// still queued. This is the primitive behind the logical FIFO's
    /// `insert` (replace-phantom-with-data) operation.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        let off = seq.checked_sub(self.head_seq)? as usize;
        self.buf.get_mut(off)
    }

    /// Iterates over queued elements from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Rebuilds a ring from checkpointed parts: the queued elements in
    /// head-to-tail order, the head element's sequence number, and the
    /// statistics high-water mark. Reconstructing `head_seq` exactly is
    /// what keeps previously-issued [`FifoAddr`](crate::FifoAddr)-style
    /// sequence addresses valid after a restore.
    pub fn from_parts(
        items: Vec<T>,
        head_seq: u64,
        capacity: Option<usize>,
        max_occupancy: usize,
    ) -> Self {
        if let Some(c) = capacity {
            assert!(items.len() <= c, "restored ring exceeds its capacity");
        }
        let buf: std::collections::VecDeque<T> = items.into();
        RingBuffer {
            max_occupancy: max_occupancy.max(buf.len()),
            buf,
            head_seq,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut r = RingBuffer::new(Some(4));
        for i in 0..4 {
            r.push_back(i).unwrap();
        }
        assert!(r.is_full());
        assert_eq!(r.push_back(99), Err(99));
        for i in 0..4 {
            assert_eq!(r.pop_front(), Some(i));
        }
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn sequence_numbers_are_stable_across_pops() {
        let mut r = RingBuffer::new(Some(8));
        let s0 = r.push_back("a").unwrap();
        let s1 = r.push_back("b").unwrap();
        let s2 = r.push_back("c").unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        r.pop_front();
        // "b" is still addressable by its original seq after the head moved.
        assert_eq!(r.get(s1), Some(&"b"));
        assert_eq!(r.get(s2), Some(&"c"));
        assert_eq!(r.get(s0), None, "popped element must not be addressable");
        *r.get_mut(s2).unwrap() = "C";
        assert_eq!(r.get(s2), Some(&"C"));
    }

    #[test]
    fn seq_wraps_logically_after_many_ops() {
        let mut r = RingBuffer::new(Some(2));
        for i in 0..1000u64 {
            let s = r.push_back(i).unwrap();
            assert_eq!(s, i);
            assert_eq!(r.pop_front(), Some(i));
        }
        assert_eq!(r.head_seq(), 1000);
    }

    #[test]
    fn unbounded_never_full() {
        let mut r = RingBuffer::new(None);
        for i in 0..10_000 {
            r.push_back(i).unwrap();
        }
        assert!(!r.is_full());
        assert_eq!(r.len(), 10_000);
        assert_eq!(r.max_occupancy(), 10_000);
    }

    #[test]
    fn from_parts_restores_sequence_addresses() {
        let mut r = RingBuffer::new(Some(4));
        for i in 0..4 {
            r.push_back(i).unwrap();
        }
        r.pop_front();
        r.pop_front();
        let items: Vec<i32> = r.iter().copied().collect();
        let restored = RingBuffer::from_parts(items, r.head_seq(), r.capacity(), r.max_occupancy());
        assert_eq!(restored.head_seq(), 2);
        assert_eq!(restored.get(2), Some(&2));
        assert_eq!(restored.get(3), Some(&3));
        assert_eq!(restored.get(0), None);
        assert_eq!(restored.max_occupancy(), 4);
        // New pushes continue the original sequence numbering.
        let mut restored = restored;
        assert_eq!(restored.push_back(9).unwrap(), 4);
    }

    #[test]
    fn max_occupancy_tracks_high_water() {
        let mut r = RingBuffer::new(Some(8));
        r.push_back(1).unwrap();
        r.push_back(2).unwrap();
        r.pop_front();
        r.pop_front();
        r.push_back(3).unwrap();
        assert_eq!(r.max_occupancy(), 2);
    }
}
