//! The inter-stage crossbar (design principle D3).
//!
//! MP5 places a `k×k` crossbar between consecutive pipeline stages so a
//! packet leaving stage `i` of any pipeline can enter stage `i+1` of any
//! pipeline. Output contention (several inputs targeting the same output
//! pipeline in one cycle) is absorbed by the destination stage's `k`
//! per-pipeline FIFOs — that is exactly why the paper provisions `k`
//! FIFOs per stage (§3.2) — so the crossbar itself never arbitrates or
//! drops. This model therefore routes unconditionally and records
//! per-cycle usage statistics; the analytic ASIC model in `mp5-asic`
//! charges its silicon cost.

use mp5_trace::{EventKind, TraceCtx, TraceSink};
use mp5_types::PipelineId;

/// A `k×k` crossbar between two consecutive stages.
#[derive(Debug, Clone)]
pub struct Crossbar {
    k: usize,
    /// Count of packets routed per (input, output) pair, flattened
    /// row-major. Diagonal entries are straight-through traffic.
    routed: Vec<u64>,
    /// Number of cycles in which at least one non-diagonal route was
    /// used (i.e. real steering happened).
    steer_cycles: u64,
    /// Inputs seen so far in the cycle being accumulated.
    cycle_had_steer: bool,
}

impl Crossbar {
    /// Creates a crossbar for `k` pipelines.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Crossbar {
            k,
            routed: vec![0; k * k],
            steer_cycles: 0,
            cycle_had_steer: false,
        }
    }

    /// Number of pipeline ports on each side.
    pub fn ports(&self) -> usize {
        self.k
    }

    /// Routes one packet from input pipeline `from` to output pipeline
    /// `to`, returning `to` (the crossbar is non-blocking).
    pub fn route(&mut self, from: PipelineId, to: PipelineId) -> PipelineId {
        debug_assert!(from.index() < self.k && to.index() < self.k);
        self.routed[from.index() * self.k + to.index()] += 1;
        if from != to {
            self.cycle_had_steer = true;
        }
        to
    }

    /// Traced [`Crossbar::route`]: emits a `steer` event for
    /// off-diagonal routes (real inter-pipeline steering, D3).
    pub fn route_traced<S: TraceSink>(
        &mut self,
        from: PipelineId,
        to: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> PipelineId {
        if S::ENABLED && from != to {
            ctx.emit(
                sink,
                EventKind::Steer {
                    from: from.0,
                    to: to.0,
                },
            );
        }
        self.route(from, to)
    }

    /// Marks the end of a simulation cycle for statistics purposes.
    pub fn end_cycle(&mut self) {
        if self.cycle_had_steer {
            self.steer_cycles += 1;
            self.cycle_had_steer = false;
        }
    }

    /// Total packets routed from `from` to `to`.
    pub fn routed(&self, from: PipelineId, to: PipelineId) -> u64 {
        self.routed[from.index() * self.k + to.index()]
    }

    /// Total packets that crossed pipelines (off-diagonal routes).
    pub fn total_steered(&self) -> u64 {
        let mut sum = 0;
        for i in 0..self.k {
            for j in 0..self.k {
                if i != j {
                    sum += self.routed[i * self.k + j];
                }
            }
        }
        sum
    }

    /// Total packets that stayed in their pipeline (diagonal routes).
    pub fn total_straight(&self) -> u64 {
        (0..self.k).map(|i| self.routed[i * self.k + i]).sum()
    }

    /// Cycles in which at least one packet was steered.
    pub fn steer_cycles(&self) -> u64 {
        self.steer_cycles
    }

    /// Exports the routing statistics for a checkpoint: the flattened
    /// row-major `k×k` route counts and the steer-cycle total. Only
    /// valid at a cycle boundary (after [`Self::end_cycle`]), when the
    /// in-cycle `cycle_had_steer` accumulator is clear.
    pub fn snapshot(&self) -> (Vec<u64>, u64) {
        debug_assert!(
            !self.cycle_had_steer,
            "crossbar snapshot mid-cycle: call end_cycle() first"
        );
        (self.routed.clone(), self.steer_cycles)
    }

    /// Rebuilds a crossbar from checkpointed statistics.
    pub fn from_parts(k: usize, routed: Vec<u64>, steer_cycles: u64) -> Self {
        assert!(
            k > 0 && routed.len() == k * k,
            "crossbar matrix must be k×k"
        );
        Crossbar {
            k,
            routed,
            steer_cycles,
            cycle_had_steer: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_counted() {
        let mut xb = Crossbar::new(4);
        xb.route(PipelineId(0), PipelineId(2));
        xb.route(PipelineId(0), PipelineId(2));
        xb.route(PipelineId(1), PipelineId(1));
        assert_eq!(xb.routed(PipelineId(0), PipelineId(2)), 2);
        assert_eq!(xb.total_steered(), 2);
        assert_eq!(xb.total_straight(), 1);
    }

    #[test]
    fn steer_cycles_counts_cycles_not_packets() {
        let mut xb = Crossbar::new(2);
        xb.route(PipelineId(0), PipelineId(1));
        xb.route(PipelineId(1), PipelineId(0));
        xb.end_cycle();
        xb.route(PipelineId(0), PipelineId(0));
        xb.end_cycle();
        assert_eq!(xb.steer_cycles(), 1);
    }
}
