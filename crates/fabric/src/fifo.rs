//! The per-stage logical FIFO (paper §3.2).
//!
//! Each MP5 stage has `k` physical FIFOs (one per pipeline) at its input,
//! which "logically operate as a single FIFO" supporting three
//! operations:
//!
//! 1. `push(pkt, fifo_id)` — append a data or phantom packet to the tail
//!    of FIFO `fifo_id`, timestamping it; drop if full. Phantom locations
//!    are recorded in a directory indexed by the packet's id.
//! 2. `insert(pkt, addr, fifo_id)` — replace a queued phantom with its
//!    data packet at the address found in the directory; drop the data
//!    packet if the directory has no entry (its phantom was dropped).
//! 3. `pop()` — among the `k` FIFO heads, pick the entry with the
//!    smallest timestamp. A data head is dequeued and processed; a
//!    phantom head *blocks* every later packet until its data packet
//!    arrives — this is how D4 freezes the serial processing order.
//!
//! Two extensions beyond the paper's literal text, both needed to run the
//! paper's own scenarios:
//!
//! * **Stale entries.** When a predicate cannot be resolved preemptively,
//!   MP5 emits *speculative* phantoms for both branches and later ignores
//!   the false branch "resulting in a nominal performance penalty of one
//!   wasted clock cycle" (§3.3). We model this by converting the phantom
//!   to a [`Entry::Stale`] with `free = false`: when it reaches the head
//!   it consumes one pop cycle and vanishes. Separately, when a data
//!   packet is *dropped* upstream, its remaining phantoms are cancelled
//!   with `free = true` (removed without consuming service) so a lost
//!   packet cannot deadlock a queue forever.
//! * **Timestamps are caller-supplied [`OrderKey`]s** rather than wall
//!   clocks, so the same structure serves MP5 (keys = original arrival
//!   order, enforcing C1) and the no-D4 ablation (keys = queue entry
//!   time, which is what permits C1 violations).

use std::collections::{HashMap, VecDeque};

use mp5_trace::{EventKind, TraceCtx, TraceSink};
use mp5_types::{PacketId, PipelineId, RegId};

use crate::ring::RingBuffer;

/// Converts a fabric [`PhantomKey`] into the trace event schema's key.
fn tk(key: PhantomKey) -> mp5_trace::Key {
    mp5_trace::Key {
        pkt: key.pkt,
        reg: key.reg,
        index: key.index,
    }
}

/// Identifies the phantom (and hence queue placeholder) for one state
/// access by one packet.
///
/// The paper's directory is "indexed by packet's id"; we additionally key
/// by `(reg, index)` because a packet whose predicate could not be
/// resolved preemptively may own *two* speculative phantoms in the same
/// stage, one per branch (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhantomKey {
    /// The data packet this phantom stands in for.
    pub pkt: PacketId,
    /// The register array of the access.
    pub reg: RegId,
    /// The resolved register index of the access.
    pub index: u32,
}

/// The total order enforced by `pop()`.
///
/// For MP5 this is the packet's switch entry order `(arrival byte-time,
/// ingress port)` — unique per packet because a port delivers at most one
/// packet per byte-time. For the no-D4 ablation it is `(queue entry
/// cycle, source lane)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderKey(pub u64, pub u64);

/// Stable address of a queued entry: `(lane, sequence number)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoAddr {
    /// Which of the `k` physical FIFOs.
    pub lane: PipelineId,
    /// Sequence number within that lane's ring buffer.
    pub seq: u64,
}

/// One queued element.
#[derive(Debug, Clone)]
pub enum Entry<T> {
    /// A placeholder for a data packet that has not yet arrived.
    Phantom {
        /// Directory key.
        key: PhantomKey,
        /// Ordering timestamp.
        ts: OrderKey,
    },
    /// An actual data packet, ready for stateful processing.
    Data {
        /// The queued payload.
        item: T,
        /// Ordering timestamp (inherited from the phantom when inserted).
        ts: OrderKey,
    },
    /// A cancelled placeholder. `free` entries are reclaimed without
    /// consuming service; non-free entries (speculative false branches)
    /// cost one pop cycle, per §3.3.
    Stale {
        /// Ordering timestamp.
        ts: OrderKey,
        /// Whether reclamation is free (true) or costs a cycle (false).
        free: bool,
    },
}

impl<T> Entry<T> {
    /// The ordering timestamp of this entry.
    pub fn ts(&self) -> OrderKey {
        match self {
            Entry::Phantom { ts, .. } | Entry::Data { ts, .. } | Entry::Stale { ts, .. } => *ts,
        }
    }
}

/// Error returned by `push` when the target lane is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError;

/// Result of a [`LogicalFifo::pop`] attempt.
#[derive(Debug)]
pub enum PopOutcome<T> {
    /// All lanes empty: nothing to do this cycle.
    Empty,
    /// A data packet was dequeued for processing.
    Data(T),
    /// The globally-oldest entry is a phantom: every later packet is
    /// blocked until the corresponding data packet arrives.
    BlockedOnPhantom(PhantomKey),
    /// A speculative-false phantom was reclaimed, wasting this cycle
    /// (paper §3.3's "one wasted clock cycle").
    ConsumedStale,
}

/// Sentinel in [`LogicalFifo::lane_pos`]: the lane holds no entries and
/// is absent from the packed occupied-lane list.
const NOT_OCCUPIED: u32 = u32::MAX;

/// Checkpointed contents of one lane of a [`LogicalFifo`].
#[derive(Debug, Clone)]
pub struct LaneParts<T> {
    /// Sequence number of the lane's head element (restores the stable
    /// addresses the directory and any outstanding [`FifoAddr`]s use).
    pub head_seq: u64,
    /// Statistics high-water mark of the lane's ring.
    pub max_occupancy: usize,
    /// Queued entries, head to tail.
    pub entries: Vec<Entry<T>>,
}

/// Checkpointed contents of a whole [`LogicalFifo`]. Only explicit
/// state is captured: the phantom directory and the packed occupancy
/// index are derived views and are rebuilt by
/// [`LogicalFifo::from_parts`].
#[derive(Debug, Clone)]
pub struct FifoParts<T> {
    /// Per-lane ring capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// The `k` lanes, in pipeline order.
    pub lanes: Vec<LaneParts<T>>,
    /// The timestamp-sorted recovery queue (data entries only).
    pub recovered: Vec<Entry<T>>,
    /// High-water mark of the recovery queue.
    pub max_recovered: usize,
    /// Statistics counters.
    pub stats: FifoStats,
    /// Service-scan mode (see [`LogicalFifo::set_reference_service`]).
    pub indexed: bool,
}

/// Statistics counters for one logical FIFO.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoStats {
    /// Phantoms dropped because a lane was full at push time.
    pub phantom_drops: u64,
    /// Data packets dropped because their phantom was missing.
    pub data_drops_no_phantom: u64,
    /// Data packets dropped because a lane was full at push time
    /// (no-phantom operating modes only).
    pub data_drops_full: u64,
    /// Pop cycles wasted on speculative-false phantoms.
    pub stale_cycles: u64,
    /// Pop cycles spent blocked behind a phantom.
    pub blocked_cycles: u64,
    /// Data packets recovered into order after their phantom was lost
    /// to an injected fault (`mp5-faults`).
    pub recovered: u64,
}

/// The bank of `k` per-pipeline ring buffers operating as one FIFO.
///
/// Besides the `k` lanes, the FIFO carries a small *recovery queue*
/// (`recovered`): a timestamp-sorted side list of **data** entries
/// whose phantoms were lost to an injected fault. `pop()` treats the
/// recovery head as one more candidate in the global minimum-timestamp
/// comparison, so a recovered packet re-enters the serial order at
/// exactly the position its phantom would have held — preserving C1.
/// The directory only ever points at phantoms inside lanes, so the
/// side list can never invalidate a `FifoAddr`.
#[derive(Debug, Clone)]
pub struct LogicalFifo<T> {
    lanes: Vec<RingBuffer<Entry<T>>>,
    directory: HashMap<PhantomKey, FifoAddr>,
    recovered: VecDeque<Entry<T>>,
    max_recovered: usize,
    stats: FifoStats,
    /// Total queued entries across lanes and the recovery queue,
    /// maintained on every push/pop/drain so `len()`/`is_empty()` are
    /// O(1). Per-cycle schedulers probe emptiness for every
    /// `(pipeline, stage)` queue, so this counter is load-bearing for
    /// the simulation rate, not a convenience.
    total: usize,
    /// Dense occupancy index: the lanes holding at least one entry, as
    /// a packed list (arbitrary order). Service scans (`pop`,
    /// `oldest_ts`, `peek_oldest`) walk only this list instead of all
    /// `k` lane heads, so heavy-queue workloads with few active lanes
    /// stop paying the linear scan (and the free-stale drain fuses into
    /// the same pass). Maintained incrementally on every empty ↔
    /// non-empty lane transition; debug builds assert it against a full
    /// lane scan in `len()`.
    occupied: Vec<u32>,
    /// Per-lane position in `occupied`, or [`NOT_OCCUPIED`].
    lane_pos: Vec<u32>,
    /// When `false`, service scans walk every lane head (the paper's
    /// literal `pop()` and this FIFO's behavior before the occupancy
    /// index existed). The scalar reference interpreter runs in this
    /// mode: its job is to be the obviously-correct oracle the batch
    /// path is differentially tested against, so it keeps the naive
    /// scan while the index (still maintained and debug-asserted
    /// either way) accelerates the production batch path.
    indexed: bool,
}

impl<T> LogicalFifo<T> {
    /// Creates a logical FIFO with `k` lanes of the given per-lane
    /// capacity (`None` = unbounded, the paper's adaptive mode).
    pub fn new(lanes: usize, capacity: Option<usize>) -> Self {
        assert!(lanes > 0, "a logical FIFO needs at least one lane");
        LogicalFifo {
            lanes: (0..lanes).map(|_| RingBuffer::new(capacity)).collect(),
            directory: HashMap::new(),
            recovered: VecDeque::new(),
            max_recovered: 0,
            stats: FifoStats::default(),
            total: 0,
            occupied: Vec::with_capacity(lanes),
            lane_pos: vec![NOT_OCCUPIED; lanes],
            indexed: true,
        }
    }

    /// Switches service scans to the pre-index reference behavior
    /// (walk every lane head, `reference = true`) or back to the
    /// occupancy-index fast path (`false`, the default). Semantics are
    /// identical — both pick the same minimum-timestamp head — only the
    /// scan cost differs. The occupancy index keeps being maintained in
    /// reference mode, so debug builds continuously cross-check it
    /// against the very scan the fast path replaces.
    pub fn set_reference_service(&mut self, reference: bool) {
        self.indexed = !reference;
    }

    /// Number of lanes (`k`).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total queued entries across lanes (plus the recovery queue).
    pub fn len(&self) -> usize {
        debug_assert_eq!(
            self.total,
            self.lanes.iter().map(|l| l.len()).sum::<usize>() + self.recovered.len(),
            "occupancy counter out of sync"
        );
        #[cfg(debug_assertions)]
        self.check_occupancy_index();
        self.total
    }

    /// Verifies the dense occupancy index against a full lane scan:
    /// every non-empty lane appears exactly once at its recorded
    /// position, every empty lane is absent. Debug builds run this from
    /// `len()` on every emptiness probe; the property suite calls it
    /// directly after each random operation.
    #[doc(hidden)]
    pub fn check_occupancy_index(&self) {
        assert_eq!(self.lane_pos.len(), self.lanes.len());
        let mut indexed = 0usize;
        for (l, lane) in self.lanes.iter().enumerate() {
            let pos = self.lane_pos[l];
            if lane.is_empty() {
                assert_eq!(pos, NOT_OCCUPIED, "empty lane {l} still indexed");
            } else {
                indexed += 1;
                assert!(
                    pos != NOT_OCCUPIED
                        && (pos as usize) < self.occupied.len()
                        && self.occupied[pos as usize] as usize == l,
                    "occupied lane {l} missing or misplaced in the index"
                );
            }
        }
        assert_eq!(
            self.occupied.len(),
            indexed,
            "occupancy index holds stale lanes"
        );
    }

    /// Adds `lane` to the occupancy index if it is not already present.
    #[inline]
    fn mark_occupied(&mut self, lane: usize) {
        if self.lane_pos[lane] == NOT_OCCUPIED {
            self.lane_pos[lane] = self.occupied.len() as u32;
            self.occupied.push(lane as u32);
        }
    }

    /// Removes `occupied[pos]` from the index (its lane went empty).
    #[inline]
    fn unmark_at(&mut self, pos: usize) {
        let lane = self.occupied.swap_remove(pos);
        self.lane_pos[lane as usize] = NOT_OCCUPIED;
        if let Some(&moved) = self.occupied.get(pos) {
            self.lane_pos[moved as usize] = pos as u32;
        }
    }

    /// Drops `lane` from the index if its last entry was just popped.
    #[inline]
    fn lane_emptied(&mut self, lane: usize) {
        if self.lanes[lane].front().is_none() {
            let pos = self.lane_pos[lane];
            debug_assert_ne!(pos, NOT_OCCUPIED, "emptied lane was never indexed");
            self.unmark_at(pos as usize);
        }
    }

    /// True if every lane (and the recovery queue) is empty. O(1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of total occupancy, approximated as the sum of
    /// per-lane high-water marks (exact when lanes fill together).
    pub fn max_occupancy(&self) -> usize {
        self.lanes.iter().map(|l| l.max_occupancy()).sum::<usize>() + self.max_recovered
    }

    /// Statistics counters.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// `push(pkt, fifo_id)`: appends a phantom placeholder to lane
    /// `lane`, recording its address in the directory. On a full lane the
    /// phantom is dropped (recorded in [`FifoStats::phantom_drops`]) and
    /// the eventual data packet will be dropped at `insert` time, exactly
    /// the drop cascade described in §3.4.
    pub fn push_phantom(
        &mut self,
        key: PhantomKey,
        ts: OrderKey,
        lane: PipelineId,
    ) -> Result<FifoAddr, PushError> {
        let l = &mut self.lanes[lane.index()];
        match l.push_back(Entry::Phantom { key, ts }) {
            Ok(seq) => {
                self.total += 1;
                self.mark_occupied(lane.index());
                let addr = FifoAddr { lane, seq };
                self.directory.insert(key, addr);
                Ok(addr)
            }
            Err(_) => {
                self.stats.phantom_drops += 1;
                Err(PushError)
            }
        }
    }

    /// `push(pkt, fifo_id)` for data packets. Used by operating modes
    /// without phantoms (the no-D4 ablation and the recirculation
    /// baseline), where data packets queue directly in arrival-at-stage
    /// order.
    pub fn push_data(&mut self, item: T, ts: OrderKey, lane: PipelineId) -> Result<FifoAddr, T> {
        let l = &mut self.lanes[lane.index()];
        match l.push_back(Entry::Data { item, ts }) {
            Ok(seq) => {
                self.total += 1;
                self.mark_occupied(lane.index());
                Ok(FifoAddr { lane, seq })
            }
            Err(Entry::Data { item, .. }) => {
                self.stats.data_drops_full += 1;
                Err(item)
            }
            Err(_) => unreachable!("pushed entry kind cannot change"),
        }
    }

    /// `insert(pkt, addr, fifo_id)`: replaces the queued phantom for
    /// `key` with the data packet, which inherits the phantom's
    /// timestamp (and hence its place in the global order). Returns
    /// `Err(item)` if the directory has no entry — the phantom was
    /// dropped, so the data packet must be dropped too.
    pub fn insert_data(&mut self, key: PhantomKey, item: T) -> Result<FifoAddr, T> {
        let Some(addr) = self.directory.remove(&key) else {
            self.stats.data_drops_no_phantom += 1;
            return Err(item);
        };
        let slot = self.lanes[addr.lane.index()]
            .get_mut(addr.seq)
            .expect("directory address must point at a live slot");
        debug_assert!(
            matches!(slot, Entry::Phantom { key: k, .. } if *k == key),
            "directory address must point at this key's phantom"
        );
        let ts = slot.ts();
        *slot = Entry::Data { item, ts };
        Ok(addr)
    }

    /// Recovers a data packet whose phantom was lost to an injected
    /// fault: the entry joins the timestamp-sorted recovery queue and
    /// competes in `pop()`'s global minimum-timestamp comparison as if
    /// its phantom had been delivered — same serial position, so C1 is
    /// preserved. The recovery queue is unbounded by design: recovery
    /// must never itself drop a packet.
    pub fn push_recovered(&mut self, item: T, ts: OrderKey) {
        let pos = self.recovered.partition_point(|e| e.ts() <= ts);
        self.recovered.insert(pos, Entry::Data { item, ts });
        self.total += 1;
        self.max_recovered = self.max_recovered.max(self.recovered.len());
        self.stats.recovered += 1;
    }

    /// Timestamp of the recovery-queue head, if any.
    fn recovered_head_ts(&self) -> Option<OrderKey> {
        self.recovered.front().map(|e| e.ts())
    }

    /// True if the recovery queue head is globally oldest (it wins the
    /// pop this cycle). Ties cannot occur: order keys are unique per
    /// packet and a packet is never both recovered and lane-queued.
    fn recovered_wins(&self, lane: Option<usize>) -> bool {
        match (self.recovered_head_ts(), lane) {
            (Some(_), None) => true,
            (Some(rts), Some(l)) => {
                let lts = self.lanes[l].front().map(|e| e.ts());
                lts.is_none_or(|lts| rts < lts)
            }
            (None, _) => false,
        }
    }

    /// Whether a live phantom exists for `key`.
    pub fn has_phantom(&self, key: PhantomKey) -> bool {
        self.directory.contains_key(&key)
    }

    /// Cancels the phantom for `key`, if present. `free` cancellations
    /// (upstream packet drop) are reclaimed without consuming service;
    /// non-free ones (speculative false branch, §3.3) cost one pop cycle
    /// when they reach the head.
    pub fn cancel(&mut self, key: PhantomKey, free: bool) -> bool {
        let Some(addr) = self.directory.remove(&key) else {
            return false;
        };
        let slot = self.lanes[addr.lane.index()]
            .get_mut(addr.seq)
            .expect("directory address must point at a live slot");
        let ts = slot.ts();
        *slot = Entry::Stale { ts, free };
        true
    }

    /// Fused service scan: reclaims any `free` stale entries sitting at
    /// the heads of occupied lanes, drops lanes that drained empty from
    /// the index, and returns the lane whose head has the globally
    /// smallest timestamp. Walks only the packed occupied-lane list, so
    /// the cost is proportional to the number of *non-empty* lanes
    /// rather than `k` — the win on heavy-queue configs where traffic
    /// concentrates on few lanes. The minimum is taken over the explicit
    /// `(ts, lane)` key so the result is independent of the packed
    /// list's arbitrary order (ties are impossible anyway: order keys
    /// are unique per packet and one packet's entries share a lane).
    fn service_head(&mut self) -> Option<usize> {
        let mut best: Option<(OrderKey, usize)> = None;
        let mut i = 0;
        while i < self.occupied.len() {
            let lane = self.occupied[i] as usize;
            while matches!(
                self.lanes[lane].front(),
                Some(Entry::Stale { free: true, .. })
            ) {
                self.lanes[lane].pop_front();
                self.total -= 1;
            }
            match self.lanes[lane].front() {
                None => {
                    // Drained empty: swap-remove without advancing, so
                    // the lane swapped into slot `i` is visited next.
                    self.unmark_at(i);
                }
                Some(e) => {
                    let key = (e.ts(), lane);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                    i += 1;
                }
            }
        }
        best.map(|(_, lane)| lane)
    }

    /// Reference service scan: the pre-index two-pass implementation,
    /// kept verbatim for the scalar reference path — reclaim `free`
    /// stale entries at every lane head (`drain_free_stale`), then pick
    /// the minimum-timestamp head over **all** `k` lanes, the way the
    /// paper's `pop()` reads. Keeps the index in sync for lanes it
    /// drains empty, so either scan can follow the other.
    fn service_scan(&mut self) -> Option<usize> {
        for lane in 0..self.lanes.len() {
            let mut drained = false;
            while matches!(
                self.lanes[lane].front(),
                Some(Entry::Stale { free: true, .. })
            ) {
                self.lanes[lane].pop_front();
                self.total -= 1;
                drained = true;
            }
            if drained && self.lanes[lane].front().is_none() {
                let pos = self.lane_pos[lane];
                debug_assert_ne!(pos, NOT_OCCUPIED, "drained lane was never indexed");
                self.unmark_at(pos as usize);
            }
        }
        let mut best: Option<(OrderKey, usize)> = None;
        for (lane, buf) in self.lanes.iter().enumerate() {
            if let Some(e) = buf.front() {
                let key = (e.ts(), lane);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, lane)| lane)
    }

    /// The mode-appropriate service scan (see
    /// [`Self::set_reference_service`]).
    #[inline]
    fn service(&mut self) -> Option<usize> {
        if self.indexed {
            self.service_head()
        } else {
            self.service_scan()
        }
    }

    /// `pop()`: examines the `k` lane heads and picks the entry with the
    /// smallest timestamp.
    ///
    /// * Data head → dequeued and returned for processing.
    /// * Phantom head → nothing is dequeued; the whole logical FIFO is
    ///   blocked this cycle ([`PopOutcome::BlockedOnPhantom`]).
    /// * Non-free stale head → reclaimed, consuming the cycle.
    pub fn pop(&mut self) -> PopOutcome<T> {
        let lane = self.service();
        if self.recovered_wins(lane) {
            return match self.recovered.pop_front() {
                Some(Entry::Data { item, .. }) => {
                    self.total -= 1;
                    PopOutcome::Data(item)
                }
                _ => unreachable!("recovery queue holds only data entries"),
            };
        }
        let Some(lane) = lane else {
            return PopOutcome::Empty;
        };
        match self.lanes[lane].front().expect("lane non-empty") {
            Entry::Data { .. } => match self.lanes[lane].pop_front() {
                Some(Entry::Data { item, .. }) => {
                    self.total -= 1;
                    self.lane_emptied(lane);
                    PopOutcome::Data(item)
                }
                _ => unreachable!("head was data"),
            },
            Entry::Phantom { key, .. } => {
                let key = *key;
                self.stats.blocked_cycles += 1;
                PopOutcome::BlockedOnPhantom(key)
            }
            Entry::Stale { free: false, .. } => {
                self.lanes[lane].pop_front();
                self.total -= 1;
                self.stats.stale_cycles += 1;
                self.lane_emptied(lane);
                PopOutcome::ConsumedStale
            }
            Entry::Stale { free: true, .. } => {
                unreachable!("free stale entries were drained")
            }
        }
    }

    /// Timestamp of the globally-oldest *data* or *phantom* entry, if
    /// any — used by schedulers to decide starvation.
    pub fn oldest_ts(&mut self) -> Option<OrderKey> {
        let lane_ts = self
            .service()
            .map(|l| self.lanes[l].front().expect("non-empty").ts());
        match (lane_ts, self.recovered_head_ts()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Peeks the globally-oldest entry (after reclaiming free stales)
    /// without consuming anything. Used by per-index schedulers (the
    /// ideal-MP5 baseline) to compare heads across many queues.
    pub fn peek_oldest(&mut self) -> Option<&Entry<T>> {
        let lane = self.service();
        if self.recovered_wins(lane) {
            return self.recovered.front();
        }
        self.lanes[lane?].front()
    }

    /// True if the next `pop()` would make progress (serve data or
    /// reclaim a costly stale) rather than block or find nothing.
    pub fn pop_would_progress(&mut self) -> bool {
        matches!(
            self.peek_oldest(),
            Some(Entry::Data { .. }) | Some(Entry::Stale { free: false, .. })
        )
    }

    /// Iterates over all queued entries (diagnostics / end-of-run
    /// accounting).
    pub fn iter_entries(&self) -> impl Iterator<Item = &Entry<T>> {
        self.lanes
            .iter()
            .flat_map(|l| l.iter())
            .chain(self.recovered.iter())
    }

    /// Exports the FIFO's explicit state for a checkpoint. The phantom
    /// directory and the occupancy index are derived from the lane
    /// contents, so they are not exported; [`Self::from_parts`] rebuilds
    /// them.
    pub fn snapshot_parts(&self) -> FifoParts<T>
    where
        T: Clone,
    {
        FifoParts {
            capacity: self.lanes[0].capacity(),
            lanes: self
                .lanes
                .iter()
                .map(|l| LaneParts {
                    head_seq: l.head_seq(),
                    max_occupancy: l.max_occupancy(),
                    entries: l.iter().cloned().collect(),
                })
                .collect(),
            recovered: self.recovered.iter().cloned().collect(),
            max_recovered: self.max_recovered,
            stats: self.stats,
            indexed: self.indexed,
        }
    }

    /// Rebuilds a FIFO from checkpointed parts, reconstructing the
    /// phantom directory (every queued `Phantom` entry at its stable
    /// `(lane, seq)` address) and the packed occupancy index.
    pub fn from_parts(parts: FifoParts<T>) -> Self {
        assert!(!parts.lanes.is_empty(), "a logical FIFO needs lanes");
        let k = parts.lanes.len();
        let mut directory = HashMap::new();
        let mut total = parts.recovered.len();
        let mut occupied = Vec::with_capacity(k);
        let mut lane_pos = vec![NOT_OCCUPIED; k];
        let mut lanes = Vec::with_capacity(k);
        for (l, lp) in parts.lanes.into_iter().enumerate() {
            total += lp.entries.len();
            if !lp.entries.is_empty() {
                lane_pos[l] = occupied.len() as u32;
                occupied.push(l as u32);
            }
            for (pos, e) in lp.entries.iter().enumerate() {
                if let Entry::Phantom { key, .. } = e {
                    let addr = FifoAddr {
                        lane: PipelineId::from(l),
                        seq: lp.head_seq + pos as u64,
                    };
                    let prev = directory.insert(*key, addr);
                    assert!(prev.is_none(), "duplicate phantom key in checkpoint");
                }
            }
            lanes.push(RingBuffer::from_parts(
                lp.entries,
                lp.head_seq,
                parts.capacity,
                lp.max_occupancy,
            ));
        }
        let max_recovered = parts.max_recovered.max(parts.recovered.len());
        LogicalFifo {
            lanes,
            directory,
            recovered: parts.recovered.into(),
            max_recovered,
            stats: parts.stats,
            total,
            occupied,
            lane_pos,
            indexed: parts.indexed,
        }
    }

    // ------------------------------------------------------------------
    // Traced variants: identical semantics, but each outcome is emitted
    // into the sink. With `NopSink` the emission guard constant-folds,
    // so these compile to exactly the untraced operations.
    // ------------------------------------------------------------------

    /// Traced [`LogicalFifo::push_phantom`]: emits `ph_enq` on success,
    /// `ph_drop` when the lane is full.
    pub fn push_phantom_traced<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<FifoAddr, PushError> {
        let r = self.push_phantom(key, ts, lane);
        if S::ENABLED {
            match r {
                Ok(_) => ctx.emit(sink, EventKind::PhantomEnq { key: tk(key) }),
                Err(_) => ctx.emit(sink, EventKind::PhantomDropFull { key: tk(key) }),
            }
        }
        r
    }

    /// Traced [`LogicalFifo::push_data`]: emits `data_enq` on success,
    /// `data_enq_drop` when the lane is full. The caller supplies the
    /// packet id because `T` is opaque to the fabric.
    pub fn push_data_traced<S: TraceSink>(
        &mut self,
        pkt: PacketId,
        item: T,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<FifoAddr, T> {
        let r = self.push_data(item, ts, lane);
        if S::ENABLED {
            match &r {
                Ok(_) => ctx.emit(sink, EventKind::DataEnq { pkt }),
                Err(_) => ctx.emit(sink, EventKind::DataEnqDropFull { pkt }),
            }
        }
        r
    }

    /// Traced [`LogicalFifo::insert_data`]: emits `data_match` when the
    /// phantom is replaced, `data_orphan` when the directory has no
    /// entry (the §3.4 drop cascade).
    pub fn insert_data_traced<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        item: T,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<FifoAddr, T> {
        let r = self.insert_data(key, item);
        if S::ENABLED {
            match &r {
                Ok(_) => ctx.emit(sink, EventKind::DataMatch { key: tk(key) }),
                Err(_) => ctx.emit(sink, EventKind::DataOrphan { key: tk(key) }),
            }
        }
        r
    }

    /// Traced [`LogicalFifo::push_recovered`]: emits `ph_recovered`
    /// (the C1-preserving fault-recovery path).
    pub fn push_recovered_traced<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        item: T,
        ts: OrderKey,
        sink: &mut S,
        ctx: TraceCtx,
    ) {
        self.push_recovered(item, ts);
        if S::ENABLED {
            ctx.emit(sink, EventKind::PhantomRecovered { key: tk(key) });
        }
    }

    /// Traced [`LogicalFifo::cancel`]: emits `ph_cancel` only when a
    /// live phantom was actually cancelled.
    pub fn cancel_traced<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        free: bool,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> bool {
        let found = self.cancel(key, free);
        if S::ENABLED && found {
            ctx.emit(sink, EventKind::PhantomCancel { key: tk(key), free });
        }
        found
    }

    /// Traced [`LogicalFifo::pop`]: emits `pop_data` / `pop_stale` /
    /// `pop_blocked` per outcome (nothing for an empty queue). The
    /// caller supplies a packet-id projection because `T` is opaque.
    pub fn pop_traced<S: TraceSink>(
        &mut self,
        sink: &mut S,
        ctx: TraceCtx,
        pkt_of: impl FnOnce(&T) -> PacketId,
    ) -> PopOutcome<T> {
        let out = self.pop();
        if S::ENABLED {
            match &out {
                PopOutcome::Data(item) => ctx.emit(sink, EventKind::PopData { pkt: pkt_of(item) }),
                PopOutcome::ConsumedStale => ctx.emit(sink, EventKind::PopStale),
                PopOutcome::BlockedOnPhantom(key) => {
                    ctx.emit(sink, EventKind::PopBlocked { key: tk(*key) })
                }
                PopOutcome::Empty => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64) -> PhantomKey {
        PhantomKey {
            pkt: PacketId(p),
            reg: RegId(0),
            index: 0,
        }
    }

    #[test]
    fn pop_on_empty() {
        let mut f: LogicalFifo<u32> = LogicalFifo::new(2, Some(4));
        assert!(matches!(f.pop(), PopOutcome::Empty));
    }

    #[test]
    fn phantom_blocks_later_data() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(2, Some(4));
        // Phantom for packet 0 (older) into lane 0; data for packet 1
        // (younger) into lane 1.
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_data("pkt1", OrderKey(1, 0), PipelineId(1)).unwrap();
        // pkt1 must be blocked behind pkt0's phantom.
        assert!(matches!(f.pop(), PopOutcome::BlockedOnPhantom(k) if k == key(0)));
        // Once pkt0's data arrives it is served first, in arrival order.
        f.insert_data(key(0), "pkt0").unwrap();
        assert!(matches!(f.pop(), PopOutcome::Data("pkt0")));
        assert!(matches!(f.pop(), PopOutcome::Data("pkt1")));
        assert!(matches!(f.pop(), PopOutcome::Empty));
        assert_eq!(f.stats().blocked_cycles, 1);
    }

    #[test]
    fn younger_phantom_does_not_block_older_data() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(2, Some(4));
        f.push_data("old", OrderKey(0, 0), PipelineId(0)).unwrap();
        f.push_phantom(key(9), OrderKey(5, 0), PipelineId(1))
            .unwrap();
        assert!(matches!(f.pop(), PopOutcome::Data("old")));
    }

    #[test]
    fn insert_inherits_phantom_timestamp() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(2, Some(8));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_data("mid", OrderKey(1, 0), PipelineId(1)).unwrap();
        // Data for packet 0 arrives late but replaces its phantom, so it
        // is still served before "mid".
        f.insert_data(key(0), "pkt0").unwrap();
        assert!(matches!(f.pop(), PopOutcome::Data("pkt0")));
        assert!(matches!(f.pop(), PopOutcome::Data("mid")));
    }

    #[test]
    fn insert_without_phantom_drops() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(2));
        assert_eq!(f.insert_data(key(3), "orphan"), Err("orphan"));
        assert_eq!(f.stats().data_drops_no_phantom, 1);
    }

    #[test]
    fn full_lane_drops_phantom_then_cascades() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(1));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        assert!(f
            .push_phantom(key(1), OrderKey(1, 0), PipelineId(0))
            .is_err());
        assert_eq!(f.stats().phantom_drops, 1);
        // The data packet for the dropped phantom is dropped too.
        assert!(f.insert_data(key(1), "late").is_err());
        assert_eq!(f.stats().data_drops_no_phantom, 1);
    }

    #[test]
    fn speculative_false_costs_one_cycle() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(4));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_data("next", OrderKey(1, 0), PipelineId(0)).unwrap();
        assert!(f.cancel(key(0), false));
        // First pop wastes a cycle reclaiming the speculative phantom...
        assert!(matches!(f.pop(), PopOutcome::ConsumedStale));
        // ...then the next packet is served.
        assert!(matches!(f.pop(), PopOutcome::Data("next")));
        assert_eq!(f.stats().stale_cycles, 1);
    }

    #[test]
    fn free_cancel_costs_nothing() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(4));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_data("next", OrderKey(1, 0), PipelineId(0)).unwrap();
        assert!(f.cancel(key(0), true));
        assert!(matches!(f.pop(), PopOutcome::Data("next")));
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(4));
        assert!(!f.cancel(key(42), true));
    }

    #[test]
    fn pop_respects_global_order_across_lanes() {
        let mut f: LogicalFifo<u64> = LogicalFifo::new(4, Some(8));
        // Interleave pushes across lanes with shuffled timestamps.
        let order = [(3u64, 2usize), (0, 0), (2, 1), (1, 3), (5, 0), (4, 2)];
        for &(ts, lane) in &order {
            f.push_data(ts, OrderKey(ts, 0), PipelineId::from(lane))
                .unwrap();
        }
        let mut out = Vec::new();
        while let PopOutcome::Data(v) = f.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn traced_ops_emit_matching_events() {
        use mp5_trace::{EventKind as EK, MemSink, TraceCtx};
        let mut sink = MemSink::new();
        let ctx = TraceCtx::new(7, 1, 2);
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(1));
        f.push_phantom_traced(key(0), OrderKey(0, 0), PipelineId(0), &mut sink, ctx)
            .unwrap();
        // Full lane: second phantom drops.
        assert!(f
            .push_phantom_traced(key(1), OrderKey(1, 0), PipelineId(0), &mut sink, ctx)
            .is_err());
        // Blocked pop, then match, then served pop.
        let _ = f.pop_traced(&mut sink, ctx, |_| PacketId(99));
        f.insert_data_traced(key(0), "d0", &mut sink, ctx).unwrap();
        assert!(f.insert_data_traced(key(1), "d1", &mut sink, ctx).is_err());
        let _ = f.pop_traced(&mut sink, ctx, |_| PacketId(0));
        // Cancel of an unknown key emits nothing.
        assert!(!f.cancel_traced(key(5), true, &mut sink, ctx));
        let tags: Vec<&str> = sink.events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "ph_enq",
                "ph_drop",
                "pop_blocked",
                "data_match",
                "data_orphan",
                "pop_data"
            ]
        );
        assert!(sink
            .events
            .iter()
            .all(|e| e.cycle == 7 && e.pipeline == 1 && e.stage == 2));
        assert!(matches!(
            sink.events[5].kind,
            EK::PopData { pkt } if pkt == PacketId(0)
        ));
    }

    #[test]
    fn recovered_entry_rejoins_serial_order() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(2, Some(8));
        f.push_data("a", OrderKey(0, 0), PipelineId(0)).unwrap();
        f.push_data("c", OrderKey(2, 0), PipelineId(1)).unwrap();
        // "b"'s phantom was lost to a fault; it recovers with its
        // original order key and must be served between "a" and "c".
        f.push_recovered("b", OrderKey(1, 0));
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert!(matches!(f.pop(), PopOutcome::Data("a")));
        assert!(matches!(f.pop(), PopOutcome::Data("b")));
        assert!(matches!(f.pop(), PopOutcome::Data("c")));
        assert!(matches!(f.pop(), PopOutcome::Empty));
        assert_eq!(f.stats().recovered, 1);
    }

    #[test]
    fn older_phantom_still_blocks_recovered_entry() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(8));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_recovered("young", OrderKey(1, 0));
        // D4's order freeze applies to recovered entries too.
        assert!(matches!(f.pop(), PopOutcome::BlockedOnPhantom(k) if k == key(0)));
        f.insert_data(key(0), "old").unwrap();
        assert!(matches!(f.pop(), PopOutcome::Data("old")));
        assert!(matches!(f.pop(), PopOutcome::Data("young")));
    }

    #[test]
    fn recovered_head_wins_when_oldest() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(8));
        f.push_data("lane", OrderKey(5, 0), PipelineId(0)).unwrap();
        f.push_recovered("rec2", OrderKey(2, 0));
        f.push_recovered("rec1", OrderKey(1, 0)); // sorted insert
        assert_eq!(f.oldest_ts(), Some(OrderKey(1, 0)));
        assert!(f.pop_would_progress());
        assert!(matches!(f.pop(), PopOutcome::Data("rec1")));
        assert!(matches!(f.pop(), PopOutcome::Data("rec2")));
        assert!(matches!(f.pop(), PopOutcome::Data("lane")));
    }

    #[test]
    fn traced_recovery_emits_ph_recovered() {
        use mp5_trace::{MemSink, TraceCtx};
        let mut sink = MemSink::new();
        let ctx = TraceCtx::new(3, 0, 1);
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(4));
        f.push_recovered_traced(key(7), "d", OrderKey(4, 0), &mut sink, ctx);
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.events[0].kind.tag(), "ph_recovered");
        let _ = f.pop_traced(&mut sink, ctx, |_| PacketId(7));
        assert_eq!(sink.events[1].kind.tag(), "pop_data");
    }

    #[test]
    fn snapshot_round_trip_preserves_service_order_and_directory() {
        let mut f: LogicalFifo<&str> = LogicalFifo::new(3, Some(8));
        f.push_phantom(key(0), OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_data("b", OrderKey(1, 0), PipelineId(1)).unwrap();
        f.push_data("d", OrderKey(3, 0), PipelineId(2)).unwrap();
        f.push_recovered("c", OrderKey(2, 0));
        f.cancel(key(0), false);
        f.push_phantom(key(9), OrderKey(4, 0), PipelineId(1))
            .unwrap();
        // Advance lane 1's head so sequence numbers diverge from zero.
        assert!(matches!(f.pop(), PopOutcome::ConsumedStale));
        assert!(matches!(f.pop(), PopOutcome::Data("b")));

        let mut g = LogicalFifo::from_parts(f.snapshot_parts());
        g.check_occupancy_index();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.stats().stale_cycles, 1);
        assert!(g.has_phantom(key(9)));
        // The restored directory addresses must be live: insert works.
        g.insert_data(key(9), "e").unwrap();
        assert!(matches!(g.pop(), PopOutcome::Data("c")));
        assert!(matches!(g.pop(), PopOutcome::Data("d")));
        assert!(matches!(g.pop(), PopOutcome::Data("e")));
        assert!(matches!(g.pop(), PopOutcome::Empty));
    }

    #[test]
    fn two_speculative_phantoms_same_packet_same_stage() {
        // A packet with an unresolvable predicate owns one phantom per
        // branch; both must be addressable independently.
        let mut f: LogicalFifo<&str> = LogicalFifo::new(1, Some(4));
        let k_then = PhantomKey {
            pkt: PacketId(0),
            reg: RegId(0),
            index: 1,
        };
        let k_else = PhantomKey {
            pkt: PacketId(0),
            reg: RegId(0),
            index: 2,
        };
        f.push_phantom(k_then, OrderKey(0, 0), PipelineId(0))
            .unwrap();
        f.push_phantom(k_else, OrderKey(0, 1), PipelineId(0))
            .unwrap();
        assert!(f.has_phantom(k_then) && f.has_phantom(k_else));
        // Predicate resolves to the then-branch: else phantom cancelled.
        f.cancel(k_else, false);
        f.insert_data(k_then, "data").unwrap();
        assert!(matches!(f.pop(), PopOutcome::Data("data")));
        assert!(matches!(f.pop(), PopOutcome::ConsumedStale));
    }
}
