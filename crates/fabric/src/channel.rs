//! The phantom channel (runtime Invariant 1).
//!
//! MP5 carries phantom packets over "a separate physical channel
//! (reserved only for phantom packets)" so that a phantom generated in
//! stage `i` and destined to stage `j > i` "will not be queued in any
//! stage `k` such that `i < k < j`". The consequence is that phantoms for
//! a given state arrive in exactly the order they were generated, which
//! D4 relies on.
//!
//! We model the channel as a pipelined bus: a phantom injected at stage
//! `i` advances one stage per cycle and is delivered to its destination
//! stage's logical FIFO when it gets there. Order preservation follows
//! from the lock-step advance: phantoms injected earlier are always at
//! least as far along as phantoms injected later. Phantoms are 48 bits
//! (§4.2) against 512-bit data headers, so the channel is provisioned to
//! carry all phantoms generated in a cycle; `max_in_flight` tracks the
//! worst-case width actually used, which `mp5-asic` translates to wiring
//! cost.

use mp5_types::StageId;

/// A phantom packet in flight on the channel, carrying payload `T`
/// (opaque to the channel).
#[derive(Debug, Clone)]
struct InFlight<T> {
    payload: T,
    at: u16,
    dest: u16,
}

/// The dedicated phantom interconnect of one MP5 switch.
#[derive(Debug, Clone)]
pub struct PhantomChannel<T> {
    flights: Vec<InFlight<T>>,
    /// Recycled backing store for the still-in-flight survivors of an
    /// advance: swapped with `flights` each cycle so the per-cycle
    /// advance allocates nothing in steady state.
    spare: Vec<InFlight<T>>,
    stages: u16,
    max_in_flight: usize,
    delivered: u64,
}

impl<T> PhantomChannel<T> {
    /// Creates a channel spanning `stages` pipeline stages.
    pub fn new(stages: usize) -> Self {
        PhantomChannel {
            flights: Vec::new(),
            spare: Vec::new(),
            stages: stages as u16,
            max_in_flight: 0,
            delivered: 0,
        }
    }

    /// Injects a phantom at stage `from`, destined to stage `dest`.
    ///
    /// `dest` must be ahead of `from` — the channel, like the pipelines,
    /// is strictly feed-forward.
    pub fn inject(&mut self, payload: T, from: StageId, dest: StageId) {
        assert!(
            from.0 < dest.0 && dest.0 <= self.stages,
            "phantom channel is feed-forward: {from} -> {dest} invalid"
        );
        self.flights.push(InFlight {
            payload,
            at: from.0,
            dest: dest.0,
        });
        self.max_in_flight = self.max_in_flight.max(self.flights.len());
    }

    /// Advances every in-flight phantom one stage and returns those that
    /// reached their destination this cycle, **in injection order** (the
    /// order guarantee of Invariant 1).
    pub fn advance(&mut self) -> Vec<(T, StageId)> {
        let mut arrived = Vec::new();
        self.advance_into(&mut arrived);
        arrived
    }

    /// [`PhantomChannel::advance`] into a caller-owned buffer
    /// (`arrived` is cleared first): the per-cycle form, allocation-free
    /// in steady state on both the survivor and the delivery side.
    pub fn advance_into(&mut self, arrived: &mut Vec<(T, StageId)>) {
        arrived.clear();
        let mut remaining = std::mem::take(&mut self.spare);
        debug_assert!(remaining.is_empty());
        for mut f in self.flights.drain(..) {
            f.at += 1;
            if f.at == f.dest {
                arrived.push((f.payload, StageId(f.dest)));
            } else {
                remaining.push(f);
            }
        }
        // The drained `flights` buffer becomes next cycle's spare.
        self.spare = std::mem::replace(&mut self.flights, remaining);
        self.delivered += arrived.len() as u64;
    }

    /// Number of phantoms currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Worst-case number of phantoms simultaneously in flight (channel
    /// width provisioning input for the ASIC model).
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Total phantoms delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pipeline stages the channel spans.
    pub fn stages(&self) -> usize {
        self.stages as usize
    }

    /// Exports the in-flight phantoms for a checkpoint, in injection
    /// order, as `(payload, at_stage, dest_stage)` triples.
    pub fn snapshot_flights(&self) -> Vec<(T, u16, u16)>
    where
        T: Clone,
    {
        self.flights
            .iter()
            .map(|f| (f.payload.clone(), f.at, f.dest))
            .collect()
    }

    /// Rebuilds a channel from checkpointed parts. Flight order must be
    /// the injection order exported by [`Self::snapshot_flights`] — the
    /// Invariant 1 delivery-order guarantee depends on it.
    pub fn from_parts(
        stages: usize,
        flights: Vec<(T, u16, u16)>,
        max_in_flight: usize,
        delivered: u64,
    ) -> Self {
        let flights: Vec<InFlight<T>> = flights
            .into_iter()
            .map(|(payload, at, dest)| {
                assert!(
                    at < dest && dest as usize <= stages,
                    "restored phantom flight violates feed-forward bounds"
                );
                InFlight { payload, at, dest }
            })
            .collect();
        let max_in_flight = max_in_flight.max(flights.len());
        PhantomChannel {
            flights,
            spare: Vec::new(),
            stages: stages as u16,
            max_in_flight,
            delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_takes_dest_minus_from_cycles() {
        let mut ch: PhantomChannel<u32> = PhantomChannel::new(8);
        ch.inject(7, StageId(1), StageId(4));
        assert!(ch.advance().is_empty()); // at stage 2
        assert!(ch.advance().is_empty()); // at stage 3
        let arrived = ch.advance(); // at stage 4: delivered
        assert_eq!(arrived.len(), 1);
        assert_eq!(arrived[0], (7, StageId(4)));
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn delivery_preserves_injection_order() {
        let mut ch: PhantomChannel<u32> = PhantomChannel::new(8);
        // Same source and dest, injected in order 1, 2, 3 on successive
        // calls within one cycle.
        ch.inject(1, StageId(0), StageId(3));
        ch.inject(2, StageId(0), StageId(3));
        ch.inject(3, StageId(0), StageId(3));
        ch.advance();
        ch.advance();
        let arrived: Vec<u32> = ch.advance().into_iter().map(|(p, _)| p).collect();
        assert_eq!(arrived, vec![1, 2, 3]);
    }

    #[test]
    fn earlier_injection_never_overtaken() {
        let mut ch: PhantomChannel<&str> = PhantomChannel::new(8);
        ch.inject("early", StageId(0), StageId(5));
        ch.advance(); // early now at 1
        ch.inject("late", StageId(0), StageId(5));
        // early must arrive strictly before late.
        let mut order = Vec::new();
        for _ in 0..6 {
            for (p, _) in ch.advance() {
                order.push(p);
            }
        }
        assert_eq!(order, vec!["early", "late"]);
    }

    #[test]
    #[should_panic(expected = "feed-forward")]
    fn backward_injection_panics() {
        let mut ch: PhantomChannel<u32> = PhantomChannel::new(8);
        ch.inject(0, StageId(5), StageId(2));
    }

    #[test]
    fn snapshot_round_trip_preserves_delivery_schedule() {
        let mut ch: PhantomChannel<u32> = PhantomChannel::new(8);
        ch.inject(1, StageId(0), StageId(4));
        ch.inject(2, StageId(0), StageId(2));
        ch.advance(); // 2 not yet delivered; both at stage 1
        let mut restored = PhantomChannel::from_parts(
            ch.stages(),
            ch.snapshot_flights(),
            ch.max_in_flight(),
            ch.delivered(),
        );
        // Both channels must deliver identically from here on.
        for _ in 0..4 {
            let a = ch.advance();
            let b = restored.advance();
            assert_eq!(a, b);
        }
        assert_eq!(ch.delivered(), restored.delivered());
        assert_eq!(ch.max_in_flight(), restored.max_in_flight());
    }

    #[test]
    fn max_in_flight_tracks_width() {
        let mut ch: PhantomChannel<u32> = PhantomChannel::new(16);
        for i in 0..10 {
            ch.inject(i, StageId(0), StageId(15));
        }
        ch.advance();
        assert_eq!(ch.max_in_flight(), 10);
    }
}
