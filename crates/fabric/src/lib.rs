//! Hardware substrate models for MP5.
//!
//! This crate models the *new hardware components* MP5 adds to a Banzai
//! pipeline (paper §3.2 and Figure 4):
//!
//! * [`ring::RingBuffer`] — a fixed-capacity circular buffer, the physical
//!   implementation of each per-pipeline FIFO.
//! * [`fifo::LogicalFifo`] — the per-stage bank of `k` ring buffers that
//!   logically operates as a single FIFO supporting the paper's three
//!   operations `push(pkt, fifo_id)`, `insert(pkt, addr, fifo_id)` and
//!   `pop()`, together with the phantom directory indexed by packet id.
//! * [`xbar::Crossbar`] — the `k×k` crossbar between consecutive stages
//!   that implements inter-pipeline packet steering (design principle D3).
//! * [`channel::PhantomChannel`] — the physically separate interconnect
//!   that carries phantom packets hop-by-hop without ever queuing them
//!   before their destination stage (runtime Invariant 1).
//!
//! All components are deterministic, and bounded-mode operation performs
//! no allocation on the hot path once constructed, in keeping with the
//! smoltcp-style guidance for production networking Rust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fifo;
pub mod ring;
pub mod xbar;

pub use channel::PhantomChannel;
pub use fifo::{
    Entry, FifoAddr, FifoParts, FifoStats, LaneParts, LogicalFifo, OrderKey, PhantomKey,
    PopOutcome, PushError,
};
pub use ring::RingBuffer;
pub use xbar::Crossbar;

#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}

    /// The parallel cycle engine in `mp5-core` moves per-pipeline
    /// fabric state into worker threads; every fabric component must
    /// therefore stay `Send` (no `Rc`/`RefCell` may creep in).
    #[test]
    fn fabric_components_are_send() {
        assert_send::<RingBuffer<u64>>();
        assert_send::<LogicalFifo<u64>>();
        assert_send::<Crossbar>();
        assert_send::<PhantomChannel<u64>>();
        assert_send::<Entry<u64>>();
        assert_send::<PopOutcome<u64>>();
        assert_send::<(OrderKey, PhantomKey, FifoAddr)>();
    }
}
