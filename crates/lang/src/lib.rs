//! A Domino-like packet-processing language frontend.
//!
//! MP5 is programmed in Domino (Sivaraman et al., SIGCOMM 2016), a C-like
//! DSL for writing stateful packet-processing programs against a single
//! logical pipeline. This crate implements a faithful Domino subset:
//!
//! ```c
//! struct Packet {
//!     int h1;
//!     int h2;
//!     int val;
//!     int mux;
//! };
//!
//! int reg1[4] = {2, 4, 8, 16};   // register arrays: persistent state
//! int count = 0;                 // scalar register (size-1 array)
//!
//! void func(struct Packet p) {
//!     int t = p.h1 % 4;                       // local variable
//!     p.val = (p.mux == 1) ? reg1[t] : 0;     // ternary, register read
//!     reg1[t] = reg1[t] + 1;                  // register update
//!     if (p.h2 > 5) { count = count + 1; }    // predicated update
//! }
//! ```
//!
//! Supported: `int` packet fields, register arrays with initializers,
//! locals, full C expression grammar (`+ - * / %`, comparisons, `&& || !`,
//! unary minus, ternary), `if`/`else`, and the builtins `hash2(a,b)`,
//! `hash3(a,b,c)`, `min(a,b)`, `max(a,b)`.
//!
//! The pipeline of this crate mirrors the *Preprocessing* phase of the
//! Domino compiler (paper Figure 5): parse → semantic check → **branch
//! removal** (if-conversion to predicated statements) → **flattening** to
//! three-address code ([`tac::TacProgram`]). The `mp5-compiler` crate
//! then performs Pipelining, the PVSM-to-PVSM transformation, and code
//! generation.
//!
//! Register semantics follow Banzai: register indices are wrapped into
//! `[0, size)` (Euclidean modulo) at access time, and all accesses a
//! packet makes to one register array must resolve to a single index so
//! that the access is an atomic read-modify-write within one stage.
//! (That constraint is *checked* in `mp5-compiler`, not here.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod tac;

pub use ast::Program;
pub use diag::{Code, Diagnostic, Severity};
pub use error::{LangError, Span};
pub use tac::{lower, Operand, TacExpr, TacInstr, TacProgram};

/// Parses and checks a Domino-like source program.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let prog = parser::parse_tokens(&tokens)?;
    check::check(&prog)?;
    Ok(prog)
}

/// Convenience: parse, check, and lower to three-address code in one
/// step.
pub fn frontend(source: &str) -> Result<TacProgram, LangError> {
    let prog = parse(source)?;
    Ok(lower(&prog))
}

/// Parses a source program, accumulating *all* frontend diagnostics.
///
/// Lexical and syntax errors abort early (there is no program to check),
/// so at most one `MP51xx` diagnostic is reported; semantic checking
/// reports every error it finds. The parsed [`Program`] is returned even
/// when semantic diagnostics are present so tools can keep analyzing.
pub fn parse_diagnostics(source: &str) -> (Option<Program>, Vec<Diagnostic>) {
    let tokens = match lexer::lex(source) {
        Ok(t) => t,
        Err(e) => return (None, vec![e.into()]),
    };
    let prog = match parser::parse_tokens(&tokens) {
        Ok(p) => p,
        Err(e) => return (None, vec![e.into()]),
    };
    let diags = check::check_diagnostics(&prog);
    (Some(prog), diags)
}

/// Parses, checks, and lowers, accumulating all frontend diagnostics.
///
/// Lowering only happens when the program is semantically clean (the
/// lowerer assumes checked input).
pub fn frontend_diagnostics(source: &str) -> (Option<TacProgram>, Vec<Diagnostic>) {
    let (prog, diags) = parse_diagnostics(source);
    match prog {
        Some(p) if !diag::has_errors(&diags) => (Some(lower(&p)), diags),
        _ => (None, diags),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example program from Figure 3 of the paper, verbatim in
    /// spirit.
    pub const FIG3: &str = r#"
        struct Packet {
            int h1;
            int h2;
            int h3;
            int val;
            int mux;
        };

        int reg1[4] = {2, 4, 8, 16};
        int reg2[4] = {1, 3, 5, 7};
        int reg3[4] = {0};

        void func(struct Packet p) {
            p.val = (p.mux == 1) ? reg1[p.h1 % 4] : reg2[p.h2 % 4];
            reg3[p.h3 % 4] = (p.mux == 1)
                ? reg3[p.h3 % 4] * p.val
                : reg3[p.h3 % 4] + p.val;
        }
    "#;

    #[test]
    fn fig3_program_parses() {
        let p = parse(FIG3).expect("figure 3 program must parse");
        assert_eq!(p.fields.len(), 5);
        assert_eq!(p.regs.len(), 3);
    }

    #[test]
    fn fig3_lowers_to_tac() {
        let t = frontend(FIG3).expect("figure 3 program must lower");
        assert!(t
            .instrs
            .iter()
            .any(|i| matches!(i, TacInstr::RegRead { .. })));
        assert!(t
            .instrs
            .iter()
            .any(|i| matches!(i, TacInstr::RegWrite { .. })));
    }
}
