//! Semantic checking.
//!
//! Verifies name resolution rules before lowering:
//! * packet fields referenced via `p.<f>` must be declared in
//!   `struct Packet`;
//! * registers must be declared at top level; scalar registers must not
//!   be indexed and arrays must be indexed;
//! * locals must be declared before use and not shadow registers;
//! * duplicate declarations are rejected.

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, LValue, Program, Stmt};
use crate::error::{LangError, Span};

/// Checks a parsed [`Program`], returning the first error found.
pub fn check(prog: &Program) -> Result<(), LangError> {
    let mut fields = HashSet::new();
    for f in &prog.fields {
        if !fields.insert(f.as_str()) {
            return Err(sem(Span::default(), format!("duplicate packet field '{f}'")));
        }
    }

    let mut regs: HashMap<&str, u32> = HashMap::new();
    for r in &prog.regs {
        if regs.insert(r.name.as_str(), r.size).is_some() {
            return Err(sem(r.span, format!("duplicate register '{}'", r.name)));
        }
        if fields.contains(r.name.as_str()) {
            return Err(sem(
                r.span,
                format!("register '{}' collides with a packet field", r.name),
            ));
        }
        if r.name == prog.pkt_param {
            return Err(sem(
                r.span,
                format!("register '{}' collides with the packet parameter", r.name),
            ));
        }
    }

    let mut ck = Checker {
        fields: &fields,
        regs: &regs,
        locals: HashSet::new(),
    };
    ck.block(&prog.body)
}

fn sem(span: Span, message: String) -> LangError {
    LangError::Semantic { span, message }
}

struct Checker<'a> {
    fields: &'a HashSet<&'a str>,
    regs: &'a HashMap<&'a str, u32>,
    locals: HashSet<String>,
}

impl<'a> Checker<'a> {
    fn block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::DeclLocal { name, init, span } => {
                if let Some(e) = init {
                    self.expr(e, *span)?;
                }
                if self.regs.contains_key(name.as_str()) {
                    return Err(sem(*span, format!("local '{name}' shadows a register")));
                }
                if self.locals.contains(name) {
                    return Err(sem(*span, format!("duplicate local '{name}'")));
                }
                self.locals.insert(name.clone());
                Ok(())
            }
            Stmt::Assign { lhs, rhs, span } => {
                self.expr(rhs, *span)?;
                match lhs {
                    LValue::Field(f) => {
                        if !self.fields.contains(f.as_str()) {
                            return Err(sem(*span, format!("unknown packet field '{f}'")));
                        }
                    }
                    LValue::Local(name) => {
                        if !self.locals.contains(name) {
                            return Err(sem(
                                *span,
                                format!("assignment to undeclared local '{name}'"),
                            ));
                        }
                    }
                    LValue::RegElem(name, idx) => {
                        self.reg_array(name, *span)?;
                        self.expr(idx, *span)?;
                    }
                    LValue::RegScalar(name) => {
                        self.reg_scalar(name, *span)?;
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                self.expr(cond, *span)?;
                self.block(then_branch)?;
                self.block(else_branch)
            }
        }
    }

    fn reg_array(&self, name: &str, span: Span) -> Result<(), LangError> {
        match self.regs.get(name) {
            None => Err(sem(span, format!("unknown register '{name}'"))),
            Some(_) => Ok(()),
        }
    }

    fn reg_scalar(&self, name: &str, span: Span) -> Result<(), LangError> {
        match self.regs.get(name) {
            None => Err(sem(span, format!("unknown register '{name}'"))),
            Some(&size) if size != 1 => Err(sem(
                span,
                format!("register array '{name}' used without an index"),
            )),
            Some(_) => Ok(()),
        }
    }

    fn expr(&self, e: &Expr, span: Span) -> Result<(), LangError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Field(f) => {
                if self.fields.contains(f.as_str()) {
                    Ok(())
                } else {
                    Err(sem(span, format!("unknown packet field '{f}'")))
                }
            }
            Expr::Local(name) => {
                if self.locals.contains(name) {
                    Ok(())
                } else {
                    Err(sem(span, format!("use of undeclared identifier '{name}'")))
                }
            }
            Expr::RegElem(name, idx) => {
                self.reg_array(name, span)?;
                self.expr(idx, span)
            }
            Expr::RegScalar(name) => self.reg_scalar(name, span),
            Expr::Binary(_, a, b) | Expr::Hash2(a, b) => {
                self.expr(a, span)?;
                self.expr(b, span)
            }
            Expr::Unary(_, a) => self.expr(a, span),
            Expr::Ternary(c, t, f) | Expr::Hash3(c, t, f) => {
                self.expr(c, span)?;
                self.expr(t, span)?;
                self.expr(f, span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn err(src: &str) -> String {
        crate::parse(src).unwrap_err().to_string()
    }

    #[test]
    fn accepts_valid_program() {
        parse(
            "struct Packet { int a; };
             int r[4];
             void func(struct Packet p) { int t = p.a; r[t % 4] = t; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_field() {
        assert!(err(
            "struct Packet { int a; };
             void func(struct Packet p) { p.b = 1; }"
        )
        .contains("unknown packet field 'b'"));
    }

    #[test]
    fn rejects_unknown_register() {
        assert!(err(
            "struct Packet { int a; };
             void func(struct Packet p) { p.a = zoo[0]; }"
        )
        .contains("unknown register 'zoo'"));
    }

    #[test]
    fn rejects_undeclared_local() {
        assert!(err(
            "struct Packet { int a; };
             void func(struct Packet p) { p.a = t; }"
        )
        .contains("undeclared identifier 't'"));
    }

    #[test]
    fn rejects_local_use_before_decl() {
        assert!(err(
            "struct Packet { int a; };
             void func(struct Packet p) { p.a = t; int t = 1; }"
        )
        .contains("undeclared identifier 't'"));
    }

    #[test]
    fn rejects_array_used_as_scalar() {
        assert!(err(
            "struct Packet { int a; };
             int r[4];
             void func(struct Packet p) { r = 1; }"
        )
        .contains("without an index"));
    }

    #[test]
    fn rejects_duplicate_register() {
        assert!(err(
            "struct Packet { int a; };
             int r; int r;
             void func(struct Packet p) { p.a = 0; }"
        )
        .contains("duplicate register"));
    }

    #[test]
    fn rejects_duplicate_field() {
        assert!(err(
            "struct Packet { int a; int a; };
             void func(struct Packet p) { p.a = 0; }"
        )
        .contains("duplicate packet field"));
    }

    #[test]
    fn rejects_local_shadowing_register() {
        assert!(err(
            "struct Packet { int a; };
             int r;
             void func(struct Packet p) { int r = 1; }"
        )
        .contains("shadows a register"));
    }

    #[test]
    fn rejects_duplicate_local() {
        assert!(err(
            "struct Packet { int a; };
             void func(struct Packet p) { int t = 1; int t = 2; }"
        )
        .contains("duplicate local"));
    }

    #[test]
    fn scalar_register_ok_without_index() {
        parse(
            "struct Packet { int a; };
             int c = 0;
             void func(struct Packet p) { c = c + 1; p.a = c; }",
        )
        .unwrap();
    }
}
