//! Semantic checking.
//!
//! Verifies name resolution rules before lowering:
//! * packet fields referenced via `p.<f>` must be declared in
//!   `struct Packet`;
//! * registers must be declared at top level; scalar registers must not
//!   be indexed and arrays must be indexed;
//! * locals must be declared before use and not shadow registers;
//! * duplicate declarations are rejected.
//!
//! Unlike the original first-error-only checker, [`check_diagnostics`]
//! walks the whole program and accumulates *every* semantic error as a
//! span-carrying [`Diagnostic`] with a stable `MP5xxx` code. The
//! [`check`] shim keeps the old `Result<(), LangError>` API by
//! returning the first accumulated error.

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, LValue, Program, Stmt};
use crate::diag::{Code, Diagnostic};
use crate::error::{LangError, Span};

/// Checks a parsed [`Program`], returning the first error found.
///
/// Compatibility shim over [`check_diagnostics`]: callers that want
/// every error (and its stable code) should use that instead.
pub fn check(prog: &Program) -> Result<(), LangError> {
    match check_diagnostics(prog).into_iter().next() {
        None => Ok(()),
        Some(d) => Err(LangError::Semantic {
            span: d.span,
            message: d.message,
        }),
    }
}

/// Checks a parsed [`Program`], accumulating every semantic error.
///
/// Errors are reported in program order (declarations first, then the
/// function body, statement by statement). After a faulty declaration
/// the declared name is still brought into scope, so one mistake does
/// not cascade into spurious "undeclared" errors at every use site.
pub fn check_diagnostics(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let mut fields = HashSet::new();
    for f in &prog.fields {
        if !fields.insert(f.as_str()) {
            diags.push(Diagnostic::error(
                Code::DUPLICATE_FIELD,
                Span::default(),
                format!("duplicate packet field '{f}'"),
            ));
        }
    }

    let mut regs: HashMap<&str, u32> = HashMap::new();
    for r in &prog.regs {
        if regs.insert(r.name.as_str(), r.size).is_some() {
            diags.push(Diagnostic::error(
                Code::DUPLICATE_REGISTER,
                r.span,
                format!("duplicate register '{}'", r.name),
            ));
        }
        if fields.contains(r.name.as_str()) {
            diags.push(Diagnostic::error(
                Code::REGISTER_SHADOWS_FIELD,
                r.span,
                format!("register '{}' collides with a packet field", r.name),
            ));
        }
        if r.name == prog.pkt_param {
            diags.push(Diagnostic::error(
                Code::REGISTER_SHADOWS_PARAM,
                r.span,
                format!("register '{}' collides with the packet parameter", r.name),
            ));
        }
    }

    let mut ck = Checker {
        fields: &fields,
        regs: &regs,
        locals: HashSet::new(),
        diags,
    };
    ck.block(&prog.body);
    ck.diags
}

struct Checker<'a> {
    fields: &'a HashSet<&'a str>,
    regs: &'a HashMap<&'a str, u32>,
    locals: HashSet<String>,
    diags: Vec<Diagnostic>,
}

impl<'a> Checker<'a> {
    fn emit(&mut self, code: Code, span: Span, message: String) {
        self.diags.push(Diagnostic::error(code, span, message));
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::DeclLocal { name, init, span } => {
                if let Some(e) = init {
                    self.expr(e, *span);
                }
                if self.regs.contains_key(name.as_str()) {
                    self.emit(
                        Code::LOCAL_SHADOWS_REGISTER,
                        *span,
                        format!("local '{name}' shadows a register"),
                    );
                }
                if self.locals.contains(name) {
                    self.emit(
                        Code::DUPLICATE_LOCAL,
                        *span,
                        format!("duplicate local '{name}'"),
                    );
                }
                // Bring the name into scope even after an error so later
                // uses do not cascade.
                self.locals.insert(name.clone());
            }
            Stmt::Assign { lhs, rhs, span } => {
                self.expr(rhs, *span);
                match lhs {
                    LValue::Field(f) => {
                        if !self.fields.contains(f.as_str()) {
                            self.emit(
                                Code::UNKNOWN_FIELD,
                                *span,
                                format!("unknown packet field '{f}'"),
                            );
                        }
                    }
                    LValue::Local(name) => {
                        if !self.locals.contains(name) {
                            self.emit(
                                Code::UNDECLARED_IDENTIFIER,
                                *span,
                                format!("assignment to undeclared local '{name}'"),
                            );
                        }
                    }
                    LValue::RegElem(name, idx) => {
                        self.reg_array(name, *span);
                        self.expr(idx, *span);
                    }
                    LValue::RegScalar(name) => {
                        self.reg_scalar(name, *span);
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                self.expr(cond, *span);
                self.block(then_branch);
                self.block(else_branch);
            }
        }
    }

    fn reg_array(&mut self, name: &str, span: Span) {
        if !self.regs.contains_key(name) {
            self.emit(
                Code::UNKNOWN_REGISTER,
                span,
                format!("unknown register '{name}'"),
            );
        }
    }

    fn reg_scalar(&mut self, name: &str, span: Span) {
        match self.regs.get(name) {
            None => self.emit(
                Code::UNKNOWN_REGISTER,
                span,
                format!("unknown register '{name}'"),
            ),
            Some(&size) if size != 1 => self.emit(
                Code::ARRAY_WITHOUT_INDEX,
                span,
                format!("register array '{name}' used without an index"),
            ),
            Some(_) => {}
        }
    }

    fn expr(&mut self, e: &Expr, span: Span) {
        match e {
            Expr::Const(_) => {}
            Expr::Field(f) => {
                if !self.fields.contains(f.as_str()) {
                    self.emit(
                        Code::UNKNOWN_FIELD,
                        span,
                        format!("unknown packet field '{f}'"),
                    );
                }
            }
            Expr::Local(name) => {
                if !self.locals.contains(name) {
                    self.emit(
                        Code::UNDECLARED_IDENTIFIER,
                        span,
                        format!("use of undeclared identifier '{name}'"),
                    );
                }
            }
            Expr::RegElem(name, idx) => {
                self.reg_array(name, span);
                self.expr(idx, span);
            }
            Expr::RegScalar(name) => self.reg_scalar(name, span),
            Expr::Binary(_, a, b) | Expr::Hash2(a, b) => {
                self.expr(a, span);
                self.expr(b, span);
            }
            Expr::Unary(_, a) => self.expr(a, span),
            Expr::Ternary(c, t, f) | Expr::Hash3(c, t, f) => {
                self.expr(c, span);
                self.expr(t, span);
                self.expr(f, span);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn err(src: &str) -> String {
        crate::parse(src).unwrap_err().to_string()
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        let tokens = crate::lexer::lex(src).unwrap();
        let prog = crate::parser::parse_tokens(&tokens).unwrap();
        check_diagnostics(&prog)
    }

    #[test]
    fn accepts_valid_program() {
        parse(
            "struct Packet { int a; };
             int r[4];
             void func(struct Packet p) { int t = p.a; r[t % 4] = t; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_field() {
        assert!(err("struct Packet { int a; };
             void func(struct Packet p) { p.b = 1; }")
        .contains("unknown packet field 'b'"));
    }

    #[test]
    fn rejects_unknown_register() {
        assert!(err("struct Packet { int a; };
             void func(struct Packet p) { p.a = zoo[0]; }")
        .contains("unknown register 'zoo'"));
    }

    #[test]
    fn rejects_undeclared_local() {
        assert!(err("struct Packet { int a; };
             void func(struct Packet p) { p.a = t; }")
        .contains("undeclared identifier 't'"));
    }

    #[test]
    fn rejects_local_use_before_decl() {
        assert!(err("struct Packet { int a; };
             void func(struct Packet p) { p.a = t; int t = 1; }")
        .contains("undeclared identifier 't'"));
    }

    #[test]
    fn rejects_array_used_as_scalar() {
        assert!(err("struct Packet { int a; };
             int r[4];
             void func(struct Packet p) { r = 1; }")
        .contains("without an index"));
    }

    #[test]
    fn rejects_duplicate_register() {
        assert!(err("struct Packet { int a; };
             int r; int r;
             void func(struct Packet p) { p.a = 0; }")
        .contains("duplicate register"));
    }

    #[test]
    fn rejects_duplicate_field() {
        assert!(err("struct Packet { int a; int a; };
             void func(struct Packet p) { p.a = 0; }")
        .contains("duplicate packet field"));
    }

    #[test]
    fn rejects_local_shadowing_register() {
        assert!(err("struct Packet { int a; };
             int r;
             void func(struct Packet p) { int r = 1; }")
        .contains("shadows a register"));
    }

    #[test]
    fn rejects_duplicate_local() {
        assert!(err("struct Packet { int a; };
             void func(struct Packet p) { int t = 1; int t = 2; }")
        .contains("duplicate local"));
    }

    #[test]
    fn scalar_register_ok_without_index() {
        parse(
            "struct Packet { int a; };
             int c = 0;
             void func(struct Packet p) { c = c + 1; p.a = c; }",
        )
        .unwrap();
    }

    // ---- accumulation ----

    #[test]
    fn accumulates_every_error_in_order() {
        let ds = diags(
            "struct Packet { int a; };
             void func(struct Packet p) {
                 p.b = 1;
                 p.c = 2;
                 p.a = zoo[0];
             }",
        );
        let codes: Vec<Code> = ds.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::UNKNOWN_FIELD,
                Code::UNKNOWN_FIELD,
                Code::UNKNOWN_REGISTER
            ],
            "{ds:?}"
        );
        // Spans advance with the statements.
        assert!(ds[0].span.line < ds[2].span.line, "{ds:?}");
    }

    #[test]
    fn faulty_declaration_does_not_cascade() {
        // `int r = 1` shadows register r, but later uses of the local
        // must not also report "undeclared identifier".
        let ds = diags(
            "struct Packet { int a; };
             int r;
             void func(struct Packet p) { int r = 1; p.a = r; }",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::LOCAL_SHADOWS_REGISTER);
    }

    #[test]
    fn shim_returns_first_error() {
        let tokens = crate::lexer::lex(
            "struct Packet { int a; };
             void func(struct Packet p) { p.b = 1; p.c = 2; }",
        )
        .unwrap();
        let prog = crate::parser::parse_tokens(&tokens).unwrap();
        let e = check(&prog).unwrap_err();
        assert!(e.to_string().contains("unknown packet field 'b'"), "{e}");
    }

    #[test]
    fn clean_program_yields_no_diagnostics() {
        let ds = diags(
            "struct Packet { int a; };
             int r[4];
             void func(struct Packet p) { r[p.a % 4] = 1; }",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }
}
