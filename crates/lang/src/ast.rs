//! Abstract syntax tree for the Domino-like DSL.

use crate::error::Span;
use mp5_types::Value;

/// Binary operators, C semantics over [`Value`] with wrapping arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `/` (C truncating; division by zero yields 0, like a hardware ALU
    /// with a defined don't-care).
    Div,
    /// `%` (sign of dividend; modulo by zero yields 0).
    Rem,
    /// `==` → 0/1.
    Eq,
    /// `!=` → 0/1.
    Ne,
    /// `<` → 0/1.
    Lt,
    /// `<=` → 0/1.
    Le,
    /// `>` → 0/1.
    Gt,
    /// `>=` → 0/1.
    Ge,
    /// `&&` → 0/1 (both sides evaluated; the DSL has no side-effecting
    /// expressions, so short-circuit is unobservable).
    And,
    /// `||` → 0/1.
    Or,
    /// `min(a,b)` builtin.
    Min,
    /// `max(a,b)` builtin.
    Max,
    /// `&` bitwise and.
    BitAnd,
    /// `|` bitwise or.
    BitOr,
    /// `^` bitwise xor.
    BitXor,
    /// `<<` shift left (shift amount masked to 0..63, like hardware).
    Shl,
    /// `>>` arithmetic shift right (shift amount masked to 0..63).
    Shr,
}

impl BinOp {
    /// Evaluates the operator.
    pub fn eval(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Eq => (a == b) as Value,
            BinOp::Ne => (a != b) as Value,
            BinOp::Lt => (a < b) as Value,
            BinOp::Le => (a <= b) as Value,
            BinOp::Gt => (a > b) as Value,
            BinOp::Ge => (a >= b) as Value,
            BinOp::And => (a != 0 && b != 0) as Value,
            BinOp::Or => (a != 0 || b != 0) as Value,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-a` (wrapping).
    Neg,
    /// `!a` → 0/1.
    Not,
}

impl UnOp {
    /// Evaluates the operator.
    pub fn eval(self, a: Value) -> Value {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => (a == 0) as Value,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Const(Value),
    /// `p.<field>` — a packet header field.
    Field(String),
    /// A local variable.
    Local(String),
    /// `reg[index]` — register array element read.
    RegElem(String, Box<Expr>),
    /// A scalar register read (`count`).
    RegScalar(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `hash2(a, b)`.
    Hash2(Box<Expr>, Box<Expr>),
    /// `hash3(a, b, c)`.
    Hash3(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `p.<field> = ...`.
    Field(String),
    /// Local variable.
    Local(String),
    /// `reg[index] = ...`.
    RegElem(String, Expr),
    /// Scalar register.
    RegScalar(String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int x = e;` or `int x;` (local declaration; default 0).
    DeclLocal {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `lhs = e;`.
    Assign {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// Location.
        span: Span,
    },
    /// `if (c) t else f`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (may be empty).
        else_branch: Vec<Stmt>,
        /// Location.
        span: Span,
    },
}

/// A register array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegDecl {
    /// Name.
    pub name: String,
    /// Number of elements (1 for scalars).
    pub size: u32,
    /// Initial values. Shorter initializer lists are zero-extended, like
    /// C aggregate initialization (`int reg3[4] = {0}` in Figure 3).
    pub init: Vec<Value>,
    /// Location.
    pub span: Span,
}

impl RegDecl {
    /// The full initial contents, zero-extended to `size`.
    pub fn initial_contents(&self) -> Vec<Value> {
        let mut v = self.init.clone();
        v.resize(self.size as usize, 0);
        v
    }
}

/// A whole program: packet field declarations, register declarations, and
/// one `void func(struct Packet p)` body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Declared packet header fields, in declaration order.
    pub fields: Vec<String>,
    /// Register arrays.
    pub regs: Vec<RegDecl>,
    /// The parameter name binding the packet (conventionally `p`).
    pub pkt_param: String,
    /// Function body.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 4), 16);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 4), 3);
    }

    #[test]
    fn binop_division_by_zero_is_defined() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
    }

    #[test]
    fn binop_eval_comparisons() {
        assert_eq!(BinOp::Eq.eval(1, 1), 1);
        assert_eq!(BinOp::Ne.eval(1, 1), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
    }

    #[test]
    fn binop_eval_logic_and_minmax() {
        assert_eq!(BinOp::And.eval(2, 0), 0);
        assert_eq!(BinOp::Or.eval(0, -1), 1);
        assert_eq!(BinOp::Min.eval(3, -7), -7);
        assert_eq!(BinOp::Max.eval(3, -7), 3);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(3), 0);
    }

    #[test]
    fn bitwise_and_shift_eval() {
        assert_eq!(BinOp::BitAnd.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::BitOr.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::BitXor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.eval(1, 10), 1024);
        assert_eq!(BinOp::Shr.eval(1024, 10), 1);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4, "arithmetic shift");
        // Shift amounts mask to 0..63 like hardware, never panic.
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, -1), i64::MIN);
    }

    #[test]
    fn wrapping_no_panic() {
        assert_eq!(BinOp::Add.eval(Value::MAX, 1), Value::MIN);
        assert_eq!(UnOp::Neg.eval(Value::MIN), Value::MIN);
    }

    #[test]
    fn reg_initial_contents_zero_extend() {
        let r = RegDecl {
            name: "r".into(),
            size: 4,
            init: vec![9],
            span: Span::default(),
        };
        assert_eq!(r.initial_contents(), vec![9, 0, 0, 0]);
    }
}
