//! Span-carrying diagnostics with stable codes and rustc-style
//! rendering.
//!
//! Every user-facing finding in the MP5 toolchain — frontend semantic
//! errors, shardability verdicts, D4 hazard warnings, resource-pressure
//! failures — flows through [`Diagnostic`]: a severity, a stable
//! `MP5xxx` [`Code`], a source [`Span`], a primary message, and optional
//! notes. Unlike the original first-error-only `Result<(), LangError>`
//! plumbing, diagnostics *accumulate*: one run of the checker or the
//! analyzer reports every problem it can find.
//!
//! Rendering mimics rustc:
//!
//! ```text
//! error[MP5005]: unknown packet field 'b'
//!   --> prog.mp5:2:30
//!    |
//!  2 |  void func(struct Packet p) { p.b = 1; }
//!    |                              ^
//!    = note: declared packet fields: a
//! ```
//!
//! The code space is partitioned by subsystem (see the constants on
//! [`Code`] and the table in `DESIGN.md`):
//!
//! | range    | subsystem                                   |
//! |----------|---------------------------------------------|
//! | MP5001–MP5099 | semantic checks (`mp5-lang/check`)     |
//! | MP5101–MP5199 | lexical / syntax errors                |
//! | MP5201–MP5299 | shardability analysis (D2, §3.3)       |
//! | MP5301–MP5399 | hazard / ordering analysis (D4)        |
//! | MP5401–MP5499 | resource-pressure analysis             |
//! | MP5900–MP5999 | internal invariant violations          |

use std::fmt;

use crate::error::{LangError, Span};

/// A stable diagnostic code, rendered as `MP5xxx`.
///
/// Codes are append-only: once published, a code's meaning never
/// changes (tools and expected-diagnostic fixtures key on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl Code {
    // ---- frontend semantic checks (MP50xx) ----
    /// Duplicate packet field declaration.
    pub const DUPLICATE_FIELD: Code = Code(1);
    /// Duplicate register declaration.
    pub const DUPLICATE_REGISTER: Code = Code(2);
    /// Register name collides with a packet field.
    pub const REGISTER_SHADOWS_FIELD: Code = Code(3);
    /// Register name collides with the packet parameter.
    pub const REGISTER_SHADOWS_PARAM: Code = Code(4);
    /// Reference to an undeclared packet field.
    pub const UNKNOWN_FIELD: Code = Code(5);
    /// Reference to an undeclared register.
    pub const UNKNOWN_REGISTER: Code = Code(6);
    /// Use of an undeclared local identifier.
    pub const UNDECLARED_IDENTIFIER: Code = Code(7);
    /// Register array used without an index.
    pub const ARRAY_WITHOUT_INDEX: Code = Code(8);
    /// Local declaration shadows a register.
    pub const LOCAL_SHADOWS_REGISTER: Code = Code(9);
    /// Duplicate local declaration.
    pub const DUPLICATE_LOCAL: Code = Code(10);

    // ---- lexical / syntax (MP51xx) ----
    /// Lexical error (unexpected character, unterminated comment).
    pub const LEX_ERROR: Code = Code(101);
    /// Syntax error.
    pub const PARSE_ERROR: Code = Code(102);

    // ---- shardability analysis (MP52xx) ----
    /// Array pinned: its index computation reads state (§3.3 hard case —
    /// "effectively no state sharding").
    pub const PINNED_STATEFUL_INDEX: Code = Code(201);
    /// Array pinned: co-resident with other arrays (pairs-class atom or
    /// stage-budget merge) — every co-resident array maps to one
    /// pipeline.
    pub const PINNED_CO_RESIDENT: Code = Code(202);
    /// Array pinned: a packet may touch multiple distinct indexes, which
    /// sharding could scatter across pipelines the packet cannot all
    /// visit.
    pub const PINNED_MULTI_INDEX: Code = Code(203);
    /// Array pinned: a stateful predicate forces array-level
    /// serialization of a multi-index array.
    pub const PINNED_STATEFUL_PREDICATE: Code = Code(204);
    /// Stateful predicate resolved speculatively: the array still shards,
    /// but false outcomes waste one cycle at the stateful stage.
    pub const SPECULATIVE_PHANTOM: Code = Code(205);

    // ---- hazard / ordering analysis (MP53xx) ----
    /// Access serialized at array granularity: per-index serial-order
    /// freezing (D4's per-index FIFO placeholders) is unavailable.
    pub const ARRAY_LEVEL_SERIALIZATION: Code = Code(301);
    /// A stateful stage is not covered by any phantom plan: D4's
    /// precondition is violated and serial order cannot be frozen.
    pub const UNCOVERED_STATEFUL_STAGE: Code = Code(302);

    // ---- resource pressure (MP54xx) ----
    /// The program needs more pipeline stages than the target provides.
    pub const TOO_MANY_STAGES: Code = Code(401);
    /// A stage exceeds the target's per-stage operation budget.
    pub const TOO_MANY_OPS: Code = Code(402);
    /// A stage's register arrays exceed the target's per-stage SRAM.
    pub const SRAM_OVERFLOW: Code = Code(403);
    /// The program needs a pairs-class atom the target lacks.
    pub const PAIRS_UNSUPPORTED: Code = Code(404);

    // ---- internal (MP59xx) ----
    /// Internal invariant violation (should never fire on valid input).
    pub const INTERNAL: Code = Code(999);

    /// Parses a rendered `MP5xxx` code (e.g. from a fixture annotation).
    pub fn parse(s: &str) -> Option<Code> {
        let digits = s.strip_prefix("MP5")?;
        if digits.len() != 3 {
            return None;
        }
        digits.parse::<u16>().ok().map(Code)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MP5{:03}", self.0)
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (rendered as `note`).
    Note,
    /// Suspicious but compilable (rendered as `warning`).
    Warning,
    /// The program is rejected (rendered as `error`).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: severity, stable code, source location, message, notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `MP5xxx` code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Primary source location (line/col; `Span::default()` = unknown).
    pub span: Span,
    /// Primary message.
    pub message: String,
    /// Supplementary notes (rendered as `= note: ...` lines).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Creates a note diagnostic.
    pub fn note(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Appends a supplementary note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders this diagnostic rustc-style against the program source.
    ///
    /// `filename` is purely presentational (`<input>` is conventional
    /// when no file is involved).
    pub fn render(&self, source: &str, filename: &str) -> String {
        let mut out = String::new();
        self.render_into(&mut out, source, filename);
        out
    }

    fn render_into(&self, out: &mut String, source: &str, filename: &str) {
        use fmt::Write;
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        let line_no = self.span.line as usize;
        let gutter = if line_no > 0 {
            line_no.to_string().len().max(2)
        } else {
            2
        };
        let pad = " ".repeat(gutter);
        if self.span != Span::default() {
            let _ = writeln!(
                out,
                "{pad}--> {filename}:{}:{}",
                self.span.line, self.span.col
            );
            if let Some(text) = source.lines().nth(line_no.saturating_sub(1)) {
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{line_no:>gutter$} | {text}");
                // Column is 1-based; tabs render as one column here, which
                // matches how the lexer counts them.
                let caret_pad = " ".repeat((self.span.col as usize).saturating_sub(1));
                let _ = writeln!(out, "{pad} | {caret_pad}^");
            }
        } else {
            let _ = writeln!(out, "{pad}--> {filename}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "{pad} = note: {note}");
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

impl From<LangError> for Diagnostic {
    fn from(e: LangError) -> Self {
        match e {
            LangError::Lex { span, message } => Diagnostic::error(Code::LEX_ERROR, span, message),
            LangError::Parse { span, message } => {
                Diagnostic::error(Code::PARSE_ERROR, span, message)
            }
            LangError::Semantic { span, message } => {
                // `check_diagnostics` produces precise codes; this
                // conversion is for contexts that only hold a LangError.
                Diagnostic::error(semantic_code_for(&message), span, message)
            }
        }
    }
}

/// Maps a semantic error message back to its stable code (used when
/// converting a bare [`LangError`]; `check_diagnostics` assigns codes
/// directly).
fn semantic_code_for(message: &str) -> Code {
    const TABLE: &[(&str, Code)] = &[
        ("duplicate packet field", Code::DUPLICATE_FIELD),
        ("duplicate register", Code::DUPLICATE_REGISTER),
        ("collides with a packet field", Code::REGISTER_SHADOWS_FIELD),
        (
            "collides with the packet parameter",
            Code::REGISTER_SHADOWS_PARAM,
        ),
        ("unknown packet field", Code::UNKNOWN_FIELD),
        ("unknown register", Code::UNKNOWN_REGISTER),
        ("undeclared", Code::UNDECLARED_IDENTIFIER),
        ("without an index", Code::ARRAY_WITHOUT_INDEX),
        ("shadows a register", Code::LOCAL_SHADOWS_REGISTER),
        ("duplicate local", Code::DUPLICATE_LOCAL),
    ];
    TABLE
        .iter()
        .find(|(needle, _)| message.contains(needle))
        .map(|&(_, c)| c)
        .unwrap_or(Code::PARSE_ERROR)
}

/// Renders a batch of diagnostics followed by a summary line, mimicking
/// a compiler invocation's output.
pub fn render_all(diags: &[Diagnostic], source: &str, filename: &str) -> String {
    let mut out = String::new();
    for d in diags {
        d.render_into(&mut out, source, filename);
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    use fmt::Write;
    match (errors, warnings) {
        (0, 0) if diags.is_empty() => {
            let _ = writeln!(out, "{filename}: no diagnostics");
        }
        (0, 0) => {
            let _ = writeln!(out, "{filename}: {} note(s)", diags.len());
        }
        (0, w) => {
            let _ = writeln!(out, "{filename}: {w} warning(s)");
        }
        (e, 0) => {
            let _ = writeln!(out, "{filename}: {e} error(s)");
        }
        (e, w) => {
            let _ = writeln!(out, "{filename}: {e} error(s), {w} warning(s)");
        }
    }
    out
}

/// True if any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_display_and_parse_roundtrip() {
        assert_eq!(Code::UNKNOWN_FIELD.to_string(), "MP5005");
        assert_eq!(Code::PINNED_STATEFUL_INDEX.to_string(), "MP5201");
        assert_eq!(Code::parse("MP5005"), Some(Code::UNKNOWN_FIELD));
        assert_eq!(Code::parse("MP5401"), Some(Code::TOO_MANY_STAGES));
        assert_eq!(Code::parse("MP5"), None);
        assert_eq!(Code::parse("E0001"), None);
        assert_eq!(Code::parse("MP51234"), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rendering_points_caret_at_column() {
        let src = "struct Packet { int a; };\nvoid func(struct Packet p) { p.b = 1; }\n";
        let d = Diagnostic::error(
            Code::UNKNOWN_FIELD,
            Span { line: 2, col: 30 },
            "unknown packet field 'b'",
        )
        .with_note("declared packet fields: a");
        let r = d.render(src, "prog.mp5");
        assert!(r.contains("error[MP5005]: unknown packet field 'b'"), "{r}");
        assert!(r.contains("--> prog.mp5:2:30"), "{r}");
        assert!(r.contains(" 2 | void func"), "{r}");
        // Caret lands under column 30 of the quoted line.
        let caret_line = r.lines().find(|l| l.trim_end().ends_with('^')).unwrap();
        let quoted = r.lines().find(|l| l.contains("void func")).unwrap();
        let caret_col = caret_line.find('^').unwrap();
        let text_start = quoted.find("void").unwrap();
        assert_eq!(caret_col - text_start + 1, 30, "{r}");
        assert!(r.contains("= note: declared packet fields: a"), "{r}");
    }

    #[test]
    fn rendering_without_span_omits_snippet() {
        let d = Diagnostic::warning(Code::SPECULATIVE_PHANTOM, Span::default(), "spec");
        let r = d.render("x", "f.mp5");
        assert!(!r.contains('^'), "{r}");
        assert!(r.contains("warning[MP5205]"), "{r}");
    }

    #[test]
    fn render_all_summarizes() {
        let src = "a\nb\n";
        let ds = vec![
            Diagnostic::error(Code::UNKNOWN_FIELD, Span { line: 1, col: 1 }, "e1"),
            Diagnostic::warning(Code::SPECULATIVE_PHANTOM, Span { line: 2, col: 1 }, "w1"),
        ];
        let r = render_all(&ds, src, "x.mp5");
        assert!(r.contains("1 error(s), 1 warning(s)"), "{r}");
        assert!(has_errors(&ds));
        assert!(!has_errors(&ds[1..]));
    }

    #[test]
    fn langerror_conversion_assigns_codes() {
        let d: Diagnostic = LangError::Semantic {
            span: Span { line: 1, col: 2 },
            message: "unknown register 'z'".into(),
        }
        .into();
        assert_eq!(d.code, Code::UNKNOWN_REGISTER);
        let d: Diagnostic = LangError::Lex {
            span: Span::default(),
            message: "bad char".into(),
        }
        .into();
        assert_eq!(d.code, Code::LEX_ERROR);
        assert_eq!(d.severity, Severity::Error);
    }
}
