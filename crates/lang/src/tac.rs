//! Three-address code: the output of the Domino *Preprocessing* phase.
//!
//! Lowering performs, in one pass:
//!
//! * **Branch removal** (if-conversion): `if`/`else` and ternaries become
//!   straight-line *predicated* statements. Packet-field assignments
//!   under a predicate become `dst = pred ? rhs : dst`; register
//!   reads/writes carry an explicit predicate operand. This mirrors the
//!   Domino compiler, and it is what makes the paper's Figure 5 stateful
//!   stage template (`if (p.pred) ALU1(reg1[p.idx1]) else ...`) arise.
//! * **Flattening** to three-address form: every intermediate value gets
//!   a compiler temporary, which the downstream compiler materialises as
//!   a packet *metadata field* (data flows through the pipeline inside
//!   the packet — there are no wires between stages).
//! * **Value-numbering CSE**: repeated pure sub-expressions (crucially,
//!   register index computations like `p.h3 % 4` in Figure 3) collapse
//!   to a single temporary, so all accesses to one register array share
//!   one syntactic index operand — the precondition for fusing them into
//!   a single atomic Banzai read-modify-write.
//!
//! Register access predication: a [`TacInstr::RegRead`]/[`TacInstr::RegWrite`]
//! with predicate `Some(c)` *only counts as a state access when `c ≠ 0`*.
//! This matches the paper, where phantom packets for a predicated access
//! are generated only for the taken branch (Figure 5).

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp};
use crate::error::Span;
use mp5_types::{hash2, hash3, FieldId, RegId, Value};

/// An operand: a constant or a packet/metadata field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Immediate constant.
    Const(Value),
    /// Packet field, local, or compiler temporary.
    Field(FieldId),
}

/// A flattened expression (operands only — no nesting).
#[derive(Debug, Clone, PartialEq)]
pub enum TacExpr {
    /// `dst = a`.
    Copy(Operand),
    /// `dst = op a`.
    Unary(UnOp, Operand),
    /// `dst = a op b`.
    Binary(BinOp, Operand, Operand),
    /// `dst = c ? a : b`.
    Ternary(Operand, Operand, Operand),
    /// `dst = hash2(a, b)`.
    Hash2(Operand, Operand),
    /// `dst = hash3(a, b, c)`.
    Hash3(Operand, Operand, Operand),
}

impl TacExpr {
    /// All operands referenced by this expression.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            TacExpr::Copy(a) | TacExpr::Unary(_, a) => vec![*a],
            TacExpr::Binary(_, a, b) | TacExpr::Hash2(a, b) => vec![*a, *b],
            TacExpr::Ternary(a, b, c) | TacExpr::Hash3(a, b, c) => vec![*a, *b, *c],
        }
    }

    /// Evaluates the expression over a field store.
    pub fn eval(&self, fields: &[Value]) -> Value {
        let get = |o: &Operand| match o {
            Operand::Const(v) => *v,
            Operand::Field(f) => fields[f.index()],
        };
        match self {
            TacExpr::Copy(a) => get(a),
            TacExpr::Unary(op, a) => op.eval(get(a)),
            TacExpr::Binary(op, a, b) => op.eval(get(a), get(b)),
            TacExpr::Ternary(c, a, b) => {
                if get(c) != 0 {
                    get(a)
                } else {
                    get(b)
                }
            }
            TacExpr::Hash2(a, b) => hash2(get(a), get(b)),
            TacExpr::Hash3(a, b, c) => hash3(get(a), get(b), get(c)),
        }
    }
}

/// One three-address instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum TacInstr {
    /// Stateless: `dst = expr`.
    Assign {
        /// Destination field.
        dst: FieldId,
        /// Right-hand side.
        expr: TacExpr,
    },
    /// Stateful read: `if (pred) dst = reg[idx] else dst = 0`.
    ///
    /// Counts as a state access only when the predicate holds.
    RegRead {
        /// Destination field.
        dst: FieldId,
        /// Register array.
        reg: RegId,
        /// Index operand (wrapped into `[0, size)` at access time).
        idx: Operand,
        /// Access predicate; `None` = always.
        pred: Option<Operand>,
    },
    /// Stateful write: `if (pred) reg[idx] = val`.
    RegWrite {
        /// Register array.
        reg: RegId,
        /// Index operand.
        idx: Operand,
        /// Value to store.
        val: Operand,
        /// Access predicate; `None` = always.
        pred: Option<Operand>,
    },
}

/// Metadata about one register array.
#[derive(Debug, Clone, PartialEq)]
pub struct RegInfo {
    /// Source name.
    pub name: String,
    /// Element count.
    pub size: u32,
    /// Initial contents (length == `size`).
    pub init: Vec<Value>,
}

/// A lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct TacProgram {
    /// All field names: declared packet fields first, then locals and
    /// temporaries (metadata fields).
    pub field_names: Vec<String>,
    /// How many leading entries of `field_names` are *declared* packet
    /// header fields (the ones functional equivalence compares).
    pub declared_fields: usize,
    /// Register arrays, indexed by [`RegId`].
    pub regs: Vec<RegInfo>,
    /// The instruction sequence.
    pub instrs: Vec<TacInstr>,
    /// Source span of each instruction, in lockstep with `instrs`
    /// (`spans[i]` is where `instrs[i]` came from). Instructions that
    /// were synthesised without a source location (e.g. injected flow
    /// orders) carry `Span::default()`. Kept as a side table so the
    /// instruction enums stay plain data.
    pub spans: Vec<Span>,
}

/// One recorded state access (for access logs / C1 ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateAccess {
    /// Register array.
    pub reg: RegId,
    /// Wrapped concrete index.
    pub index: u32,
}

impl TacProgram {
    /// Looks up a field id by name.
    pub fn field(&self, name: &str) -> Option<FieldId> {
        self.field_names
            .iter()
            .position(|n| n == name)
            .map(FieldId::from)
    }

    /// Looks up a register id by name.
    pub fn reg(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(RegId::from)
    }

    /// Fresh register state (initial contents of every array).
    pub fn initial_regs(&self) -> Vec<Vec<Value>> {
        self.regs.iter().map(|r| r.init.clone()).collect()
    }

    /// Source span of the instruction at `pos` (default span when the
    /// instruction was synthesised without a location).
    pub fn span_of(&self, pos: usize) -> Span {
        self.spans.get(pos).copied().unwrap_or_default()
    }

    /// Wraps an index operand value into `[0, size)` (Euclidean modulo),
    /// the Banzai register addressing rule used across the workspace.
    pub fn wrap_index(size: u32, raw: Value) -> u32 {
        (raw.rem_euclid(size as Value)) as u32
    }

    /// Executes the program serially on one packet's field store against
    /// mutable register state. Returns the state accesses performed, in
    /// program order. This is the *reference semantics*: every switch
    /// model in the workspace must agree with it.
    pub fn execute(&self, fields: &mut [Value], regs: &mut [Vec<Value>]) -> Vec<StateAccess> {
        debug_assert_eq!(fields.len(), self.field_names.len());
        let mut accesses = Vec::new();
        let opval = |o: &Operand, fields: &[Value]| match o {
            Operand::Const(v) => *v,
            Operand::Field(f) => fields[f.index()],
        };
        for ins in &self.instrs {
            match ins {
                TacInstr::Assign { dst, expr } => {
                    fields[dst.index()] = expr.eval(fields);
                }
                TacInstr::RegRead {
                    dst,
                    reg,
                    idx,
                    pred,
                } => {
                    let taken = pred.as_ref().is_none_or(|p| opval(p, fields) != 0);
                    if taken {
                        let size = self.regs[reg.index()].size;
                        let i = Self::wrap_index(size, opval(idx, fields));
                        fields[dst.index()] = regs[reg.index()][i as usize];
                        accesses.push(StateAccess {
                            reg: *reg,
                            index: i,
                        });
                    } else {
                        fields[dst.index()] = 0;
                    }
                }
                TacInstr::RegWrite {
                    reg,
                    idx,
                    val,
                    pred,
                } => {
                    let taken = pred.as_ref().is_none_or(|p| opval(p, fields) != 0);
                    if taken {
                        let size = self.regs[reg.index()].size;
                        let i = Self::wrap_index(size, opval(idx, fields));
                        regs[reg.index()][i as usize] = opval(val, fields);
                        accesses.push(StateAccess {
                            reg: *reg,
                            index: i,
                        });
                    }
                }
            }
        }
        // A read and write of the same (reg, index) is one atomic access
        // in Banzai; dedup consecutive duplicates for access accounting.
        accesses.dedup();
        accesses
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Key for value-numbering CSE: expression shape over *versioned*
/// operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Unary(UnOp, VOp),
    Binary(BinOp, VOp, VOp),
    Ternary(VOp, VOp, VOp),
    Hash2(VOp, VOp),
    Hash3(VOp, VOp, VOp),
    /// Register read: (reg, idx, reg-version, predicate).
    RegRead(RegId, VOp, u32, Option<VOp>),
}

/// A versioned operand: constants, or a field at a specific write
/// version (temporaries are single-assignment, so their version is 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VOp {
    Const(Value),
    Field(FieldId, u32),
}

struct Lowerer {
    field_names: Vec<String>,
    field_vers: Vec<u32>,
    reg_vers: Vec<u32>,
    regs: Vec<RegInfo>,
    reg_ids: HashMap<String, RegId>,
    local_ids: HashMap<String, FieldId>,
    cse: HashMap<CseKey, Operand>,
    instrs: Vec<TacInstr>,
    spans: Vec<Span>,
    cur_span: Span,
    next_tmp: u32,
}

/// Lowers a checked [`Program`] into three-address code.
pub fn lower(prog: &Program) -> TacProgram {
    let mut lw = Lowerer {
        field_names: prog.fields.clone(),
        field_vers: vec![0; prog.fields.len()],
        reg_vers: vec![0; prog.regs.len()],
        regs: prog
            .regs
            .iter()
            .map(|r| RegInfo {
                name: r.name.clone(),
                size: r.size,
                init: r.initial_contents(),
            })
            .collect(),
        reg_ids: prog
            .regs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RegId::from(i)))
            .collect(),
        local_ids: HashMap::new(),
        cse: HashMap::new(),
        instrs: Vec::new(),
        spans: Vec::new(),
        cur_span: Span::default(),
        next_tmp: 0,
    };
    lw.block(&prog.body, None);
    debug_assert_eq!(lw.instrs.len(), lw.spans.len());
    TacProgram {
        declared_fields: prog.fields.len(),
        field_names: lw.field_names,
        regs: lw.regs,
        instrs: lw.instrs,
        spans: lw.spans,
    }
}

impl Lowerer {
    fn new_field(&mut self, name: String) -> FieldId {
        let id = FieldId::from(self.field_names.len());
        self.field_names.push(name);
        self.field_vers.push(0);
        id
    }

    fn new_tmp(&mut self) -> FieldId {
        let n = self.next_tmp;
        self.next_tmp += 1;
        self.new_field(format!("$t{n}"))
    }

    fn vop(&self, o: Operand) -> VOp {
        match o {
            Operand::Const(v) => VOp::Const(v),
            Operand::Field(f) => VOp::Field(f, self.field_vers[f.index()]),
        }
    }

    fn field_id(&self, name: &str, declared: &[String]) -> FieldId {
        let _ = declared;
        FieldId::from(
            self.field_names
                .iter()
                .position(|n| n == name)
                .expect("checked field"),
        )
    }

    /// Appends an instruction, recording the current source span in the
    /// lockstep side table.
    fn push_instr(&mut self, ins: TacInstr) {
        self.instrs.push(ins);
        self.spans.push(self.cur_span);
    }

    /// Emits `dst = expr` (no CSE bookkeeping; caller handles versions).
    fn emit_assign(&mut self, dst: FieldId, expr: TacExpr) {
        self.push_instr(TacInstr::Assign { dst, expr });
    }

    /// Materialises a (possibly cached) pure expression into an operand.
    fn cse_emit(&mut self, key: CseKey, expr: TacExpr) -> Operand {
        if let Some(&op) = self.cse.get(&key) {
            return op;
        }
        // Constant folding for all-constant operands.
        if expr
            .operands()
            .iter()
            .all(|o| matches!(o, Operand::Const(_)))
        {
            let v = expr.eval(&[]);
            let op = Operand::Const(v);
            self.cse.insert(key, op);
            return op;
        }
        let dst = self.new_tmp();
        self.emit_assign(dst, expr);
        let op = Operand::Field(dst);
        self.cse.insert(key, op);
        op
    }

    /// Combines the ambient predicate with a new condition.
    fn and_pred(&mut self, pred: Option<Operand>, cond: Operand) -> Operand {
        match pred {
            None => cond,
            Some(p) => {
                let key = CseKey::Binary(BinOp::And, self.vop(p), self.vop(cond));
                self.cse_emit(key, TacExpr::Binary(BinOp::And, p, cond))
            }
        }
    }

    fn not(&mut self, cond: Operand) -> Operand {
        let key = CseKey::Unary(UnOp::Not, self.vop(cond));
        self.cse_emit(key, TacExpr::Unary(UnOp::Not, cond))
    }

    fn block(&mut self, stmts: &[Stmt], pred: Option<Operand>) {
        for s in stmts {
            self.stmt(s, pred);
        }
    }

    fn stmt(&mut self, s: &Stmt, pred: Option<Operand>) {
        self.cur_span = match s {
            Stmt::DeclLocal { span, .. } | Stmt::Assign { span, .. } | Stmt::If { span, .. } => {
                *span
            }
        };
        match s {
            Stmt::DeclLocal { name, init, .. } => {
                let rhs = match init {
                    Some(e) => self.expr(e, pred),
                    None => Operand::Const(0),
                };
                let id = self.new_field(format!("${name}"));
                self.local_ids.insert(name.clone(), id);
                // Locals come into scope here; no predicate merge needed
                // for the initial value (the variable did not exist
                // before, so the false-branch value is unobservable).
                self.emit_assign(id, TacExpr::Copy(rhs));
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let val = self.expr(rhs, pred);
                match lhs {
                    LValue::Field(f) => {
                        let id = self.field_id(f, &[]);
                        self.predicated_store(id, val, pred);
                    }
                    LValue::Local(name) => {
                        let id = self.local_ids[name];
                        self.predicated_store(id, val, pred);
                    }
                    LValue::RegElem(name, idx_e) => {
                        let idx = self.expr(idx_e, pred);
                        let reg = self.reg_ids[name];
                        self.push_instr(TacInstr::RegWrite {
                            reg,
                            idx,
                            val,
                            pred,
                        });
                        self.reg_vers[reg.index()] += 1;
                    }
                    LValue::RegScalar(name) => {
                        let reg = self.reg_ids[name];
                        self.push_instr(TacInstr::RegWrite {
                            reg,
                            idx: Operand::Const(0),
                            val,
                            pred,
                        });
                        self.reg_vers[reg.index()] += 1;
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.expr(cond, pred);
                let then_pred = self.and_pred(pred, c);
                self.block(then_branch, Some(then_pred));
                if !else_branch.is_empty() {
                    let nc = self.not(c);
                    let else_pred = self.and_pred(pred, nc);
                    self.block(else_branch, Some(else_pred));
                }
            }
        }
    }

    /// `dst = pred ? val : dst` (plain copy when unpredicated).
    fn predicated_store(&mut self, dst: FieldId, val: Operand, pred: Option<Operand>) {
        let expr = match pred {
            None => TacExpr::Copy(val),
            Some(p) => TacExpr::Ternary(p, val, Operand::Field(dst)),
        };
        self.emit_assign(dst, expr);
        self.field_vers[dst.index()] += 1;
    }

    /// Lowers an expression under an ambient read predicate, returning
    /// the operand holding its value.
    fn expr(&mut self, e: &Expr, pred: Option<Operand>) -> Operand {
        match e {
            Expr::Const(v) => Operand::Const(*v),
            Expr::Field(f) => Operand::Field(self.field_id(f, &[])),
            Expr::Local(name) => Operand::Field(self.local_ids[name]),
            Expr::RegScalar(name) => {
                let reg = self.reg_ids[name];
                self.reg_read(reg, Operand::Const(0), pred)
            }
            Expr::RegElem(name, idx_e) => {
                let idx = self.expr(idx_e, pred);
                let reg = self.reg_ids[name];
                self.reg_read(reg, idx, pred)
            }
            Expr::Binary(op, a, b) => {
                let a = self.expr(a, pred);
                let b = self.expr(b, pred);
                let key = CseKey::Binary(*op, self.vop(a), self.vop(b));
                self.cse_emit(key, TacExpr::Binary(*op, a, b))
            }
            Expr::Unary(op, a) => {
                let a = self.expr(a, pred);
                let key = CseKey::Unary(*op, self.vop(a));
                self.cse_emit(key, TacExpr::Unary(*op, a))
            }
            Expr::Ternary(c, t, f) => {
                let c = self.expr(c, pred);
                // Register reads inside the branches are predicated by
                // the branch condition (Figure 5's predicated accesses).
                let tp = self.and_pred(pred, c);
                let t = self.expr(t, Some(tp));
                let nc = self.not(c);
                let fp = self.and_pred(pred, nc);
                let f = self.expr(f, Some(fp));
                let key = CseKey::Ternary(self.vop(c), self.vop(t), self.vop(f));
                self.cse_emit(key, TacExpr::Ternary(c, t, f))
            }
            Expr::Hash2(a, b) => {
                let a = self.expr(a, pred);
                let b = self.expr(b, pred);
                let key = CseKey::Hash2(self.vop(a), self.vop(b));
                self.cse_emit(key, TacExpr::Hash2(a, b))
            }
            Expr::Hash3(a, b, c) => {
                let a = self.expr(a, pred);
                let b = self.expr(b, pred);
                let c = self.expr(c, pred);
                let key = CseKey::Hash3(self.vop(a), self.vop(b), self.vop(c));
                self.cse_emit(key, TacExpr::Hash3(a, b, c))
            }
        }
    }

    fn reg_read(&mut self, reg: RegId, idx: Operand, pred: Option<Operand>) -> Operand {
        let key = CseKey::RegRead(
            reg,
            self.vop(idx),
            self.reg_vers[reg.index()],
            pred.map(|p| self.vop(p)),
        );
        if let Some(&op) = self.cse.get(&key) {
            return op;
        }
        let dst = self.new_tmp();
        self.push_instr(TacInstr::RegRead {
            dst,
            reg,
            idx,
            pred,
        });
        let op = Operand::Field(dst);
        self.cse.insert(key, op);
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn lower_src(src: &str) -> TacProgram {
        lower(&parse(src).unwrap())
    }

    /// Runs a program serially over packets given as declared-field value
    /// vectors; returns final register state and per-packet outputs.
    fn run(tac: &TacProgram, packets: &[Vec<Value>]) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
        let mut regs = tac.initial_regs();
        let mut outs = Vec::new();
        for p in packets {
            let mut fields = vec![0; tac.field_names.len()];
            fields[..p.len()].copy_from_slice(p);
            tac.execute(&mut fields, &mut regs);
            outs.push(fields[..tac.declared_fields].to_vec());
        }
        (regs, outs)
    }

    #[test]
    fn counter_program_counts() {
        let tac = lower_src(
            "struct Packet { int seq; };
             int count = 0;
             void func(struct Packet p) {
                 count = count + 1;
                 p.seq = count;
             }",
        );
        let (regs, outs) = run(&tac, &[vec![0], vec![0], vec![0]]);
        assert_eq!(regs[0], vec![3]);
        assert_eq!(outs, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn fig3_semantics_match_paper() {
        // Packets A..D: h1=1, h3=2, mux=1 -> reg3[2] *= reg1[1] (=4).
        // Packet E: h2=3, h3=2, mux=0 -> reg3[2] += reg2[3] (=7).
        // Single-pipeline result from the paper: 4*4*4*4 + 7 = 263... the
        // paper says "4 * 4 * 4 * 4 + 7 = 135"? Working from the program
        // text: reg3[2] starts 0, A..D multiply (0*4=0 each time), E adds
        // 7 -> 7. The paper's narrative assumes an initial value; what we
        // verify here is the *serial order semantics* with explicit
        // numbers under our initializers.
        let tac = lower_src(crate::tests::FIG3);
        let mk = |h1: Value, h2: Value, h3: Value, mux: Value| vec![h1, h2, h3, 0, mux];
        let (regs, _) = run(
            &tac,
            &[
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
                mk(0, 3, 2, 0),
            ],
        );
        // reg3[2]: ((((0*4)*4)*4)*4) + 7 = 7 under serial order.
        assert_eq!(regs[2][2], 7);
        // Flip the order: E first, then A..D -> (0+7)*4*4*4*4 = 1792.
        let (regs2, _) = run(
            &tac,
            &[
                mk(0, 3, 2, 0),
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
                mk(1, 0, 2, 1),
            ],
        );
        assert_eq!(regs2[2][2], 1792, "order must matter for this program");
    }

    #[test]
    fn fig3_val_field_selects_by_mux() {
        let tac = lower_src(crate::tests::FIG3);
        let (_, outs) = run(&tac, &[vec![1, 0, 2, 0, 1], vec![0, 3, 2, 0, 0]]);
        // val is field index 3. mux=1 -> reg1[1] = 4; mux=0 -> reg2[3] = 7.
        assert_eq!(outs[0][3], 4);
        assert_eq!(outs[1][3], 7);
    }

    #[test]
    fn cse_shares_index_computation() {
        let tac = lower_src(
            "struct Packet { int h; };
             int r[4] = {0};
             void func(struct Packet p) {
                 r[p.h % 4] = r[p.h % 4] + 1;
             }",
        );
        // `p.h % 4` must be computed once; the read and write share one
        // index operand.
        let idxes: Vec<Operand> = tac
            .instrs
            .iter()
            .filter_map(|i| match i {
                TacInstr::RegRead { idx, .. } | TacInstr::RegWrite { idx, .. } => Some(*idx),
                _ => None,
            })
            .collect();
        assert_eq!(idxes.len(), 2);
        assert_eq!(
            idxes[0], idxes[1],
            "read and write must share the CSE'd index"
        );
    }

    #[test]
    fn predicated_access_only_when_taken() {
        let tac = lower_src(
            "struct Packet { int h; };
             int r[4] = {0};
             void func(struct Packet p) {
                 if (p.h > 0) { r[0] = r[0] + 1; }
             }",
        );
        let mut regs = tac.initial_regs();
        let mut f = vec![0; tac.field_names.len()];
        f[0] = 0; // predicate false
        let acc = tac.execute(&mut f, &mut regs);
        assert!(acc.is_empty(), "false branch must not access state");
        assert_eq!(regs[0][0], 0);
        let mut f = vec![0; tac.field_names.len()];
        f[0] = 5; // predicate true
        let acc = tac.execute(&mut f, &mut regs);
        assert_eq!(
            acc,
            vec![StateAccess {
                reg: RegId(0),
                index: 0
            }]
        );
        assert_eq!(regs[0][0], 1);
    }

    #[test]
    fn if_else_writes_correct_branch() {
        let tac = lower_src(
            "struct Packet { int h; int o; };
             int a = 0;
             int b = 0;
             void func(struct Packet p) {
                 if (p.h == 1) { a = a + 10; p.o = 1; }
                 else { b = b + 20; p.o = 2; }
             }",
        );
        let (regs, outs) = run(&tac, &[vec![1, 0], vec![0, 0], vec![1, 0]]);
        assert_eq!(regs[0], vec![20]);
        assert_eq!(regs[1], vec![20]);
        assert_eq!(outs, vec![vec![1, 1], vec![0, 2], vec![1, 1]]);
    }

    #[test]
    fn nested_if_composes_predicates() {
        let tac = lower_src(
            "struct Packet { int a; int b; int o; };
             void func(struct Packet p) {
                 p.o = 0;
                 if (p.a > 0) {
                     if (p.b > 0) { p.o = 3; } else { p.o = 2; }
                 }
             }",
        );
        let (_, outs) = run(&tac, &[vec![1, 1, 0], vec![1, 0, 0], vec![0, 1, 0]]);
        assert_eq!(outs[0][2], 3);
        assert_eq!(outs[1][2], 2);
        assert_eq!(outs[2][2], 0, "outer false must suppress inner else too");
    }

    #[test]
    fn negative_index_wraps_euclidean() {
        assert_eq!(TacProgram::wrap_index(4, -1), 3);
        assert_eq!(TacProgram::wrap_index(4, -5), 3);
        assert_eq!(TacProgram::wrap_index(4, 7), 3);
        assert_eq!(TacProgram::wrap_index(1, 12345), 0);
    }

    #[test]
    fn locals_flow_through() {
        let tac = lower_src(
            "struct Packet { int x; int o; };
             void func(struct Packet p) {
                 int t = p.x * 2;
                 int u = t + 1;
                 p.o = u;
             }",
        );
        let (_, outs) = run(&tac, &[vec![5, 0]]);
        assert_eq!(outs[0][1], 11);
    }

    #[test]
    fn hash_builtin_matches_types_crate() {
        let tac = lower_src(
            "struct Packet { int a; int b; int o; };
             void func(struct Packet p) { p.o = hash2(p.a, p.b); }",
        );
        let (_, outs) = run(&tac, &[vec![12, 34, 0]]);
        assert_eq!(outs[0][2], hash2(12, 34));
    }

    #[test]
    fn constant_folding_happens() {
        let tac = lower_src(
            "struct Packet { int o; };
             void func(struct Packet p) { p.o = 2 + 3 * 4; }",
        );
        // The rhs should fold to a constant: exactly one instruction,
        // assigning Const(14).
        assert_eq!(tac.instrs.len(), 1);
        match &tac.instrs[0] {
            TacInstr::Assign {
                expr: TacExpr::Copy(Operand::Const(14)),
                ..
            } => {}
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn ternary_predicates_register_reads() {
        let tac = lower_src(
            "struct Packet { int m; int o; };
             int a[2] = {10, 10};
             int b[2] = {20, 20};
             void func(struct Packet p) {
                 p.o = p.m ? a[0] : b[0];
             }",
        );
        let mut regs = tac.initial_regs();
        let mut f = vec![0; tac.field_names.len()];
        f[0] = 1;
        let acc = tac.execute(&mut f, &mut regs);
        assert_eq!(acc.len(), 1, "only the taken branch accesses state");
        assert_eq!(acc[0].reg, RegId(0));
        assert_eq!(f[1], 10);
        let mut f = vec![0; tac.field_names.len()];
        let acc = tac.execute(&mut f, &mut regs);
        assert_eq!(acc[0].reg, RegId(1));
        assert_eq!(f[1], 20);
    }

    #[test]
    fn spans_are_lockstep_and_advance() {
        let tac = lower_src(
            "struct Packet { int h; int o; };
             int r[4] = {0};
             void func(struct Packet p) {
                 r[p.h % 4] = r[p.h % 4] + 1;
                 p.o = p.h + 2;
             }",
        );
        assert_eq!(tac.instrs.len(), tac.spans.len());
        // Every instruction carries a real location...
        assert!(tac.spans.iter().all(|s| s.line > 0), "{:?}", tac.spans);
        // ...and the last instruction (from the later statement) sits on
        // a later line than the first.
        assert!(
            tac.span_of(tac.instrs.len() - 1).line > tac.span_of(0).line,
            "{:?}",
            tac.spans
        );
        // Out-of-range positions degrade to the default span.
        assert_eq!(tac.span_of(usize::MAX), crate::Span::default());
    }

    #[test]
    fn rmw_access_deduped() {
        let tac = lower_src(
            "struct Packet { int h; };
             int r[4] = {0};
             void func(struct Packet p) { r[p.h % 4] = r[p.h % 4] + 1; }",
        );
        let mut regs = tac.initial_regs();
        let mut f = vec![0; tac.field_names.len()];
        f[0] = 2;
        let acc = tac.execute(&mut f, &mut regs);
        assert_eq!(
            acc,
            vec![StateAccess {
                reg: RegId(0),
                index: 2
            }],
            "read-modify-write of one index is a single atomic access"
        );
    }
}

// ---------------------------------------------------------------------
// Pretty-printing (debugging, compiler-explorer output)
// ---------------------------------------------------------------------

impl TacProgram {
    /// Renders one operand using this program's field names.
    pub fn fmt_operand(&self, op: &Operand) -> String {
        match op {
            Operand::Const(v) => v.to_string(),
            Operand::Field(f) => self
                .field_names
                .get(f.index())
                .cloned()
                .unwrap_or_else(|| format!("$f{}", f.index())),
        }
    }

    /// Renders one expression.
    pub fn fmt_expr(&self, e: &TacExpr) -> String {
        let o = |op: &Operand| self.fmt_operand(op);
        match e {
            TacExpr::Copy(a) => o(a),
            TacExpr::Unary(op, a) => format!("{}{}", unop_sym(*op), o(a)),
            TacExpr::Binary(op, a, b) => format!("{} {} {}", o(a), binop_sym(*op), o(b)),
            TacExpr::Ternary(c, a, b) => format!("{} ? {} : {}", o(c), o(a), o(b)),
            TacExpr::Hash2(a, b) => format!("hash2({}, {})", o(a), o(b)),
            TacExpr::Hash3(a, b, c) => format!("hash3({}, {}, {})", o(a), o(b), o(c)),
        }
    }

    /// Renders one instruction.
    pub fn fmt_instr(&self, ins: &TacInstr) -> String {
        let field = |f: &mp5_types::FieldId| {
            self.field_names
                .get(f.index())
                .cloned()
                .unwrap_or_else(|| format!("$f{}", f.index()))
        };
        let pred = |p: &Option<Operand>| match p {
            None => String::new(),
            Some(p) => format!(" if {}", self.fmt_operand(p)),
        };
        match ins {
            TacInstr::Assign { dst, expr } => {
                format!("{} = {}", field(dst), self.fmt_expr(expr))
            }
            TacInstr::RegRead {
                dst,
                reg,
                idx,
                pred: p,
            } => format!(
                "{} = {}[{}]{}",
                field(dst),
                self.regs[reg.index()].name,
                self.fmt_operand(idx),
                pred(p)
            ),
            TacInstr::RegWrite {
                reg,
                idx,
                val,
                pred: p,
            } => format!(
                "{}[{}] = {}{}",
                self.regs[reg.index()].name,
                self.fmt_operand(idx),
                self.fmt_operand(val),
                pred(p)
            ),
        }
    }

    /// Renders the whole program, one instruction per line.
    pub fn dump(&self) -> String {
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, ins)| format!("[{i:>3}] {}", self.fmt_instr(ins)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn binop_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn unop_sym(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Not => "!",
    }
}

#[cfg(test)]
mod fmt_tests {
    use crate::frontend;

    #[test]
    fn dump_is_readable() {
        let tac = frontend(
            "struct Packet { int h; int o; };
             int r[4] = {0};
             void func(struct Packet p) {
                 if (p.h > 2) { r[p.h % 4] = r[p.h % 4] + 1; }
                 p.o = p.h << 1;
             }",
        )
        .unwrap();
        let text = tac.dump();
        assert!(text.contains("r["), "register access rendered: {text}");
        assert!(text.contains(" if "), "predicates rendered: {text}");
        assert!(text.contains("<<"), "shift rendered: {text}");
        assert!(text.lines().count() == tac.instrs.len());
    }

    #[test]
    fn operand_and_expr_formatting() {
        let tac = frontend(
            "struct Packet { int a; int b; };
             void func(struct Packet p) { p.b = p.a * 3 + 1; }",
        )
        .unwrap();
        let text = tac.dump();
        assert!(text.contains("a * 3"), "{text}");
    }
}
