//! Frontend error reporting.

use std::fmt;

/// A half-open byte range in the source text, with 1-based line/column of
/// its start for human-readable messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced by the language frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error: unexpected character.
    Lex {
        /// Where.
        span: Span,
        /// What was seen.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where.
        span: Span,
        /// What was expected / seen.
        message: String,
    },
    /// Semantic error (unknown name, duplicate declaration, arity, ...).
    Semantic {
        /// Where.
        span: Span,
        /// Explanation.
        message: String,
    },
}

impl LangError {
    /// The source location of the error.
    pub fn span(&self) -> Span {
        match self {
            LangError::Lex { span, .. }
            | LangError::Parse { span, .. }
            | LangError::Semantic { span, .. } => *span,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            LangError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            LangError::Semantic { span, message } => {
                write!(f, "semantic error at {span}: {message}")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = LangError::Parse {
            span: Span { line: 3, col: 7 },
            message: "expected ';'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected ';'");
        assert_eq!(e.span(), Span { line: 3, col: 7 });
    }
}
