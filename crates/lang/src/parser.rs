//! Recursive-descent parser for the Domino-like DSL.

use std::collections::HashSet;

use crate::ast::{BinOp, Expr, LValue, Program, RegDecl, Stmt, UnOp};
use crate::error::{LangError, Span};
use crate::lexer::{Tok, Token};
use mp5_types::Value;

/// Parses a token stream (from [`crate::lexer::lex`]) into a [`Program`].
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, LangError> {
    Parser {
        toks: tokens,
        pos: 0,
        regs: HashSet::new(),
        locals: HashSet::new(),
        pkt_param: String::new(),
    }
    .program()
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    regs: HashSet<String>,
    locals: HashSet<String>,
    pkt_param: String,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> &Tok {
        let t = &self.toks[self.pos].tok;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<(), LangError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> LangError {
        LangError::Parse {
            span: self.span(),
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn int_lit(&mut self) -> Result<Value, LangError> {
        // Allow a leading unary minus in initializers.
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { v.wrapping_neg() } else { v })
            }
            ref other => Err(self.err(format!("expected integer literal, found {other:?}"))),
        }
    }

    // ---------------- top level ----------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut fields = Vec::new();
        let mut regs = Vec::new();
        let mut body = None;

        while *self.peek() != Tok::Eof {
            match self.peek() {
                Tok::KwStruct => {
                    if !fields.is_empty() {
                        return Err(self.err("duplicate struct Packet declaration".into()));
                    }
                    fields = self.struct_decl()?;
                }
                Tok::KwInt => {
                    regs.push(self.reg_decl()?);
                }
                Tok::KwVoid => {
                    if body.is_some() {
                        return Err(self.err("duplicate function definition".into()));
                    }
                    // Register names must be known before the body parses.
                    self.regs = regs.iter().map(|r| r.name.clone()).collect();
                    body = Some(self.func_decl()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected struct/register/function declaration, found {other:?}"
                    )))
                }
            }
        }

        let body = body.ok_or_else(|| self.err("missing void func(struct Packet p)".into()))?;
        Ok(Program {
            fields,
            regs,
            pkt_param: std::mem::take(&mut self.pkt_param),
            body,
        })
    }

    fn struct_decl(&mut self) -> Result<Vec<String>, LangError> {
        self.eat(&Tok::KwStruct, "'struct'")?;
        let name = self.ident("struct name")?;
        if name != "Packet" {
            return Err(self.err(format!("only 'struct Packet' is supported, found '{name}'")));
        }
        self.eat(&Tok::LBrace, "'{'")?;
        let mut fields = Vec::new();
        while *self.peek() != Tok::RBrace {
            self.eat(&Tok::KwInt, "'int'")?;
            fields.push(self.ident("field name")?);
            self.eat(&Tok::Semi, "';'")?;
        }
        self.eat(&Tok::RBrace, "'}'")?;
        // Optional trailing semicolon, C-style.
        if *self.peek() == Tok::Semi {
            self.bump();
        }
        Ok(fields)
    }

    fn reg_decl(&mut self) -> Result<RegDecl, LangError> {
        let span = self.span();
        self.eat(&Tok::KwInt, "'int'")?;
        let name = self.ident("register name")?;
        let size = if *self.peek() == Tok::LBracket {
            self.bump();
            let n = self.int_lit()?;
            self.eat(&Tok::RBracket, "']'")?;
            if n <= 0 {
                return Err(self.err(format!("register '{name}' must have positive size")));
            }
            n as u32
        } else {
            1
        };
        let mut init = Vec::new();
        if *self.peek() == Tok::Assign {
            self.bump();
            if *self.peek() == Tok::LBrace {
                self.bump();
                loop {
                    init.push(self.int_lit()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::RBrace, "'}'")?;
            } else {
                init.push(self.int_lit()?);
            }
        }
        if init.len() > size as usize {
            return Err(self.err(format!(
                "register '{name}' has {} initializers but size {size}",
                init.len()
            )));
        }
        self.eat(&Tok::Semi, "';'")?;
        Ok(RegDecl {
            name,
            size,
            init,
            span,
        })
    }

    fn func_decl(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.eat(&Tok::KwVoid, "'void'")?;
        let _fname = self.ident("function name")?;
        self.eat(&Tok::LParen, "'('")?;
        self.eat(&Tok::KwStruct, "'struct'")?;
        let sname = self.ident("struct name")?;
        if sname != "Packet" {
            return Err(self.err("parameter must have type 'struct Packet'".into()));
        }
        self.pkt_param = self.ident("parameter name")?;
        self.eat(&Tok::RParen, "')'")?;
        self.block()
    }

    // ---------------- statements ----------------

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.eat(&Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace, "'}'")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                let name = self.ident("local variable name")?;
                let init = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi, "';'")?;
                self.locals.insert(name.clone());
                Ok(Stmt::DeclLocal { name, init, span })
            }
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen, "')'")?;
                let then_branch = self.stmt_or_block()?;
                let else_branch = if *self.peek() == Tok::KwElse {
                    self.bump();
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            _ => {
                let lhs = self.lvalue()?;
                self.eat(&Tok::Assign, "'='")?;
                let rhs = self.expr()?;
                self.eat(&Tok::Semi, "';'")?;
                Ok(Stmt::Assign { lhs, rhs, span })
            }
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn lvalue(&mut self) -> Result<LValue, LangError> {
        let name = self.ident("assignment target")?;
        if name == self.pkt_param {
            self.eat(&Tok::Dot, "'.'")?;
            let f = self.ident("field name")?;
            return Ok(LValue::Field(f));
        }
        if *self.peek() == Tok::LBracket {
            self.bump();
            let idx = self.expr()?;
            self.eat(&Tok::RBracket, "']'")?;
            return Ok(LValue::RegElem(name, idx));
        }
        if self.regs.contains(&name) {
            Ok(LValue::RegScalar(name))
        } else {
            Ok(LValue::Local(name))
        }
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, LangError> {
        let c = self.logic_or()?;
        if *self.peek() == Tok::Question {
            self.bump();
            let t = self.expr()?;
            self.eat(&Tok::Colon, "':'")?;
            let f = self.expr()?;
            Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(f)))
        } else {
            Ok(c)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, LangError> {
        let mut e = self.logic_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let r = self.logic_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bit_or()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let r = self.bit_or()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bit_xor()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            let r = self.bit_xor()?;
            e = Expr::Binary(BinOp::BitOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bit_and()?;
        while *self.peek() == Tok::Caret {
            self.bump();
            let r = self.bit_and()?;
            e = Expr::Binary(BinOp::BitXor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, LangError> {
        let mut e = self.comparison()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            let r = self.comparison()?;
            e = Expr::Binary(BinOp::BitAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn comparison(&mut self) -> Result<Expr, LangError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.shift()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, LangError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                // Builtin calls.
                if *self.peek() == Tok::LParen {
                    return self.builtin_call(&name);
                }
                // p.field
                if name == self.pkt_param {
                    self.eat(&Tok::Dot, "'.'")?;
                    let f = self.ident("field name")?;
                    return Ok(Expr::Field(f));
                }
                // reg[idx]
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket, "']'")?;
                    return Ok(Expr::RegElem(name, Box::new(idx)));
                }
                if self.regs.contains(&name) {
                    Ok(Expr::RegScalar(name))
                } else {
                    Ok(Expr::Local(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn builtin_call(&mut self, name: &str) -> Result<Expr, LangError> {
        self.eat(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen, "')'")?;
        let argc = args.len();
        let mut it = args.into_iter();
        match (name, argc) {
            ("hash2", 2) => Ok(Expr::Hash2(
                Box::new(it.next().unwrap()),
                Box::new(it.next().unwrap()),
            )),
            ("hash3", 3) => Ok(Expr::Hash3(
                Box::new(it.next().unwrap()),
                Box::new(it.next().unwrap()),
                Box::new(it.next().unwrap()),
            )),
            ("min", 2) => Ok(Expr::Binary(
                BinOp::Min,
                Box::new(it.next().unwrap()),
                Box::new(it.next().unwrap()),
            )),
            ("max", 2) => Ok(Expr::Binary(
                BinOp::Max,
                Box::new(it.next().unwrap()),
                Box::new(it.next().unwrap()),
            )),
            ("hash2" | "hash3" | "min" | "max", n) => {
                Err(self.err(format!("builtin '{name}' called with {n} arguments")))
            }
            _ => Err(self.err(format!("unknown function '{name}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<Program, LangError> {
        parse_tokens(&lex(src).unwrap())
    }

    const MINI: &str = r#"
        struct Packet { int h; int out; };
        int count[8] = {0};
        void func(struct Packet p) {
            count[p.h % 8] = count[p.h % 8] + 1;
            p.out = count[p.h % 8];
        }
    "#;

    #[test]
    fn parses_minimal_program() {
        let p = parse(MINI).unwrap();
        assert_eq!(p.fields, vec!["h", "out"]);
        assert_eq!(p.regs.len(), 1);
        assert_eq!(p.regs[0].size, 8);
        assert_eq!(p.pkt_param, "p");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn parses_scalar_register() {
        let p = parse(
            "struct Packet { int x; };
             int total = 5;
             void func(struct Packet p) { total = total + p.x; }",
        )
        .unwrap();
        assert_eq!(p.regs[0].size, 1);
        assert_eq!(p.regs[0].init, vec![5]);
        assert!(matches!(
            &p.body[0],
            Stmt::Assign { lhs: LValue::RegScalar(n), .. } if n == "total"
        ));
    }

    #[test]
    fn parses_if_else_and_locals() {
        let p = parse(
            "struct Packet { int a; };
             int r[2];
             void func(struct Packet p) {
                 int t = p.a * 2;
                 if (t > 10) { r[0] = t; } else r[1] = t;
             }",
        )
        .unwrap();
        assert!(matches!(&p.body[1], Stmt::If { else_branch, .. } if else_branch.len() == 1));
    }

    #[test]
    fn parses_ternary_and_precedence() {
        let p = parse(
            "struct Packet { int a; int b; };
             void func(struct Packet p) {
                 p.b = p.a == 1 ? 2 + 3 * 4 : 0;
             }",
        )
        .unwrap();
        // 2 + 3*4 must parse as 2 + (3*4).
        match &p.body[0] {
            Stmt::Assign {
                rhs: Expr::Ternary(_, t, _),
                ..
            } => match t.as_ref() {
                Expr::Binary(BinOp::Add, _, r) => {
                    assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected then-branch: {other:?}"),
            },
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_builtins() {
        let p = parse(
            "struct Packet { int a; int b; int o; };
             void func(struct Packet p) {
                 p.o = hash2(p.a, p.b) + min(p.a, p.b) + max(p.a, 1);
             }",
        )
        .unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn rejects_unknown_builtin_arity() {
        assert!(parse(
            "struct Packet { int a; };
             void func(struct Packet p) { p.a = hash2(p.a); }"
        )
        .is_err());
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(parse(
            "struct Packet { int a; };
             void func(struct Packet p) { p.a = frobnicate(p.a); }"
        )
        .is_err());
    }

    #[test]
    fn rejects_missing_function() {
        assert!(matches!(
            parse("struct Packet { int a; };"),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_oversized_initializer() {
        assert!(parse(
            "struct Packet { int a; };
             int r[2] = {1,2,3};
             void func(struct Packet p) { p.a = 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_zero_size_register() {
        assert!(parse(
            "struct Packet { int a; };
             int r[0];
             void func(struct Packet p) { p.a = 0; }"
        )
        .is_err());
    }

    #[test]
    fn parses_bitwise_and_shift_with_c_precedence() {
        // `a & b == c` parses as `a & (b == c)` in C; `a << 1 + 2` as
        // `a << (1 + 2)`; `a | b ^ c & d` as `a | (b ^ (c & d))`.
        let p = parse(
            "struct Packet { int a; int b; int c; int d; int o; };
             void func(struct Packet p) {
                 p.o = p.a & p.b == p.c;
                 p.o = p.a << 1 + 2;
                 p.o = p.a | p.b ^ p.c & p.d;
                 p.o = (p.a >> 3) & 7;
             }",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Assign {
                rhs: Expr::Binary(BinOp::BitAnd, _, r),
                ..
            } => {
                assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Eq, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &p.body[1] {
            Stmt::Assign {
                rhs: Expr::Binary(BinOp::Shl, _, r),
                ..
            } => {
                assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &p.body[2] {
            Stmt::Assign {
                rhs: Expr::Binary(BinOp::BitOr, _, r),
                ..
            } => {
                assert!(matches!(r.as_ref(), Expr::Binary(BinOp::BitXor, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negative_initializers_allowed() {
        let p = parse(
            "struct Packet { int a; };
             int r[2] = {-5, 3};
             void func(struct Packet p) { p.a = r[0]; }",
        )
        .unwrap();
        assert_eq!(p.regs[0].init, vec![-5, 3]);
    }
}
