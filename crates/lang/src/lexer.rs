//! Hand-written lexer for the Domino-like DSL.

use crate::error::{LangError, Span};
use mp5_types::Value;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (variable, register, field, function name).
    Ident(String),
    /// Integer literal.
    Int(Value),
    /// `struct` keyword.
    KwStruct,
    /// `int` keyword.
    KwInt,
    /// `void` keyword.
    KwVoid,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `=`.
    Assign,
    /// `?`.
    Question,
    /// `:`.
    Colon,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Not,
    /// `&` (bitwise and).
    Amp,
    /// `|` (bitwise or).
    Pipe,
    /// `^` (bitwise xor).
    Caret,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// End of input sentinel.
    Eof,
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Location of the first character.
    pub span: Span,
}

/// Lexes a source string into tokens (ending with [`Tok::Eof`]).
///
/// Supports `//` line comments and `/* ... */` block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let span = Span { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LangError::Lex {
                            span,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let v: Value = text.parse().map_err(|_| LangError::Lex {
                    span,
                    message: format!("integer literal out of range: {text}"),
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    span,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let text = &src[start..i];
                let tok = match text {
                    "struct" => Tok::KwStruct,
                    "int" => Tok::KwInt,
                    "void" => Tok::KwVoid,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    _ => Tok::Ident(text.to_string()),
                };
                out.push(Token { tok, span });
            }
            _ => {
                // Two-character operators, compared at the byte level so
                // multi-byte UTF-8 input cannot cause a boundary panic.
                let two = if i + 1 < bytes.len() {
                    [bytes[i], bytes[i + 1]]
                } else {
                    [bytes[i], 0]
                };
                let (tok, len) = match &two {
                    b"==" => (Tok::Eq, 2),
                    b"!=" => (Tok::Ne, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"&&" => (Tok::AndAnd, 2),
                    b"||" => (Tok::OrOr, 2),
                    b"<<" => (Tok::Shl, 2),
                    b">>" => (Tok::Shr, 2),
                    _ => {
                        let t = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b';' => Tok::Semi,
                            b',' => Tok::Comma,
                            b'.' => Tok::Dot,
                            b'=' => Tok::Assign,
                            b'?' => Tok::Question,
                            b':' => Tok::Colon,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'!' => Tok::Not,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            other => {
                                return Err(LangError::Lex {
                                    span,
                                    message: format!("unexpected character '{}'", other as char),
                                })
                            }
                        };
                        (t, 1)
                    }
                };
                for _ in 0..len {
                    bump!();
                }
                out.push(Token { tok, span });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("struct int void if else foo"),
            vec![
                Tok::KwStruct,
                Tok::KwInt,
                Tok::KwVoid,
                Tok::KwIf,
                Tok::KwElse,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || < > ! ="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Not,
                Tok::Assign,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 1000000"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(1_000_000), Tok::Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n b /* block\n comment */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(matches!(lex("a @ b"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(matches!(lex("/* oops"), Err(LangError::Lex { .. })));
    }
}
