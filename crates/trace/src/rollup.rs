//! Per-stage / per-register metrics rollups over a recorded stream.
//!
//! Where the auditor ([`mod@crate::audit`]) asks *"was the run correct?"*,
//! the rollup asks *"where did the cycles and queue slots go?"*: it
//! folds an event stream into per-`(pipeline, stage)` service counters
//! and occupancy histograms, per-register access/wait statistics, and
//! a crossbar steering matrix. `mp5-sim` renders these as aligned
//! tables, and `mp5run --rollup` writes them as CSV.

use std::collections::{BTreeMap, HashMap};

use crate::event::{Event, EventKind, Key};

/// A log₂-bucketed histogram of queue occupancies.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i - 1]` (bucket 0 counts
/// zeros, bucket 1 counts ones) — compact at any depth, detailed where
/// it matters (shallow queues).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    /// Largest sampled value.
    pub max: u64,
    /// Number of samples.
    pub samples: u64,
    /// Sum of samples (for the mean).
    pub sum: u64,
}

impl Histogram {
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.max = self.max.max(v);
        self.samples += 1;
        self.sum += v;
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// `(upper bound, count)` per non-empty bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                (hi, c)
            })
            .collect()
    }

    /// Compact `ub:count` rendering, e.g. `0:12 1:5 4:2`.
    pub fn render(&self) -> String {
        self.buckets()
            .iter()
            .map(|(hi, c)| format!("{hi}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Service and queue counters for one `(pipeline, stage)`.
#[derive(Debug, Clone, Default)]
pub struct StageRollup {
    /// Incoming pass-through executions (`exec` with `queued:false`).
    pub pass_through: u64,
    /// Pass-throughs taken while stateful work was queued (Invariant 2
    /// in action).
    pub bypasses: u64,
    /// Packets served from the stage FIFO.
    pub queued_served: u64,
    /// Stateful register accesses performed here.
    pub accesses: u64,
    /// Phantoms delivered into this stage's FIFO.
    pub phantom_enq: u64,
    /// Data packets that replaced their phantom here.
    pub data_match: u64,
    /// Direct data pushes (no-phantom modes).
    pub data_enq: u64,
    /// Pop cycles wasted reclaiming speculative-false phantoms.
    pub stale_cycles: u64,
    /// Pop cycles stalled behind a phantom (D4 order freeze).
    pub blocked_cycles: u64,
    /// Packets dropped at this stage (all causes).
    pub drops: u64,
    /// Packets steered *out of* this pipeline by the crossbar in front
    /// of this stage.
    pub steered_out: u64,
    /// Queue occupancy sampled after every queue-affecting event.
    pub occupancy: Histogram,
    occ: i64,
}

/// Access and phantom-wait statistics for one register array.
#[derive(Debug, Clone, Default)]
pub struct RegRollup {
    /// Total accesses.
    pub accesses: u64,
    /// Distinct indexes touched.
    pub hot_indexes: u64,
    /// Dynamic-sharding migrations of this array's indexes.
    pub remap_moves: u64,
    /// Completed phantom waits (enqueue → data match), in cycles.
    pub phantom_waits: Histogram,
    /// Data packets orphaned (phantom lost) on this array.
    pub orphans: u64,
}

/// The folded view of one event stream.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    /// Per-(pipeline, stage) counters, sorted.
    pub stages: BTreeMap<(u16, u16), StageRollup>,
    /// Per-register counters, sorted by register id.
    pub regs: BTreeMap<u16, RegRollup>,
    /// Crossbar traffic: packets per (from, to) pipeline pair,
    /// off-diagonal only.
    pub steers: BTreeMap<(u16, u16), u64>,
    /// Events folded.
    pub events: u64,
    /// Last cycle observed.
    pub cycles: u64,
}

impl Rollup {
    /// Folds a stream into a rollup.
    pub fn from_events(events: &[Event]) -> Self {
        let mut r = Rollup::default();
        let mut enq_cycle: HashMap<Key, u64> = HashMap::new();
        let mut touched: HashMap<u16, std::collections::HashSet<u32>> = HashMap::new();
        for ev in events {
            r.events += 1;
            r.cycles = r.cycles.max(ev.cycle);
            let stage = r.stages.entry((ev.pipeline, ev.stage)).or_default();
            let mut occ_delta: Option<i64> = None;
            match &ev.kind {
                EventKind::Execute {
                    queued, bypassed, ..
                } => {
                    if *queued {
                        stage.queued_served += 1;
                    } else {
                        stage.pass_through += 1;
                        if *bypassed {
                            stage.bypasses += 1;
                        }
                    }
                }
                EventKind::Access { reg, index, .. } => {
                    stage.accesses += 1;
                    let rr = r.regs.entry(reg.0).or_default();
                    rr.accesses += 1;
                    touched.entry(reg.0).or_default().insert(*index);
                }
                EventKind::PhantomEnq { key } => {
                    stage.phantom_enq += 1;
                    enq_cycle.insert(*key, ev.cycle);
                    occ_delta = Some(1);
                }
                EventKind::DataMatch { key } => {
                    stage.data_match += 1;
                    if let Some(start) = enq_cycle.remove(key) {
                        r.regs
                            .entry(key.reg.0)
                            .or_default()
                            .phantom_waits
                            .record(ev.cycle.saturating_sub(start));
                    }
                    occ_delta = Some(0);
                }
                EventKind::DataOrphan { key } => {
                    r.regs.entry(key.reg.0).or_default().orphans += 1;
                }
                EventKind::DataEnq { .. } => {
                    stage.data_enq += 1;
                    occ_delta = Some(1);
                }
                EventKind::PopData { .. } => occ_delta = Some(-1),
                EventKind::PopStale => {
                    stage.stale_cycles += 1;
                    occ_delta = Some(-1);
                }
                EventKind::PopBlocked { .. } => stage.blocked_cycles += 1,
                EventKind::PhantomCancel { key, free } => {
                    enq_cycle.remove(key);
                    // Free cancels vanish without service; costly ones
                    // leave a stale entry reclaimed by a later pop.
                    if *free {
                        occ_delta = Some(-1);
                    }
                }
                EventKind::Drop { .. } => stage.drops += 1,
                EventKind::Steer { from, to } => {
                    if from != to {
                        *r.steers.entry((*from, *to)).or_default() += 1;
                        stage.steered_out += 1;
                    }
                }
                EventKind::RemapMove { reg, .. } => {
                    r.regs.entry(reg.0).or_default().remap_moves += 1;
                }
                EventKind::PhantomRecovered { .. } => {
                    // A fault-recovered data packet enters the stage
                    // FIFO directly (its phantom was lost upstream).
                    occ_delta = Some(1);
                }
                EventKind::Ingress { .. }
                | EventKind::Egress { .. }
                | EventKind::Recirculate { .. }
                | EventKind::PhantomEmit { .. }
                | EventKind::PhantomChannelCancel { .. }
                | EventKind::PhantomDropFull { .. }
                | EventKind::DataEnqDropFull { .. }
                | EventKind::FaultInjected { .. }
                | EventKind::FaultPhantomLost { .. }
                | EventKind::PipelineEvacuated { .. }
                | EventKind::SnapshotTaken { .. }
                | EventKind::Restored { .. }
                | EventKind::ProgramSwapped { .. } => {}
            }
            if let Some(d) = occ_delta {
                stage.occ = (stage.occ + d).max(0);
                stage.occupancy.record(stage.occ as u64);
            }
        }
        for (reg, idxs) in touched {
            r.regs.entry(reg).or_default().hot_indexes = idxs.len() as u64;
        }
        r
    }

    /// Column headers of [`Rollup::stage_rows`].
    pub const STAGE_HEADERS: [&'static str; 12] = [
        "pipeline",
        "stage",
        "pass_through",
        "bypasses",
        "queued_served",
        "accesses",
        "phantom_enq",
        "data_match",
        "stale_cycles",
        "blocked_cycles",
        "drops",
        "occupancy",
    ];

    /// One row per `(pipeline, stage)` with any activity, matching
    /// [`Rollup::STAGE_HEADERS`]. The occupancy column is the
    /// histogram's compact `ub:count` form.
    pub fn stage_rows(&self) -> Vec<Vec<String>> {
        self.stages
            .iter()
            .map(|(&(p, s), st)| {
                vec![
                    p.to_string(),
                    s.to_string(),
                    st.pass_through.to_string(),
                    st.bypasses.to_string(),
                    st.queued_served.to_string(),
                    st.accesses.to_string(),
                    st.phantom_enq.to_string(),
                    st.data_match.to_string(),
                    st.stale_cycles.to_string(),
                    st.blocked_cycles.to_string(),
                    st.drops.to_string(),
                    st.occupancy.render(),
                ]
            })
            .collect()
    }

    /// Column headers of [`Rollup::reg_rows`].
    pub const REG_HEADERS: [&'static str; 7] = [
        "reg",
        "accesses",
        "hot_indexes",
        "remap_moves",
        "orphans",
        "mean_phantom_wait",
        "max_phantom_wait",
    ];

    /// One row per register array, matching [`Rollup::REG_HEADERS`].
    pub fn reg_rows(&self) -> Vec<Vec<String>> {
        self.regs
            .iter()
            .map(|(&reg, rr)| {
                vec![
                    format!("r{reg}"),
                    rr.accesses.to_string(),
                    rr.hot_indexes.to_string(),
                    rr.remap_moves.to_string(),
                    rr.orphans.to_string(),
                    format!("{:.2}", rr.phantom_waits.mean()),
                    rr.phantom_waits.max.to_string(),
                ]
            })
            .collect()
    }

    /// Renders the full rollup as CSV: a stage section, a register
    /// section, and a steering-matrix section, separated by blank
    /// lines. Occupancy histograms are quoted (they contain spaces,
    /// not commas, but quoting keeps naive splitters honest).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&Self::STAGE_HEADERS.join(","));
        out.push('\n');
        for row in self.stage_rows() {
            let (head, occ) = row.split_at(row.len() - 1);
            out.push_str(&head.join(","));
            out.push_str(&format!(",\"{}\"\n", occ[0]));
        }
        out.push('\n');
        out.push_str(&Self::REG_HEADERS.join(","));
        out.push('\n');
        for row in self.reg_rows() {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        if !self.steers.is_empty() {
            out.push('\n');
            out.push_str("steer_from,steer_to,packets\n");
            for (&(f, t), n) in &self.steers {
                out.push_str(&format!("{f},{t},{n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_types::{PacketId, RegId};

    #[test]
    fn histogram_buckets_log2() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 4, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.max, 9);
        assert_eq!(h.samples, 8);
        // zeros=2, ones=1, [2,3]=2, [4,7]=2, [8,15]=1
        assert_eq!(h.buckets(), vec![(0, 2), (1, 1), (3, 2), (7, 2), (15, 1)]);
        assert!(h.render().starts_with("0:2 1:1"));
    }

    #[test]
    fn phantom_wait_is_match_minus_enqueue() {
        let key = Key {
            pkt: PacketId(1),
            reg: RegId(2),
            index: 0,
        };
        let evs = vec![
            Event {
                cycle: 10,
                pipeline: 0,
                stage: 3,
                kind: EventKind::PhantomEnq { key },
            },
            Event {
                cycle: 17,
                pipeline: 0,
                stage: 3,
                kind: EventKind::DataMatch { key },
            },
        ];
        let r = Rollup::from_events(&evs);
        let rr = &r.regs[&2];
        assert_eq!(rr.phantom_waits.samples, 1);
        assert_eq!(rr.phantom_waits.max, 7);
        let st = &r.stages[&(0, 3)];
        assert_eq!(st.phantom_enq, 1);
        assert_eq!(st.data_match, 1);
    }

    #[test]
    fn steers_accumulate_off_diagonal_only() {
        let mk = |from, to| Event {
            cycle: 0,
            pipeline: from,
            stage: 1,
            kind: EventKind::Steer { from, to },
        };
        let r = Rollup::from_events(&[mk(0, 2), mk(0, 2), mk(1, 1)]);
        assert_eq!(r.steers.get(&(0, 2)), Some(&2));
        assert_eq!(r.steers.get(&(1, 1)), None);
        assert_eq!(r.stages[&(0, 1)].steered_out, 2);
    }

    #[test]
    fn csv_has_all_three_sections() {
        let key = Key {
            pkt: PacketId(1),
            reg: RegId(0),
            index: 0,
        };
        let evs = vec![
            Event {
                cycle: 1,
                pipeline: 0,
                stage: 2,
                kind: EventKind::PhantomEnq { key },
            },
            Event {
                cycle: 2,
                pipeline: 0,
                stage: 2,
                kind: EventKind::Steer { from: 0, to: 1 },
            },
        ];
        let csv = Rollup::from_events(&evs).to_csv();
        assert!(csv.starts_with("pipeline,stage,"));
        assert!(csv.contains("reg,accesses,"));
        assert!(csv.contains("steer_from,steer_to,packets"));
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            Rollup::STAGE_HEADERS.len()
        );
    }

    #[test]
    fn occupancy_tracks_enq_and_pop() {
        let key = |p| Key {
            pkt: PacketId(p),
            reg: RegId(0),
            index: 0,
        };
        let mk = |cycle, kind| Event {
            cycle,
            pipeline: 0,
            stage: 2,
            kind,
        };
        let evs = vec![
            mk(0, EventKind::PhantomEnq { key: key(0) }),
            mk(1, EventKind::PhantomEnq { key: key(1) }),
            mk(2, EventKind::DataMatch { key: key(0) }),
            mk(3, EventKind::PopData { pkt: PacketId(0) }),
            mk(4, EventKind::DataMatch { key: key(1) }),
            mk(5, EventKind::PopData { pkt: PacketId(1) }),
        ];
        let r = Rollup::from_events(&evs);
        let occ = &r.stages[&(0, 2)].occupancy;
        assert_eq!(occ.max, 2);
        // Samples: 1, 2, 2, 1, 1, 0.
        assert_eq!(occ.samples, 6);
        assert_eq!(occ.sum, 7);
    }
}
