//! The offline invariant auditor.
//!
//! [`audit`] replays a recorded event stream and *independently*
//! re-verifies the correctness claims of the paper's runtime design:
//!
//! * **Invariant 1** — a phantom reaches the destination FIFO before
//!   its data packet. Observable as: every `data_match` finds its key
//!   in the *enqueued* state, and no `data_orphan` hits a key whose
//!   phantom is still in flight.
//! * **Invariant 2** — incoming pass-through packets have priority
//!   over queued stateful work. Observable as: each `(cycle, pipeline,
//!   stage)` slot executes at most one packet, and every queued
//!   service is a `pop_data` / `exec(queued)` pair for the same packet
//!   in the same slot.
//! * **Condition C1** — per register index, the actual access sequence
//!   equals the switch entry order. The reference order is rebuilt
//!   from the entry-order keys carried in `access` events, *not* from
//!   the simulator's reference run, so this is a second implementation
//!   of `mp5-sim`'s online check.
//! * **Packet conservation** — every admitted packet leaves exactly
//!   once (egress or a counted drop), and nothing leaves that never
//!   entered.
//! * **Phantom/data pairing** — every emitted phantom is resolved
//!   exactly once: matched by its data packet, dropped on a full lane,
//!   cancelled on the channel, or cancelled in a FIFO.
//!
//! The checker deliberately shares *no* code with `mp5-core`: it sees
//! only the serialized event stream, so agreement between the two is
//! evidence about the switch, not about one shared implementation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mp5_types::PacketId;

use crate::event::{Event, EventKind, Key};

/// One observed access: the packet and its reference order key.
type AccessSeq = Vec<(PacketId, (u64, u64))>;

/// Which auditor check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Invariant 1: phantom precedes data at the destination FIFO.
    Inv1,
    /// Invariant 2: incoming pass-through priority / one packet per
    /// stage per cycle.
    Inv2,
    /// Condition C1: per-index serial access order equals entry order.
    C1,
    /// Packet conservation: one admission, one exit, per packet.
    Conservation,
    /// Phantom lifecycle: emit → (enqueue → match/cancel) | drop.
    Pairing,
    /// Stream well-formedness (monotonic cycles, consistent flags).
    Stream,
}

impl Check {
    /// Short machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Check::Inv1 => "inv1",
            Check::Inv2 => "inv2",
            Check::C1 => "c1",
            Check::Conservation => "conservation",
            Check::Pairing => "pairing",
            Check::Stream => "stream",
        }
    }

    /// Human description of what the check verifies.
    pub fn describes(self) -> &'static str {
        match self {
            Check::Inv1 => "phantom precedes data",
            Check::Inv2 => "stateless pass-through priority",
            Check::C1 => "serial access order per index",
            Check::Conservation => "packet conservation",
            Check::Pairing => "phantom/data pairing",
            Check::Stream => "stream well-formedness",
        }
    }

    const ALL: [Check; 6] = [
        Check::Inv1,
        Check::Inv2,
        Check::C1,
        Check::Conservation,
        Check::Pairing,
        Check::Stream,
    ];
}

impl std::fmt::Display for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One concrete violation, located in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated check.
    pub check: Check,
    /// Cycle of the offending event (or of detection, for end-of-stream
    /// findings).
    pub cycle: u64,
    /// Pipeline of the offending event, [`crate::event::NO_LOC`] if global.
    pub pipeline: u16,
    /// Stage of the offending event, [`crate::event::NO_LOC`] if global.
    pub stage: u16,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] cycle {} p{}/s{}: {}",
            self.check, self.cycle, self.pipeline, self.stage, self.detail
        )
    }
}

/// The auditor's verdict over one event stream.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events examined.
    pub events: u64,
    /// Distinct packets admitted.
    pub packets: u64,
    /// Violation counts per check (every violation is counted, even
    /// when its finding was suppressed by the cap).
    pub violations: BTreeMap<Check, u64>,
    /// Retained findings (at most `max_findings` per check).
    pub findings: Vec<Finding>,
    /// Findings dropped by the per-check cap.
    pub suppressed: u64,
    /// Packets that violated C1 (overtook the serial order, per the
    /// same overtaker attribution as `mp5-sim`'s online counter).
    pub c1_violators: BTreeSet<PacketId>,
    /// Packets that performed at least one stateful access.
    pub c1_accessors: u64,
}

impl AuditReport {
    /// Total violations across all checks.
    pub fn total_violations(&self) -> u64 {
        self.violations.values().sum()
    }

    /// Violations of one check.
    pub fn count(&self, check: Check) -> u64 {
        self.violations.get(&check).copied().unwrap_or(0)
    }

    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Fraction of accessors that violated C1 — directly comparable to
    /// `mp5-sim`'s online `c1_violation_fraction`.
    pub fn c1_fraction(&self) -> f64 {
        if self.c1_accessors == 0 {
            0.0
        } else {
            self.c1_violators.len() as f64 / self.c1_accessors as f64
        }
    }

    /// Renders the report as a flat JSON object (same hand-rolled,
    /// dependency-free style as the event codec).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"events\":{},\"packets\":{},\"clean\":{},\"c1_accessors\":{},\"c1_violators\":{}",
            self.events,
            self.packets,
            self.is_clean(),
            self.c1_accessors,
            self.c1_violators.len()
        );
        let _ = write!(s, ",\"violations\":{{");
        for (i, c) in Check::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", c.label(), self.count(*c));
        }
        let _ = write!(s, "}},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"check\":\"{}\",\"cycle\":{},\"pipeline\":{},\"stage\":{},\"detail\":\"{}\"}}",
                f.check,
                f.cycle,
                f.pipeline,
                f.stage,
                f.detail.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let _ = write!(s, "],\"suppressed\":{}}}", self.suppressed);
        s
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audited {} events, {} packets: {}",
            self.events,
            self.packets,
            if self.is_clean() {
                "CLEAN".to_string()
            } else {
                format!("{} violation(s)", self.total_violations())
            }
        )?;
        for c in Check::ALL {
            writeln!(
                f,
                "  {:<14} ({}): {}",
                c.label(),
                c.describes(),
                self.count(c)
            )?;
        }
        if self.c1_accessors > 0 {
            writeln!(
                f,
                "  c1 fraction: {:.4} ({} of {} accessors)",
                self.c1_fraction(),
                self.c1_violators.len(),
                self.c1_accessors
            )?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        if self.suppressed > 0 {
            writeln!(f, "  ... {} further finding(s) suppressed", self.suppressed)?;
        }
        Ok(())
    }
}

/// Phantom lifecycle states tracked per [`Key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhState {
    /// Emitted onto the channel, not yet delivered.
    Emitted,
    /// Delivered into a stage FIFO, awaiting its data packet.
    Enqueued,
    /// Replaced by its data packet.
    Matched,
    /// Dropped on a full lane, or cancelled (channel or FIFO).
    Dead,
    /// Lost to an *injected fault*, with the loss recorded so the
    /// switch can recover the data packet into FIFO order later. The
    /// legal exits are `PhantomRecovered` (data arrived, recovered)
    /// or end-of-trace (data was dropped for an unrelated reason —
    /// conservation accounts for it).
    Lost,
}

/// Configurable auditor. [`audit`] runs it with defaults.
#[derive(Debug, Clone)]
pub struct Auditor {
    /// Retained findings per check; further violations are still
    /// counted but their findings suppressed.
    pub max_findings: usize,
}

impl Default for Auditor {
    fn default() -> Self {
        Auditor { max_findings: 20 }
    }
}

impl Auditor {
    /// An auditor retaining at most `max_findings` findings per check.
    pub fn new(max_findings: usize) -> Self {
        Auditor { max_findings }
    }

    /// Replays `events` and checks every invariant.
    pub fn run(&self, events: &[Event]) -> AuditReport {
        let mut rep = AuditReport {
            events: events.len() as u64,
            ..Default::default()
        };
        let mut phantoms: HashMap<Key, PhState> = HashMap::new();
        // Per-packet (admissions, exits).
        let mut pkts: HashMap<PacketId, (u32, u32)> = HashMap::new();
        // Per-(reg, index) actual access sequence, in stream order.
        let mut accesses: BTreeMap<(u16, u32), AccessSeq> = BTreeMap::new();
        // Per-slot bookkeeping, valid within the current cycle only.
        let mut cur_cycle: u64 = 0;
        let mut execs: HashMap<(u16, u16), u8> = HashMap::new();
        let mut pending_pop: HashMap<(u16, u16), PacketId> = HashMap::new();

        let max = self.max_findings;
        let flag = |rep: &mut AuditReport, check: Check, loc: (u64, u16, u16), detail: String| {
            *rep.violations.entry(check).or_insert(0) += 1;
            let per_check = rep.findings.iter().filter(|f| f.check == check).count();
            if per_check < max {
                rep.findings.push(Finding {
                    check,
                    cycle: loc.0,
                    pipeline: loc.1,
                    stage: loc.2,
                    detail,
                });
            } else {
                rep.suppressed += 1;
            }
        };
        let at = |ev: &Event| (ev.cycle, ev.pipeline, ev.stage);
        let global = |cycle: u64| (cycle, crate::event::NO_LOC, crate::event::NO_LOC);

        for ev in events {
            if ev.cycle < cur_cycle {
                flag(
                    &mut rep,
                    Check::Stream,
                    at(ev),
                    format!("cycle went backwards ({} after {})", ev.cycle, cur_cycle),
                );
            }
            if ev.cycle != cur_cycle {
                // Slot bookkeeping closes at each cycle boundary: a pop
                // that never became an execute is a lost service slot.
                for ((p, st), pkt) in pending_pop.drain() {
                    let detail = format!("pop_data(pkt{}) at p{p}/s{st} never executed", pkt.0);
                    flag(&mut rep, Check::Inv2, global(cur_cycle), detail);
                }
                execs.clear();
                cur_cycle = ev.cycle;
            }
            match &ev.kind {
                EventKind::Ingress { pkt, .. } => {
                    pkts.entry(*pkt).or_insert((0, 0)).0 += 1;
                }
                EventKind::Egress { pkt } | EventKind::Drop { pkt, .. } => {
                    pkts.entry(*pkt).or_insert((0, 0)).1 += 1;
                }
                EventKind::Execute {
                    pkt,
                    queued,
                    bypassed,
                } => {
                    let slot = (ev.pipeline, ev.stage);
                    let n = execs.entry(slot).or_insert(0);
                    *n += 1;
                    if *n > 1 {
                        flag(
                            &mut rep,
                            Check::Inv2,
                            at(ev),
                            format!("{} packets executed in one stage-cycle", *n),
                        );
                    }
                    if *bypassed && *queued {
                        flag(
                            &mut rep,
                            Check::Stream,
                            at(ev),
                            "queued service flagged as a bypass".into(),
                        );
                    }
                    match (pending_pop.remove(&slot), queued) {
                        (Some(popped), true) if popped == *pkt => {}
                        (Some(popped), true) => flag(
                            &mut rep,
                            Check::Inv2,
                            at(ev),
                            format!(
                                "queued execute of pkt{} but pop_data dequeued pkt{}",
                                pkt.0, popped.0
                            ),
                        ),
                        (None, true) => flag(
                            &mut rep,
                            Check::Inv2,
                            at(ev),
                            format!("queued execute of pkt{} without a pop_data", pkt.0),
                        ),
                        (Some(popped), false) => flag(
                            &mut rep,
                            Check::Inv2,
                            at(ev),
                            format!(
                                "pass-through pkt{} executed over dequeued pkt{}",
                                pkt.0, popped.0
                            ),
                        ),
                        (None, false) => {}
                    }
                }
                EventKind::Access {
                    pkt,
                    reg,
                    index,
                    order,
                } => {
                    accesses
                        .entry((reg.0, *index))
                        .or_default()
                        .push((*pkt, *order));
                }
                EventKind::PhantomEmit { key, .. } => {
                    if phantoms.insert(*key, PhState::Emitted).is_some() {
                        flag(
                            &mut rep,
                            Check::Pairing,
                            at(ev),
                            format!("duplicate phantom emission for {key}"),
                        );
                    }
                }
                EventKind::PhantomEnq { key } => match phantoms.insert(*key, PhState::Enqueued) {
                    Some(PhState::Emitted) => {}
                    other => flag(
                        &mut rep,
                        Check::Pairing,
                        at(ev),
                        format!("phantom {key} enqueued from state {other:?}"),
                    ),
                },
                EventKind::PhantomDropFull { key } => match phantoms.insert(*key, PhState::Dead) {
                    Some(PhState::Emitted) => {}
                    other => flag(
                        &mut rep,
                        Check::Pairing,
                        at(ev),
                        format!("phantom {key} dropped-full from state {other:?}"),
                    ),
                },
                EventKind::PhantomChannelCancel { key } => {
                    match phantoms.insert(*key, PhState::Dead) {
                        Some(PhState::Emitted) => {}
                        other => flag(
                            &mut rep,
                            Check::Pairing,
                            at(ev),
                            format!("channel cancel of {key} from state {other:?}"),
                        ),
                    }
                }
                EventKind::PhantomCancel { key, .. } => {
                    match phantoms.insert(*key, PhState::Dead) {
                        Some(PhState::Enqueued) => {}
                        other => flag(
                            &mut rep,
                            Check::Pairing,
                            at(ev),
                            format!("FIFO cancel of {key} from state {other:?}"),
                        ),
                    }
                }
                EventKind::DataMatch { key } => match phantoms.insert(*key, PhState::Matched) {
                    Some(PhState::Enqueued) => {}
                    Some(PhState::Emitted) => flag(
                        &mut rep,
                        Check::Inv1,
                        at(ev),
                        format!("data for {key} reached the FIFO before its phantom"),
                    ),
                    other => flag(
                        &mut rep,
                        Check::Inv1,
                        at(ev),
                        format!("data matched {key} from state {other:?}"),
                    ),
                },
                EventKind::DataOrphan { key } => match phantoms.get(key) {
                    Some(PhState::Dead) => {}
                    Some(PhState::Emitted) => flag(
                        &mut rep,
                        Check::Inv1,
                        at(ev),
                        format!("data for {key} overtook its phantom still on the channel"),
                    ),
                    other => flag(
                        &mut rep,
                        Check::Pairing,
                        at(ev),
                        format!("orphaned data for {key} in state {other:?}"),
                    ),
                },
                EventKind::PopData { pkt } => {
                    let slot = (ev.pipeline, ev.stage);
                    if let Some(prev) = pending_pop.insert(slot, *pkt) {
                        flag(
                            &mut rep,
                            Check::Inv2,
                            at(ev),
                            format!("two pops (pkt{}, pkt{}) in one stage-cycle", prev.0, pkt.0),
                        );
                    }
                }
                EventKind::FaultPhantomLost { key } => match phantoms.insert(*key, PhState::Lost) {
                    Some(PhState::Emitted) => {}
                    other => flag(
                        &mut rep,
                        Check::Pairing,
                        at(ev),
                        format!("fault lost phantom {key} from state {other:?}"),
                    ),
                },
                EventKind::PhantomRecovered { key } => {
                    match phantoms.insert(*key, PhState::Matched) {
                        Some(PhState::Lost) => {}
                        other => flag(
                            &mut rep,
                            Check::Inv1,
                            at(ev),
                            format!("recovery of {key} from state {other:?} (only fault-lost phantoms may be recovered)"),
                        ),
                    }
                }
                EventKind::RemapMove { .. }
                | EventKind::Recirculate { .. }
                | EventKind::DataEnq { .. }
                | EventKind::DataEnqDropFull { .. }
                | EventKind::PopStale
                | EventKind::PopBlocked { .. }
                | EventKind::Steer { .. }
                | EventKind::FaultInjected { .. }
                | EventKind::PipelineEvacuated { .. }
                // Lifecycle markers (checkpoint / restore / hot-swap)
                // describe operator actions, not packet behavior; a
                // well-formed stream is invariant-clean with or without
                // them, which is exactly what the kill-restore chaos
                // campaign audits.
                | EventKind::SnapshotTaken { .. }
                | EventKind::Restored { .. }
                | EventKind::ProgramSwapped { .. } => {}
            }
        }
        for ((p, st), pkt) in pending_pop.drain() {
            let detail = format!("pop_data(pkt{}) at p{p}/s{st} never executed", pkt.0);
            flag(&mut rep, Check::Inv2, global(cur_cycle), detail);
        }

        // End-of-stream: every phantom must be resolved.
        let mut unresolved: Vec<(Key, PhState)> = phantoms
            .into_iter()
            .filter(|(_, st)| matches!(st, PhState::Emitted | PhState::Enqueued))
            .collect();
        unresolved.sort_by_key(|(k, _)| *k);
        for (key, st) in unresolved {
            flag(
                &mut rep,
                Check::Pairing,
                global(cur_cycle),
                format!("phantom {key} left in state {st:?} at end of trace"),
            );
        }

        // Packet conservation.
        rep.packets = pkts.values().filter(|(ing, _)| *ing > 0).count() as u64;
        let mut by_pkt: Vec<(PacketId, (u32, u32))> = pkts.into_iter().collect();
        by_pkt.sort_by_key(|(p, _)| *p);
        for (pkt, (ingress, exits)) in by_pkt {
            if ingress == 0 {
                flag(
                    &mut rep,
                    Check::Conservation,
                    global(cur_cycle),
                    format!("pkt{} exited without ever being admitted", pkt.0),
                );
            } else if ingress > 1 {
                flag(
                    &mut rep,
                    Check::Conservation,
                    global(cur_cycle),
                    format!("pkt{} admitted {ingress} times", pkt.0),
                );
            }
            if ingress > 0 && exits == 0 {
                flag(
                    &mut rep,
                    Check::Conservation,
                    global(cur_cycle),
                    format!("pkt{} neither egressed nor dropped", pkt.0),
                );
            } else if exits > 1 {
                flag(
                    &mut rep,
                    Check::Conservation,
                    global(cur_cycle),
                    format!("pkt{} left the switch {exits} times", pkt.0),
                );
            }
        }

        // Condition C1: per index, the actual sequence must follow the
        // entry order. Reference ranks come from the order keys the
        // events carry; the violator attribution (right-to-left minimum
        // scan marking overtakers) mirrors `mp5-sim`'s online counter so
        // the two independently-computed counts are comparable.
        let mut accessors: BTreeSet<PacketId> = BTreeSet::new();
        for ((reg, index), seq) in &accesses {
            accessors.extend(seq.iter().map(|(p, _)| *p));
            let mut reference: Vec<(u64, u64, PacketId)> =
                seq.iter().map(|(p, o)| (o.0, o.1, *p)).collect();
            reference.sort_by_key(|&(o1, o2, _)| (o1, o2));
            let rank: HashMap<PacketId, usize> = reference
                .iter()
                .enumerate()
                .map(|(i, &(_, _, p))| (p, i))
                .collect();
            let mut min_rank_right = usize::MAX;
            let mut violators_here: Vec<PacketId> = Vec::new();
            for (p, _) in seq.iter().rev() {
                let r = rank[p];
                if r > min_rank_right {
                    violators_here.push(*p);
                }
                min_rank_right = min_rank_right.min(r);
            }
            if !violators_here.is_empty() {
                violators_here.reverse();
                let detail = format!(
                    "r{reg}[{index}]: {} of {} accesses overtook the entry order (e.g. pkt{})",
                    violators_here.len(),
                    seq.len(),
                    violators_here[0].0
                );
                flag(&mut rep, Check::C1, global(cur_cycle), detail);
                rep.c1_violators.extend(violators_here);
            }
        }
        // Count violating *packets* (union across indexes), like the
        // online metric, rather than per-index incidents.
        let c1_pkts = rep.c1_violators.len() as u64;
        if c1_pkts > 0 {
            rep.violations.insert(Check::C1, c1_pkts);
        }
        rep.c1_accessors = accessors.len() as u64;
        rep
    }
}

/// Audits an event stream with the default configuration.
pub fn audit(events: &[Event]) -> AuditReport {
    Auditor::default().run(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, NO_LOC};
    use mp5_types::RegId;

    fn ev(cycle: u64, pipeline: u16, stage: u16, kind: EventKind) -> Event {
        Event {
            cycle,
            pipeline,
            stage,
            kind,
        }
    }

    fn key(p: u64) -> Key {
        Key {
            pkt: PacketId(p),
            reg: RegId(0),
            index: 4,
        }
    }

    /// A minimal clean life of one packet through one stateful stage.
    fn clean_run() -> Vec<Event> {
        let mut evs = Vec::new();
        for p in 0..3u64 {
            let c = p * 4;
            evs.push(ev(
                c,
                0,
                0,
                EventKind::Ingress {
                    pkt: PacketId(p),
                    order: (p * 64, 0),
                },
            ));
            evs.push(ev(
                c,
                0,
                0,
                EventKind::Execute {
                    pkt: PacketId(p),
                    queued: false,
                    bypassed: false,
                },
            ));
            evs.push(ev(
                c,
                0,
                0,
                EventKind::PhantomEmit {
                    key: key(p),
                    dest_pipeline: 0,
                    dest_stage: 2,
                },
            ));
            evs.push(ev(c + 1, 0, 2, EventKind::PhantomEnq { key: key(p) }));
            evs.push(ev(c + 2, 0, 2, EventKind::DataMatch { key: key(p) }));
            evs.push(ev(c + 3, 0, 2, EventKind::PopData { pkt: PacketId(p) }));
            evs.push(ev(
                c + 3,
                0,
                2,
                EventKind::Execute {
                    pkt: PacketId(p),
                    queued: true,
                    bypassed: false,
                },
            ));
            evs.push(ev(
                c + 3,
                0,
                2,
                EventKind::Access {
                    pkt: PacketId(p),
                    reg: RegId(0),
                    index: 4,
                    order: (p * 64, 0),
                },
            ));
            evs.push(ev(c + 3, 0, 3, EventKind::Egress { pkt: PacketId(p) }));
        }
        evs
    }

    #[test]
    fn clean_stream_audits_clean() {
        let rep = audit(&clean_run());
        assert!(rep.is_clean(), "{rep}");
        assert_eq!(rep.packets, 3);
        assert_eq!(rep.c1_accessors, 3);
        assert!(rep.c1_violators.is_empty());
    }

    #[test]
    fn c1_overtaker_is_blamed() {
        // Packets 0, 1, 2 entered in that order, but the state sees the
        // access sequence 0, 2, 1: packet 2 overtook packet 1.
        let mut evs = Vec::new();
        for p in 0..3u64 {
            evs.push(ev(
                p,
                0,
                0,
                EventKind::Ingress {
                    pkt: PacketId(p),
                    order: (p * 64, 0),
                },
            ));
        }
        for (i, p) in [0u64, 2, 1].into_iter().enumerate() {
            evs.push(ev(
                10 + i as u64,
                0,
                2,
                EventKind::Access {
                    pkt: PacketId(p),
                    reg: RegId(0),
                    index: 4,
                    order: (p * 64, 0),
                },
            ));
        }
        for p in 0..3u64 {
            evs.push(ev(20 + p, 0, 3, EventKind::Egress { pkt: PacketId(p) }));
        }
        let rep = audit(&evs);
        assert_eq!(rep.count(Check::C1), 1, "{rep}");
        assert!(rep.c1_violators.contains(&PacketId(2)));
        assert!((rep.c1_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn data_before_phantom_violates_inv1() {
        let evs = vec![
            ev(
                0,
                0,
                0,
                EventKind::Ingress {
                    pkt: PacketId(0),
                    order: (0, 0),
                },
            ),
            ev(
                0,
                0,
                0,
                EventKind::PhantomEmit {
                    key: key(0),
                    dest_pipeline: 0,
                    dest_stage: 2,
                },
            ),
            // Data matched while the phantom is still on the channel.
            ev(1, 0, 2, EventKind::DataMatch { key: key(0) }),
            ev(2, 0, 3, EventKind::Egress { pkt: PacketId(0) }),
        ];
        let rep = audit(&evs);
        assert_eq!(rep.count(Check::Inv1), 1, "{rep}");
    }

    #[test]
    fn double_execute_violates_inv2() {
        let mut evs = clean_run();
        evs.push(ev(
            100,
            1,
            5,
            EventKind::Execute {
                pkt: PacketId(0),
                queued: false,
                bypassed: false,
            },
        ));
        evs.push(ev(
            100,
            1,
            5,
            EventKind::Execute {
                pkt: PacketId(1),
                queued: false,
                bypassed: false,
            },
        ));
        // Keep conservation clean: the extra executes reference already
        // conserved packets.
        let rep = audit(&evs);
        assert_eq!(rep.count(Check::Inv2), 1, "{rep}");
    }

    #[test]
    fn lost_packet_violates_conservation() {
        let evs = vec![ev(
            0,
            0,
            0,
            EventKind::Ingress {
                pkt: PacketId(9),
                order: (0, 0),
            },
        )];
        let rep = audit(&evs);
        assert_eq!(rep.count(Check::Conservation), 1);
        let rep2 = audit(&[ev(0, 0, 3, EventKind::Egress { pkt: PacketId(9) })]);
        assert_eq!(rep2.count(Check::Conservation), 1);
    }

    #[test]
    fn dropped_packet_is_conserved() {
        let evs = vec![
            ev(
                0,
                0,
                0,
                EventKind::Ingress {
                    pkt: PacketId(1),
                    order: (0, 0),
                },
            ),
            ev(
                1,
                0,
                2,
                EventKind::Drop {
                    pkt: PacketId(1),
                    cause: DropCause::FifoFull,
                },
            ),
        ];
        assert!(audit(&evs).is_clean());
    }

    #[test]
    fn unresolved_phantom_violates_pairing() {
        let evs = vec![ev(
            0,
            0,
            1,
            EventKind::PhantomEmit {
                key: key(3),
                dest_pipeline: 0,
                dest_stage: 2,
            },
        )];
        let rep = audit(&evs);
        assert_eq!(rep.count(Check::Pairing), 1);
    }

    #[test]
    fn phantom_drop_and_orphan_cascade_is_clean() {
        let evs = vec![
            ev(
                0,
                0,
                0,
                EventKind::Ingress {
                    pkt: PacketId(0),
                    order: (0, 0),
                },
            ),
            ev(
                0,
                0,
                1,
                EventKind::PhantomEmit {
                    key: key(0),
                    dest_pipeline: 0,
                    dest_stage: 2,
                },
            ),
            ev(1, 0, 2, EventKind::PhantomDropFull { key: key(0) }),
            ev(2, 0, 2, EventKind::DataOrphan { key: key(0) }),
            ev(
                2,
                0,
                2,
                EventKind::Drop {
                    pkt: PacketId(0),
                    cause: DropCause::NoPhantom,
                },
            ),
        ];
        let rep = audit(&evs);
        assert!(rep.is_clean(), "{rep}");
    }

    #[test]
    fn findings_are_capped_but_counts_are_not() {
        let mut evs = Vec::new();
        for p in 0..50u64 {
            evs.push(ev(p, 0, 3, EventKind::Egress { pkt: PacketId(p) }));
        }
        let rep = Auditor::new(5).run(&evs);
        assert_eq!(rep.count(Check::Conservation), 50);
        assert_eq!(
            rep.findings
                .iter()
                .filter(|f| f.check == Check::Conservation)
                .count(),
            5
        );
        assert_eq!(rep.suppressed, 45);
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let rep = audit(&clean_run());
        let js = rep.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"clean\":true"));
        let _ = NO_LOC;
    }
}
