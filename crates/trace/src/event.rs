//! The switch-wide event schema and its JSONL codec.
//!
//! Every observable action inside an MP5 switch (and the baselines) is
//! an [`Event`]: a `(cycle, pipeline, stage)` location plus an
//! [`EventKind`]. Events are emitted in simulation order, so a recorded
//! stream is a total order consistent with the switch's own execution —
//! which is exactly what the offline auditor ([`mod@crate::audit`]) needs to
//! re-verify the paper's invariants without trusting the simulator.
//!
//! The codec is a hand-rolled flat-JSON line format (one event per
//! line). It is deliberately dependency-free: traces must round-trip
//! bit-for-bit in every build of the workspace, and the reproducibility
//! regression test hashes the serialized stream.

use std::hash::Hasher;

use mp5_types::{PacketId, RegId};

/// Location sentinel for switch-global events (e.g. remap moves) that
/// have no meaningful pipeline or stage.
pub const NO_LOC: u16 = u16::MAX;

/// Identifies one state access by one packet — the same triple the
/// phantom directory is keyed by (paper §3.2 plus the speculative-branch
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// The data packet.
    pub pkt: PacketId,
    /// The register array accessed.
    pub reg: RegId,
    /// The resolved register index.
    pub index: u32,
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}@r{}[{}]", self.pkt.0, self.reg.0, self.index)
    }
}

/// Why a data packet was dropped (mirrors
/// `mp5_core::DropCounts`'s causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// A stage FIFO lane was full (no-phantom operating modes).
    FifoFull,
    /// The packet's phantom was dropped upstream, cascading the drop.
    NoPhantom,
    /// A stateless packet yielded its slot to a starving stateful one
    /// (§3.4 starvation handling).
    Starvation,
}

impl DropCause {
    fn as_str(self) -> &'static str {
        match self {
            DropCause::FifoFull => "fifo_full",
            DropCause::NoPhantom => "no_phantom",
            DropCause::Starvation => "starvation",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "fifo_full" => DropCause::FifoFull,
            "no_phantom" => DropCause::NoPhantom,
            "starvation" => DropCause::Starvation,
            _ => return None,
        })
    }
}

/// What happened. Variants split into two layers:
///
/// * **switch-level** events emitted by `mp5-core` / `mp5-baselines`
///   (ingress, execution, state accesses, phantom generation, remap,
///   egress, drops), and
/// * **fabric-level** events emitted by `mp5-fabric` (FIFO push /
///   insert / pop / cancel outcomes and crossbar steers).
///
/// The auditor cross-checks the two layers against each other; the two
/// sources never share counters, so agreement is evidence, not
/// tautology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    // ---------------- switch level ----------------
    /// A packet was admitted into a pipeline's first stage. `order` is
    /// its switch entry-order key `(arrival byte-time, port)` — the
    /// serial order C1 is defined against.
    Ingress {
        /// The admitted packet.
        pkt: PacketId,
        /// Entry-order key.
        order: (u64, u64),
    },
    /// A packet exited the final stage.
    Egress {
        /// The completed packet.
        pkt: PacketId,
    },
    /// A data packet was dropped.
    Drop {
        /// The dropped packet.
        pkt: PacketId,
        /// Why.
        cause: DropCause,
    },
    /// A stage executed a packet this cycle. `queued` distinguishes a
    /// FIFO-served stateful packet from an incoming pass-through;
    /// `bypassed` marks the Invariant-2 stateless-priority case: an
    /// incoming packet took the slot while stateful work was queued.
    Execute {
        /// The executed packet.
        pkt: PacketId,
        /// Served from the stage FIFO (true) or passing through (false).
        queued: bool,
        /// Pass-through executed while the stage FIFO was non-empty.
        bypassed: bool,
    },
    /// A stateful register access was performed.
    Access {
        /// The accessing packet.
        pkt: PacketId,
        /// Register array.
        reg: RegId,
        /// Register index.
        index: u32,
        /// The packet's entry-order key (reproduced here so the auditor
        /// can reconstruct the reference serial order per index).
        order: (u64, u64),
    },
    /// A phantom was generated onto the dedicated channel at the end of
    /// the prologue (D4).
    PhantomEmit {
        /// The access the phantom stands in for.
        key: Key,
        /// Destination pipeline.
        dest_pipeline: u16,
        /// Destination stage.
        dest_stage: u16,
    },
    /// A phantom was discarded at channel delivery because its data
    /// packet had been dropped while the phantom was still in flight.
    PhantomChannelCancel {
        /// The cancelled access.
        key: Key,
    },
    /// The dynamic sharding runtime migrated one register index.
    RemapMove {
        /// Register array.
        reg: RegId,
        /// Migrated index.
        index: u32,
        /// Previous owning pipeline.
        from: u16,
        /// New owning pipeline.
        to: u16,
    },
    /// (Recirculation baseline only) a packet looped from egress back
    /// to an ingress.
    Recirculate {
        /// The looping packet.
        pkt: PacketId,
        /// Target pipeline.
        target: u16,
    },
    // ---------------- fabric level ----------------
    /// `push(pkt, fifo_id)`: a phantom placeholder entered a stage FIFO.
    PhantomEnq {
        /// The phantom's access key.
        key: Key,
    },
    /// A phantom was dropped because its FIFO lane was full.
    PhantomDropFull {
        /// The dropped phantom's key.
        key: Key,
    },
    /// A queued phantom was cancelled. `free` cancellations (upstream
    /// drop) are reclaimed without service; non-free ones (speculative
    /// false branch) cost one pop cycle.
    PhantomCancel {
        /// The cancelled phantom's key.
        key: Key,
        /// Whether reclamation is free.
        free: bool,
    },
    /// `insert(pkt, addr, fifo_id)`: a data packet replaced its queued
    /// phantom, inheriting its place in the serial order.
    DataMatch {
        /// The matched access key.
        key: Key,
    },
    /// A data packet arrived for a phantom that no longer exists: the
    /// drop cascade of §3.4.
    DataOrphan {
        /// The orphaned access key.
        key: Key,
    },
    /// A data packet was pushed directly (no-phantom operating modes).
    DataEnq {
        /// The queued packet.
        pkt: PacketId,
    },
    /// A direct data push was dropped on a full lane.
    DataEnqDropFull {
        /// The dropped packet.
        pkt: PacketId,
    },
    /// `pop()` dequeued a data packet for stateful processing.
    PopData {
        /// The served packet.
        pkt: PacketId,
    },
    /// `pop()` reclaimed a speculative-false phantom, wasting the cycle.
    PopStale,
    /// `pop()` found a phantom at the logical head: the stage stalled
    /// this cycle waiting for the placeholder's data packet (D4's
    /// order freeze).
    PopBlocked {
        /// The blocking phantom's key.
        key: Key,
    },
    /// The inter-stage crossbar steered a packet across pipelines
    /// (off-diagonal route, D3).
    Steer {
        /// Source pipeline.
        from: u16,
        /// Destination pipeline.
        to: u16,
    },
    // ---------------- fault level ----------------
    /// A planned fault fired (`mp5-faults`). `code`/`param` are the
    /// stable encoding from `FaultKind::code`/`FaultKind::param`.
    FaultInjected {
        /// Fault-kind code (1 = pipeline fail, 2 = stage stall, ...).
        code: u16,
        /// Kind-specific parameter word.
        param: u64,
    },
    /// A phantom was lost to an injected fault (drop or forced FIFO
    /// overflow) and the loss was *recorded* for later recovery.
    FaultPhantomLost {
        /// The lost phantom's access key.
        key: Key,
    },
    /// A data packet whose phantom was lost to a fault was recovered
    /// into FIFO order at its destination stage (C1-preserving path).
    PhantomRecovered {
        /// The recovered access key.
        key: Key,
    },
    /// A failed pipeline finished evacuating its sharded state to
    /// survivors via the D2 remap path.
    PipelineEvacuated {
        /// The dead pipeline.
        pipeline: u16,
        /// How many register indexes were moved off it.
        indexes: u64,
    },
    // ---------------- lifecycle level ----------------
    /// A consistent checkpoint of the whole switch was taken at this
    /// cycle boundary (`mp5serve`). Lifecycle events are operator
    /// markers: they are excluded from [`stream_hash`] so a
    /// checkpointed run hashes identically to an uninterrupted one.
    SnapshotTaken {
        /// Checkpoint ordinal within the run (0, 1, 2, ...).
        seq: u64,
    },
    /// Execution resumed from a checkpoint taken at cycle `from_cycle`.
    Restored {
        /// Cycle the restored snapshot was taken at.
        from_cycle: u64,
    },
    /// A newly compiled program was hot-swapped in at this cycle
    /// boundary, migrating live state through the D2 evacuation path.
    ProgramSwapped {
        /// Register indexes migrated into the new program's state.
        migrated: u64,
    },
}

impl EventKind {
    /// The codec tag for this kind.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Ingress { .. } => "ingress",
            EventKind::Egress { .. } => "egress",
            EventKind::Drop { .. } => "drop",
            EventKind::Execute { .. } => "exec",
            EventKind::Access { .. } => "access",
            EventKind::PhantomEmit { .. } => "ph_emit",
            EventKind::PhantomChannelCancel { .. } => "ph_chan_cancel",
            EventKind::RemapMove { .. } => "remap",
            EventKind::Recirculate { .. } => "recirc",
            EventKind::PhantomEnq { .. } => "ph_enq",
            EventKind::PhantomDropFull { .. } => "ph_drop",
            EventKind::PhantomCancel { .. } => "ph_cancel",
            EventKind::DataMatch { .. } => "data_match",
            EventKind::DataOrphan { .. } => "data_orphan",
            EventKind::DataEnq { .. } => "data_enq",
            EventKind::DataEnqDropFull { .. } => "data_enq_drop",
            EventKind::PopData { .. } => "pop_data",
            EventKind::PopStale => "pop_stale",
            EventKind::PopBlocked { .. } => "pop_blocked",
            EventKind::Steer { .. } => "steer",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::FaultPhantomLost { .. } => "ph_lost",
            EventKind::PhantomRecovered { .. } => "ph_recovered",
            EventKind::PipelineEvacuated { .. } => "evacuated",
            EventKind::SnapshotTaken { .. } => "snapshot",
            EventKind::Restored { .. } => "restored",
            EventKind::ProgramSwapped { .. } => "swap",
        }
    }

    /// True for operator lifecycle markers (checkpoint / restore /
    /// hot-swap). These describe what an *operator* did to the switch,
    /// not what the switch did to packets, so [`stream_hash`] skips
    /// them: a run that was checkpointed, restored, or swapped to an
    /// identical program hashes the same as an uninterrupted run.
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            EventKind::SnapshotTaken { .. }
                | EventKind::Restored { .. }
                | EventKind::ProgramSwapped { .. }
        )
    }
}

/// One traced event: a location plus what happened there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Simulation cycle of the emitting switch.
    pub cycle: u64,
    /// Pipeline, or [`NO_LOC`] for switch-global events.
    pub pipeline: u16,
    /// Stage, or [`NO_LOC`] for switch-global events.
    pub stage: u16,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes the event as one flat JSON object (no trailing
    /// newline). Field order is fixed, so equal events serialize to
    /// byte-identical lines — the determinism regression test depends
    /// on this.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"c\":{},\"p\":{},\"s\":{},\"k\":\"{}\"",
            self.cycle,
            self.pipeline,
            self.stage,
            self.kind.tag()
        );
        let key = |s: &mut String, k: &Key| {
            let _ = write!(
                s,
                ",\"pkt\":{},\"reg\":{},\"idx\":{}",
                k.pkt.0, k.reg.0, k.index
            );
        };
        match &self.kind {
            EventKind::Ingress { pkt, order } | EventKind::Access { pkt, order, .. } => {
                let _ = write!(s, ",\"pkt\":{}", pkt.0);
                if let EventKind::Access { reg, index, .. } = &self.kind {
                    let _ = write!(s, ",\"reg\":{},\"idx\":{}", reg.0, index);
                }
                let _ = write!(s, ",\"o1\":{},\"o2\":{}", order.0, order.1);
            }
            EventKind::Egress { pkt }
            | EventKind::DataEnq { pkt }
            | EventKind::DataEnqDropFull { pkt }
            | EventKind::PopData { pkt } => {
                let _ = write!(s, ",\"pkt\":{}", pkt.0);
            }
            EventKind::Drop { pkt, cause } => {
                let _ = write!(s, ",\"pkt\":{},\"cause\":\"{}\"", pkt.0, cause.as_str());
            }
            EventKind::Execute {
                pkt,
                queued,
                bypassed,
            } => {
                let _ = write!(
                    s,
                    ",\"pkt\":{},\"queued\":{queued},\"bypassed\":{bypassed}",
                    pkt.0
                );
            }
            EventKind::PhantomEmit {
                key: k,
                dest_pipeline,
                dest_stage,
            } => {
                key(&mut s, k);
                let _ = write!(s, ",\"dp\":{dest_pipeline},\"ds\":{dest_stage}");
            }
            EventKind::PhantomChannelCancel { key: k }
            | EventKind::PhantomEnq { key: k }
            | EventKind::PhantomDropFull { key: k }
            | EventKind::DataMatch { key: k }
            | EventKind::DataOrphan { key: k }
            | EventKind::PopBlocked { key: k }
            | EventKind::FaultPhantomLost { key: k }
            | EventKind::PhantomRecovered { key: k } => key(&mut s, k),
            EventKind::PhantomCancel { key: k, free } => {
                key(&mut s, k);
                let _ = write!(s, ",\"free\":{free}");
            }
            EventKind::RemapMove {
                reg,
                index,
                from,
                to,
            } => {
                let _ = write!(
                    s,
                    ",\"reg\":{},\"idx\":{index},\"from\":{from},\"to\":{to}",
                    reg.0
                );
            }
            EventKind::Recirculate { pkt, target } => {
                let _ = write!(s, ",\"pkt\":{},\"to\":{target}", pkt.0);
            }
            EventKind::Steer { from, to } => {
                let _ = write!(s, ",\"from\":{from},\"to\":{to}");
            }
            EventKind::FaultInjected { code, param } => {
                let _ = write!(s, ",\"code\":{code},\"param\":{param}");
            }
            EventKind::PipelineEvacuated { pipeline, indexes } => {
                let _ = write!(s, ",\"pl\":{pipeline},\"n\":{indexes}");
            }
            EventKind::SnapshotTaken { seq } => {
                let _ = write!(s, ",\"seq\":{seq}");
            }
            EventKind::Restored { from_cycle } => {
                let _ = write!(s, ",\"from\":{from_cycle}");
            }
            EventKind::ProgramSwapped { migrated } => {
                let _ = write!(s, ",\"n\":{migrated}");
            }
            EventKind::PopStale => {}
        }
        s.push('}');
        s
    }

    /// Parses one line produced by [`Event::to_jsonl`].
    pub fn parse_jsonl(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let num = |name: &str| -> Result<u64, ParseError> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .and_then(|(_, v)| match v {
                    Tok::Num(n) => Some(*n),
                    _ => None,
                })
                .ok_or_else(|| ParseError::missing(name))
        };
        let string = |name: &str| -> Result<&str, ParseError> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .and_then(|(_, v)| match v {
                    Tok::Str(s) => Some(*s),
                    _ => None,
                })
                .ok_or_else(|| ParseError::missing(name))
        };
        let boolean = |name: &str| -> Result<bool, ParseError> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .and_then(|(_, v)| match v {
                    Tok::Bool(b) => Some(*b),
                    _ => None,
                })
                .ok_or_else(|| ParseError::missing(name))
        };
        let pkt = || -> Result<PacketId, ParseError> { Ok(PacketId(num("pkt")?)) };
        let key = || -> Result<Key, ParseError> {
            Ok(Key {
                pkt: pkt()?,
                reg: RegId(num("reg")? as u16),
                index: num("idx")? as u32,
            })
        };
        let order = || -> Result<(u64, u64), ParseError> { Ok((num("o1")?, num("o2")?)) };
        let tag = string("k")?;
        let kind = match tag {
            "ingress" => EventKind::Ingress {
                pkt: pkt()?,
                order: order()?,
            },
            "egress" => EventKind::Egress { pkt: pkt()? },
            "drop" => EventKind::Drop {
                pkt: pkt()?,
                cause: DropCause::from_str(string("cause")?)
                    .ok_or_else(|| ParseError::missing("cause"))?,
            },
            "exec" => EventKind::Execute {
                pkt: pkt()?,
                queued: boolean("queued")?,
                bypassed: boolean("bypassed")?,
            },
            "access" => EventKind::Access {
                pkt: pkt()?,
                reg: RegId(num("reg")? as u16),
                index: num("idx")? as u32,
                order: order()?,
            },
            "ph_emit" => EventKind::PhantomEmit {
                key: key()?,
                dest_pipeline: num("dp")? as u16,
                dest_stage: num("ds")? as u16,
            },
            "ph_chan_cancel" => EventKind::PhantomChannelCancel { key: key()? },
            "remap" => EventKind::RemapMove {
                reg: RegId(num("reg")? as u16),
                index: num("idx")? as u32,
                from: num("from")? as u16,
                to: num("to")? as u16,
            },
            "recirc" => EventKind::Recirculate {
                pkt: pkt()?,
                target: num("to")? as u16,
            },
            "ph_enq" => EventKind::PhantomEnq { key: key()? },
            "ph_drop" => EventKind::PhantomDropFull { key: key()? },
            "ph_cancel" => EventKind::PhantomCancel {
                key: key()?,
                free: boolean("free")?,
            },
            "data_match" => EventKind::DataMatch { key: key()? },
            "data_orphan" => EventKind::DataOrphan { key: key()? },
            "data_enq" => EventKind::DataEnq { pkt: pkt()? },
            "data_enq_drop" => EventKind::DataEnqDropFull { pkt: pkt()? },
            "pop_data" => EventKind::PopData { pkt: pkt()? },
            "pop_stale" => EventKind::PopStale,
            "pop_blocked" => EventKind::PopBlocked { key: key()? },
            "steer" => EventKind::Steer {
                from: num("from")? as u16,
                to: num("to")? as u16,
            },
            "fault" => EventKind::FaultInjected {
                code: num("code")? as u16,
                param: num("param")?,
            },
            "ph_lost" => EventKind::FaultPhantomLost { key: key()? },
            "ph_recovered" => EventKind::PhantomRecovered { key: key()? },
            "evacuated" => EventKind::PipelineEvacuated {
                pipeline: num("pl")? as u16,
                indexes: num("n")?,
            },
            "snapshot" => EventKind::SnapshotTaken { seq: num("seq")? },
            "restored" => EventKind::Restored {
                from_cycle: num("from")?,
            },
            "swap" => EventKind::ProgramSwapped {
                migrated: num("n")?,
            },
            other => return Err(ParseError::new(format!("unknown event tag '{other}'"))),
        };
        Ok(Event {
            cycle: num("c")?,
            pipeline: num("p")? as u16,
            stage: num("s")? as u16,
            kind,
        })
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    fn new(msg: String) -> Self {
        ParseError { msg }
    }

    fn missing(field: &str) -> Self {
        ParseError::new(format!("missing or mistyped field '{field}'"))
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A scanned flat-JSON value.
enum Tok<'a> {
    Num(u64),
    Str(&'a str),
    Bool(bool),
}

/// Scans one `{"key":value,...}` object in the restricted flat grammar
/// the writer emits: unsigned integers, escape-free strings, booleans.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, Tok<'_>)>, ParseError> {
    let b = line.trim();
    let inner = b
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError::new("not a JSON object".into()))?;
    let mut out = Vec::with_capacity(8);
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let r = rest
            .strip_prefix('"')
            .ok_or_else(|| ParseError::new(format!("expected key at '{rest}'")))?;
        let end = r
            .find('"')
            .ok_or_else(|| ParseError::new("unterminated key".into()))?;
        let (key, r) = r.split_at(end);
        let r = r[1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| ParseError::new(format!("expected ':' after key '{key}'")))?;
        let r = r.trim_start();
        let (tok, r) = if let Some(sr) = r.strip_prefix('"') {
            let end = sr
                .find('"')
                .ok_or_else(|| ParseError::new("unterminated string".into()))?;
            (Tok::Str(&sr[..end]), &sr[end + 1..])
        } else if let Some(r2) = r.strip_prefix("true") {
            (Tok::Bool(true), r2)
        } else if let Some(r2) = r.strip_prefix("false") {
            (Tok::Bool(false), r2)
        } else {
            let end = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
            if end == 0 {
                return Err(ParseError::new(format!("expected value at '{r}'")));
            }
            let n: u64 = r[..end]
                .parse()
                .map_err(|_| ParseError::new(format!("bad number '{}'", &r[..end])))?;
            (Tok::Num(n), &r[end..])
        };
        out.push((key, tok));
        rest = tok_rest(r)?;
    }
    Ok(out)
}

/// Consumes an optional `,` separator between pairs.
fn tok_rest(r: &str) -> Result<&str, ParseError> {
    let r = r.trim_start();
    if let Some(r2) = r.strip_prefix(',') {
        Ok(r2.trim_start())
    } else if r.is_empty() {
        Ok(r)
    } else {
        Err(ParseError::new(format!("expected ',' at '{r}'")))
    }
}

/// Hashes a serialized event stream, byte for byte, with a fixed-key
/// hasher. Two runs of the same seeded configuration must produce the
/// same hash — DESIGN §3's bit-for-bit reproducibility claim, now
/// checkable from the observable event stream rather than just final
/// state.
pub fn stream_hash(events: &[Event]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for ev in events {
        if ev.kind.is_lifecycle() {
            continue;
        }
        h.write(ev.to_jsonl().as_bytes());
        h.write_u8(b'\n');
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(p: u64) -> Key {
        Key {
            pkt: PacketId(p),
            reg: RegId(3),
            index: 17,
        }
    }

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::Ingress {
                pkt: PacketId(1),
                order: (640, 3),
            },
            EventKind::Egress { pkt: PacketId(2) },
            EventKind::Drop {
                pkt: PacketId(3),
                cause: DropCause::NoPhantom,
            },
            EventKind::Execute {
                pkt: PacketId(4),
                queued: true,
                bypassed: false,
            },
            EventKind::Access {
                pkt: PacketId(5),
                reg: RegId(1),
                index: 9,
                order: (128, 7),
            },
            EventKind::PhantomEmit {
                key: k(6),
                dest_pipeline: 2,
                dest_stage: 5,
            },
            EventKind::PhantomChannelCancel { key: k(7) },
            EventKind::RemapMove {
                reg: RegId(0),
                index: 11,
                from: 0,
                to: 3,
            },
            EventKind::Recirculate {
                pkt: PacketId(8),
                target: 1,
            },
            EventKind::PhantomEnq { key: k(9) },
            EventKind::PhantomDropFull { key: k(10) },
            EventKind::PhantomCancel {
                key: k(11),
                free: true,
            },
            EventKind::DataMatch { key: k(12) },
            EventKind::DataOrphan { key: k(13) },
            EventKind::DataEnq { pkt: PacketId(14) },
            EventKind::DataEnqDropFull { pkt: PacketId(15) },
            EventKind::PopData { pkt: PacketId(16) },
            EventKind::PopStale,
            EventKind::PopBlocked { key: k(17) },
            EventKind::Steer { from: 0, to: 2 },
            EventKind::FaultInjected {
                code: 2,
                param: (1 << 16) | 3,
            },
            EventKind::FaultPhantomLost { key: k(18) },
            EventKind::PhantomRecovered { key: k(19) },
            EventKind::PipelineEvacuated {
                pipeline: 2,
                indexes: 40,
            },
            EventKind::SnapshotTaken { seq: 3 },
            EventKind::Restored { from_cycle: 4096 },
            EventKind::ProgramSwapped { migrated: 96 },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = Event {
                cycle: 1000 + i as u64,
                pipeline: (i % 4) as u16,
                stage: (i % 16) as u16,
                kind,
            };
            let line = ev.to_jsonl();
            let back = Event::parse_jsonl(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(ev, back, "round trip failed for {line}");
        }
    }

    #[test]
    fn global_events_round_trip_sentinel_location() {
        let ev = Event {
            cycle: 7,
            pipeline: NO_LOC,
            stage: NO_LOC,
            kind: EventKind::RemapMove {
                reg: RegId(2),
                index: 4,
                from: 1,
                to: 2,
            },
        };
        let back = Event::parse_jsonl(&ev.to_jsonl()).unwrap();
        assert_eq!(back.pipeline, NO_LOC);
        assert_eq!(back.stage, NO_LOC);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"c\":1}",
            "{\"c\":1,\"p\":0,\"s\":0,\"k\":\"nope\"}",
            "{\"c\":x,\"p\":0,\"s\":0,\"k\":\"pop_stale\"}",
            "not json at all",
        ] {
            assert!(Event::parse_jsonl(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn lifecycle_events_do_not_perturb_stream_hash() {
        let work = Event {
            cycle: 5,
            pipeline: 0,
            stage: 0,
            kind: EventKind::PopStale,
        };
        let marker = |kind| Event {
            cycle: 5,
            pipeline: NO_LOC,
            stage: NO_LOC,
            kind,
        };
        let clean = [work];
        let operated = [
            marker(EventKind::SnapshotTaken { seq: 0 }),
            work,
            marker(EventKind::Restored { from_cycle: 5 }),
            marker(EventKind::ProgramSwapped { migrated: 12 }),
        ];
        assert_eq!(stream_hash(&clean), stream_hash(&operated));
        for kind in [
            EventKind::SnapshotTaken { seq: 0 },
            EventKind::Restored { from_cycle: 0 },
            EventKind::ProgramSwapped { migrated: 0 },
        ] {
            assert!(kind.is_lifecycle());
        }
        assert!(!EventKind::PopStale.is_lifecycle());
    }

    #[test]
    fn stream_hash_is_order_sensitive() {
        let a = Event {
            cycle: 1,
            pipeline: 0,
            stage: 0,
            kind: EventKind::PopStale,
        };
        let b = Event {
            cycle: 2,
            pipeline: 0,
            stage: 0,
            kind: EventKind::PopStale,
        };
        assert_eq!(stream_hash(&[a, b]), stream_hash(&[a, b]));
        assert_ne!(stream_hash(&[a, b]), stream_hash(&[b, a]));
        assert_ne!(stream_hash(&[a]), stream_hash(&[a, b]));
    }
}
