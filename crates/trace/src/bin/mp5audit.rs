//! `mp5audit` — offline invariant auditor for recorded MP5 traces.
//!
//! Reads a JSONL event stream (from `mp5run --trace <path>` or any
//! [`mp5_trace::JsonlSink`]), replays it through the independent
//! checker, and reports on the paper's correctness claims:
//! Invariant 1 (phantom precedes data), Invariant 2 (pass-through
//! priority), condition C1 (serial access order), packet conservation
//! and phantom/data pairing.
//!
//! ```text
//! usage: mp5audit [options] <trace.jsonl | ->
//!
//!   -                     read the trace from stdin
//!   --json                emit the report as JSON instead of text
//!   --quiet               print nothing; exit code only
//!   --max-findings <n>    findings retained per check (default 20)
//!   --rollup <out.csv>    also write per-stage/per-register rollups
//!   --chrome <out.json>   also write a Chrome-trace/Perfetto export
//! ```
//!
//! Exit status: 0 when every check passes, 1 when any violation is
//! found, 2 on usage or I/O errors.

use std::io::{BufReader, Read};
use std::process::ExitCode;

use mp5_trace::rollup::Rollup;
use mp5_trace::{chrome, read_jsonl, Auditor, Event};

struct Args {
    input: String,
    json: bool,
    quiet: bool,
    max_findings: usize,
    rollup: Option<String>,
    chrome: Option<String>,
}

const USAGE: &str = "usage: mp5audit [--json] [--quiet] [--max-findings <n>] \
                     [--rollup <out.csv>] [--chrome <out.json>] <trace.jsonl | ->";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        json: false,
        quiet: false,
        max_findings: 20,
        rollup: None,
        chrome: None,
    };
    let mut it = std::env::args().skip(1);
    let mut input: Option<String> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--quiet" => args.quiet = true,
            "--max-findings" => {
                let v = it.next().ok_or("--max-findings needs a value")?;
                args.max_findings = v
                    .parse()
                    .map_err(|_| format!("bad --max-findings value '{v}'"))?;
            }
            "--rollup" => args.rollup = Some(it.next().ok_or("--rollup needs a path")?),
            "--chrome" => args.chrome = Some(it.next().ok_or("--chrome needs a path")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    args.input = input.ok_or(USAGE)?;
    Ok(args)
}

fn load(input: &str) -> Result<Vec<Event>, String> {
    if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        read_jsonl(buf.as_bytes()).map_err(|e| format!("stdin: {e}"))
    } else {
        let f = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
        read_jsonl(BufReader::new(f)).map_err(|e| format!("{input}: {e}"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let events = match load(&args.input) {
        Ok(evs) => evs,
        Err(msg) => {
            eprintln!("mp5audit: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = Auditor::new(args.max_findings).run(&events);
    if let Some(path) = &args.rollup {
        if let Err(e) = std::fs::write(path, Rollup::from_events(&events).to_csv()) {
            eprintln!("mp5audit: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.chrome {
        if let Err(e) = std::fs::write(path, chrome::export(&events)) {
            eprintln!("mp5audit: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        if args.json {
            println!("{}", report.to_json());
        } else {
            print!("{report}");
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
