//! Switch-wide event tracing and offline auditing for MP5.
//!
//! This crate is the observability layer of the workspace:
//!
//! * [`event`] — the event schema: everything observable inside a
//!   switch (`ingress`, `exec`, `access`, phantom lifecycle, FIFO and
//!   crossbar operations, `egress`, drops) with a dependency-free
//!   JSONL codec and a deterministic stream hash.
//! * [`sink`] — the [`TraceSink`] trait and its implementations. The
//!   trait is statically dispatched with a `const ENABLED` flag, so
//!   the default [`NopSink`] compiles instrumentation away entirely:
//!   an untraced switch pays nothing (the `hotpath` bench verifies
//!   this).
//! * [`mod@audit`] — the offline invariant auditor: replays a recorded
//!   stream and independently re-verifies Invariant 1 (phantom
//!   precedes data), Invariant 2 (pass-through priority), condition C1
//!   (serial access order per register index), packet conservation,
//!   and phantom/data pairing. Also available as the `mp5audit`
//!   binary.
//! * [`rollup`] — per-stage / per-register metrics rollups (service
//!   counters, occupancy histograms, phantom wait times, steering
//!   matrix) rendered as CSV or table rows.
//! * [`chrome`] — a Chrome-trace / Perfetto exporter that lays the
//!   switch out as one track per (pipeline, stage).
//!
//! `mp5-fabric`, `mp5-core` and `mp5-baselines` are generic over
//! [`TraceSink`]; `mp5run --trace/--audit/--rollup/--chrome` wires the
//! whole chain into every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chrome;
pub mod event;
pub mod rollup;
pub mod sink;

pub use audit::{audit, AuditReport, Auditor, Check, Finding};
pub use event::{stream_hash, DropCause, Event, EventKind, Key, ParseError, NO_LOC};
pub use rollup::{Histogram, RegRollup, Rollup, StageRollup};
pub use sink::{
    emit, read_jsonl, BufSink, JsonlSink, MemSink, NopSink, ReadError, RingSink, TeeSink, TraceCtx,
    TraceSink,
};
