//! Trace sinks: where emitted events go.
//!
//! The [`TraceSink`] trait is *statically* dispatched and carries a
//! `const ENABLED` flag. Instrumented code guards every emission with
//! `if S::ENABLED { ... }`, so with the default [`NopSink`] the
//! compiler sees `if false { ... }` and removes the event construction
//! entirely — tracing is zero-cost when disabled (verified by the
//! `hotpath` bench's nop-vs-mem comparison).

use std::io::{BufRead, Write};

use crate::event::{Event, EventKind, ParseError};

/// A destination for trace events.
///
/// Implementations must be cheap: the switch calls [`TraceSink::emit`]
/// from its inner per-cycle loops. The associated `ENABLED` constant
/// lets instrumentation compile away entirely for [`NopSink`].
pub trait TraceSink {
    /// Whether this sink observes events. Call sites guard emission
    /// with `if S::ENABLED`, which constant-folds per monomorphization.
    const ENABLED: bool = true;

    /// Record one event.
    fn emit(&mut self, ev: Event);
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// An unbounded in-memory sink. The workhorse for tests, audits and
/// exports: run the switch, then hand [`MemSink::events`] to the
/// auditor, rollup builder, or Chrome exporter.
#[derive(Debug, Default, Clone)]
pub struct MemSink {
    /// Every event, in emission order.
    pub events: Vec<Event>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Consumes the sink, returning the recorded stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl TraceSink for MemSink {
    #[inline]
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// A borrowed event buffer: appends into a `Vec<Event>` owned by the
/// caller. The batch execution path uses this to collect events into
/// per-batch scratch buffers during stage-major kernels and flush them
/// to the real sink in canonical scalar order at compaction — the
/// traced path rides the SoA loop instead of falling back to scalar.
#[derive(Debug)]
pub struct BufSink<'a>(
    /// The destination buffer.
    pub &'a mut Vec<Event>,
);

impl TraceSink for BufSink<'_> {
    #[inline]
    fn emit(&mut self, ev: Event) {
        self.0.push(ev);
    }
}

/// A bounded ring-buffer sink holding the most recent `capacity`
/// events — "flight recorder" mode for long runs where only the tail
/// leading up to an anomaly matters.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<Event>,
    head: usize,
    capacity: usize,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn emit(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// A streaming sink writing one JSONL line per event to any
/// [`Write`] — typically a buffered file, for `mp5run --trace`.
///
/// I/O errors are latched rather than panicking mid-simulation; check
/// [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    /// Lines successfully written.
    pub written: u64,
    err: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            written: 0,
            err: None,
        }
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    #[inline]
    fn emit(&mut self, ev: Event) {
        if self.err.is_some() {
            return;
        }
        let mut line = ev.to_jsonl();
        line.push('\n');
        if let Err(e) = self.w.write_all(line.as_bytes()) {
            self.err = Some(e);
        } else {
            self.written += 1;
        }
    }
}

/// A sink feeding two sinks at once (e.g. JSONL file + in-memory for
/// an end-of-run audit).
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(
    /// First destination.
    pub A,
    /// Second destination.
    pub B,
);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn emit(&mut self, ev: Event) {
        if A::ENABLED {
            self.0.emit(ev);
        }
        if B::ENABLED {
            self.1.emit(ev);
        }
    }
}

/// Reads a JSONL event stream back from any [`BufRead`]. Blank lines
/// are skipped; any malformed line aborts with its line number.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<Event>, ReadError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ReadError {
            line: i + 1,
            kind: ReadErrorKind::Io(e.to_string()),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::parse_jsonl(&line).map_err(|e| ReadError {
            line: i + 1,
            kind: ReadErrorKind::Parse(e),
        })?;
        out.push(ev);
    }
    Ok(out)
}

/// A failure while reading a recorded trace.
#[derive(Debug)]
pub struct ReadError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub kind: ReadErrorKind,
}

/// The cause of a [`ReadError`].
#[derive(Debug)]
pub enum ReadErrorKind {
    /// Underlying I/O failure.
    Io(String),
    /// A line that is not a valid event.
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ReadErrorKind::Io(e) => write!(f, "line {}: io error: {e}", self.line),
            ReadErrorKind::Parse(e) => write!(f, "line {}: {e}", self.line),
        }
    }
}

impl std::error::Error for ReadError {}

/// The `(cycle, pipeline, stage)` location an instrumented component
/// stamps onto fabric-level events. `mp5-core` builds one per FIFO
/// operation so `mp5-fabric` does not need to know switch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Current simulation cycle.
    pub cycle: u64,
    /// Emitting pipeline.
    pub pipeline: u16,
    /// Emitting stage.
    pub stage: u16,
}

impl TraceCtx {
    /// A location context.
    pub fn new(cycle: u64, pipeline: u16, stage: u16) -> Self {
        TraceCtx {
            cycle,
            pipeline,
            stage,
        }
    }

    /// Emits `kind` at this location into `sink`, compiling away when
    /// the sink is disabled.
    #[inline(always)]
    pub fn emit<S: TraceSink>(self, sink: &mut S, kind: EventKind) {
        if S::ENABLED {
            sink.emit(Event {
                cycle: self.cycle,
                pipeline: self.pipeline,
                stage: self.stage,
                kind,
            });
        }
    }
}

/// Emits one event, compiling away entirely when `S::ENABLED` is
/// false. The canonical guard for all instrumentation sites.
#[inline(always)]
pub fn emit<S: TraceSink>(sink: &mut S, cycle: u64, pipeline: u16, stage: u16, kind: EventKind) {
    if S::ENABLED {
        sink.emit(Event {
            cycle,
            pipeline,
            stage,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::stream_hash;
    use mp5_types::PacketId;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            pipeline: 0,
            stage: 1,
            kind: EventKind::Egress {
                pkt: PacketId(cycle),
            },
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn nop_sink_is_disabled() {
        assert!(!NopSink::ENABLED);
        assert!(MemSink::ENABLED);
        let mut s = NopSink;
        emit(&mut s, 1, 0, 0, EventKind::PopStale);
    }

    #[test]
    fn mem_sink_records_in_order() {
        let mut s = MemSink::new();
        for c in 0..5 {
            emit(&mut s, c, 0, 1, ev(c).kind);
        }
        assert_eq!(s.events.len(), 5);
        assert!(s.events.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut s = RingSink::new(3);
        for c in 0..10 {
            s.emit(ev(c));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped, 7);
        let cycles: Vec<u64> = s.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn jsonl_round_trips_through_reader() {
        let mut s = JsonlSink::new(Vec::<u8>::new());
        let evs: Vec<Event> = (0..4).map(ev).collect();
        for e in &evs {
            s.emit(*e);
        }
        let bytes = s.finish().unwrap();
        let back = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(back, evs);
        assert_eq!(stream_hash(&back), stream_hash(&evs));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn tee_feeds_both() {
        let mut t = TeeSink(MemSink::new(), MemSink::new());
        t.emit(ev(3));
        assert_eq!(t.0.events, t.1.events);
        assert!(<TeeSink<MemSink, MemSink> as TraceSink>::ENABLED);
    }

    #[test]
    fn read_jsonl_reports_line_numbers() {
        let text = format!("{}\n\nnot json\n", ev(1).to_jsonl());
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
