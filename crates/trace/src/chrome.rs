//! Chrome-trace / Perfetto export.
//!
//! Renders an event stream in the Trace Event Format understood by
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev):
//! each **pipeline becomes a process track** and each **stage a thread
//! track**, so the UI lays the switch out exactly like Figure 4 of the
//! paper — pipelines stacked, stages left to right, with packet
//! executions as duration slices and queue/phantom activity as instant
//! markers. One simulation cycle maps to one microsecond of trace
//! time.

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::event::{Event, EventKind, NO_LOC};

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The process id used for switch-global events (remap moves), shown
/// as a separate "switch" track.
const GLOBAL_PID: u32 = 1_000_000;

fn pid(p: u16) -> u32 {
    if p == NO_LOC {
        GLOBAL_PID
    } else {
        p as u32
    }
}

fn tid(s: u16) -> u32 {
    if s == NO_LOC {
        0
    } else {
        s as u32
    }
}

/// Renders the stream as a complete Trace Event Format JSON document.
pub fn export(events: &[Event]) -> String {
    let mut tracks: BTreeSet<(u16, u16)> = BTreeSet::new();
    for ev in events {
        tracks.insert((ev.pipeline, ev.stage));
    }
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut item = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    // Track naming metadata.
    let mut pipelines: BTreeSet<u16> = BTreeSet::new();
    for &(p, _) in &tracks {
        pipelines.insert(p);
    }
    for p in pipelines {
        item(&mut out);
        let name = if p == NO_LOC {
            "switch (global)".to_string()
        } else {
            format!("pipeline {p}")
        };
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{name}\"}}}}",
            pid(p)
        );
    }
    for &(p, s) in &tracks {
        item(&mut out);
        let name = if s == NO_LOC {
            "control".to_string()
        } else {
            format!("stage {s}")
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{name}\"}}}}",
            pid(p),
            tid(s)
        );
        item(&mut out);
        // Sort stage tracks by index, not by name.
        let _ = write!(
            out,
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
            pid(p),
            tid(s),
            tid(s)
        );
    }
    // The events themselves.
    for ev in events {
        item(&mut out);
        let detail = esc(&ev.to_jsonl());
        match &ev.kind {
            EventKind::Execute { pkt, queued, .. } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}pkt{}\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":{},\"tid\":{},\"args\":{{\"ev\":\"{detail}\"}}}}",
                    if *queued { "serve " } else { "" },
                    pkt.0,
                    ev.cycle,
                    pid(ev.pipeline),
                    tid(ev.stage)
                );
            }
            kind => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"ev\":\"{detail}\"}}}}",
                    kind.tag(),
                    kind.tag(),
                    ev.cycle,
                    pid(ev.pipeline),
                    tid(ev.stage)
                );
            }
        }
    }
    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_types::PacketId;

    #[test]
    fn export_emits_tracks_and_slices() {
        let evs = vec![
            Event {
                cycle: 3,
                pipeline: 1,
                stage: 2,
                kind: EventKind::Execute {
                    pkt: PacketId(7),
                    queued: true,
                    bypassed: false,
                },
            },
            Event {
                cycle: 4,
                pipeline: 1,
                stage: 2,
                kind: EventKind::Egress { pkt: PacketId(7) },
            },
        ];
        let js = export(&evs);
        assert!(js.starts_with("{\"displayTimeUnit\""));
        assert!(js.ends_with("]}"));
        assert!(js.contains("\"process_name\""));
        assert!(js.contains("pipeline 1"));
        assert!(js.contains("stage 2"));
        assert!(js.contains("\"ph\":\"X\""));
        assert!(js.contains("serve pkt7"));
        assert!(js.contains("\"ph\":\"i\""));
        // Embedded detail strings must be escaped.
        assert!(js.contains("\\\"k\\\":\\\"egress\\\""));
    }

    #[test]
    fn global_events_get_their_own_track() {
        let evs = vec![Event {
            cycle: 0,
            pipeline: NO_LOC,
            stage: NO_LOC,
            kind: EventKind::PopStale,
        }];
        let js = export(&evs);
        assert!(js.contains("switch (global)"));
        assert!(js.contains(&format!("\"pid\":{GLOBAL_PID}")));
    }
}
