//! Baseline switch designs MP5 is evaluated against.
//!
//! Four of the paper's five comparison points are *configurations* of
//! the MP5 engine and are re-exported here as constructors:
//!
//! * [`naive`] — all state and all packets on one pipeline (§3.1,
//!   challenge #1): correct, but capped at `1/k` of line rate.
//! * [`static_shard`] — D2 ablation: state sharded randomly at compile
//!   time, never re-balanced (§4.3.2).
//! * [`no_d4`] — D4 ablation: steering + sharding but no phantom
//!   packets, so C1 can be violated (§4.3.2).
//! * [`ideal`] — the upper bound of §4.3.3: per-index queues (no
//!   head-of-line blocking) and LPT re-sharding.
//!
//! The fifth — the **state-of-the-art multi-pipelined switch with
//! packet re-circulation** (§2.3) — has a genuinely different datapath
//! (static port-to-pipeline mapping, no crossbars, packets loop back
//! through the whole pipeline to reach remote state) and is implemented
//! in [`recirc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recirc;

pub use recirc::{RecircConfig, RecircReport, RecircSwitch};

use mp5_compiler::CompiledProgram;
use mp5_core::{Mp5Switch, SwitchConfig};

/// The naive single-active-pipeline design (§3.1 challenge #1).
pub fn naive(prog: CompiledProgram, pipelines: usize) -> Mp5Switch {
    Mp5Switch::new(prog, SwitchConfig::naive(pipelines))
}

/// Static (compile-time random) sharding, no runtime re-balancing.
pub fn static_shard(prog: CompiledProgram, pipelines: usize, seed: u64) -> Mp5Switch {
    Mp5Switch::new(prog, SwitchConfig::static_shard(pipelines, seed))
}

/// MP5 without preemptive order enforcement (no phantom packets).
pub fn no_d4(prog: CompiledProgram, pipelines: usize) -> Mp5Switch {
    Mp5Switch::new(prog, SwitchConfig::no_d4(pipelines))
}

/// The ideal MP5 upper bound (no HOL blocking, LPT re-sharding).
pub fn ideal(prog: CompiledProgram, pipelines: usize) -> Mp5Switch {
    Mp5Switch::new(prog, SwitchConfig::ideal(pipelines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_compiler::{compile, Target};

    #[test]
    fn constructors_apply_expected_configs() {
        let prog = compile(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
            &Target::default(),
        )
        .unwrap();
        assert!(!no_d4(prog.clone(), 4).config().phantoms);
        assert!(ideal(prog.clone(), 4).config().per_index_fifos);
        assert_eq!(
            naive(prog.clone(), 4).config().spray,
            mp5_core::SprayMode::SinglePipeline(0)
        );
        assert_eq!(
            static_shard(prog, 4, 1).config().sharding,
            mp5_core::ShardingMode::Static
        );
    }
}
