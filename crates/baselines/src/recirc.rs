//! The state-of-the-art multi-pipelined switch with re-circulation
//! (paper §2.3).
//!
//! Characteristics modeled:
//!
//! * **Static port-to-pipeline mapping**: with `N` ports and `k`
//!   pipelines, ports are mapped in contiguous blocks, Tofino-style
//!   ("ports 1–16 are mapped to pipeline 1, ...").
//! * **No state sharing**: each register index's active copy lives in a
//!   statically chosen pipeline (seeded random shard, matching the
//!   static-sharding ablation); unshardable arrays live in pipeline 0.
//! * **Re-circulation**: "the only way a packet can access a state
//!   stored in another pipeline is by being re-circulated to that
//!   pipeline" — the packet traverses its current pipeline to the end,
//!   then loops back (paying `recirc_latency` extra cycles) into the
//!   *target* pipeline's ingress, where it competes with (and takes
//!   priority over) fresh arrivals.
//!
//! A packet executes its program stages strictly in order: a stage runs
//! only when the packet is in the pipeline that holds every state the
//! stage touches for this packet; otherwise execution is suspended until
//! a later pass. The fundamental re-circulation delay is what breaks
//! condition C1 (paper Example 2) and costs throughput (§4.3.2, D3).

use std::collections::VecDeque;
use std::sync::Arc;

use mp5_compiler::program::{INDEX_ARRAY_LEVEL, REG_STAGE_SENTINEL};
use mp5_compiler::CompiledProgram;
use mp5_core::{EngineMode, RunReport, WorkerPool};
use mp5_fabric::OrderKey;
use mp5_faults::{FaultClass, FaultInjector, NoFaults};
use mp5_trace::{Event, EventKind, MemSink, NopSink, TraceCtx, TraceSink, NO_LOC};
use mp5_types::time::cycle_len;
use mp5_types::{hash2, Packet, PacketId, PipelineId, RegId, StageId, Value};

/// Configuration of the re-circulation baseline.
#[derive(Debug, Clone)]
pub struct RecircConfig {
    /// Parallel pipelines `k`.
    pub pipelines: usize,
    /// Switch ports (for the static port map; default 64).
    pub ports: usize,
    /// Extra cycles a packet spends looping from egress back to
    /// ingress (on top of re-traversing the pipeline).
    pub recirc_latency: u64,
    /// Seed for the static state shard.
    pub seed: u64,
    /// Hard cycle cap override.
    pub max_cycles: Option<u64>,
    /// Which cycle engine executes the work phase (results are
    /// bit-identical either way; see [`EngineMode`]).
    pub engine: EngineMode,
}

impl RecircConfig {
    /// Default configuration for `k` pipelines.
    pub fn new(pipelines: usize) -> Self {
        RecircConfig {
            pipelines,
            ports: 64,
            recirc_latency: 2,
            seed: 0,
            max_cycles: None,
            engine: EngineMode::Sequential,
        }
    }

    /// Selects the cycle engine (builder style).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

/// Report of a re-circulation run: the common [`RunReport`] plus
/// recirculation statistics.
#[derive(Debug, Clone)]
pub struct RecircReport {
    /// Common metrics and equivalence evidence.
    pub report: RunReport,
    /// Total re-circulations performed.
    pub total_recircs: u64,
    /// Highest number of passes any single packet needed.
    pub max_passes: u32,
}

impl RecircReport {
    /// Average re-circulations per packet.
    pub fn recircs_per_packet(&self) -> f64 {
        if self.report.offered == 0 {
            0.0
        } else {
            self.total_recircs as f64 / self.report.offered as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Flight {
    pkt: Packet,
    /// Entry-order key, reproduced on every traced state access so the
    /// offline auditor can reconstruct the reference serial order.
    order: OrderKey,
    /// Next body stage to execute (stages execute strictly in order).
    exec_ptr: usize,
    passes: u32,
}

/// Read-only inputs of one pipeline's work phase.
struct RecircCtx<'a> {
    prog: &'a CompiledProgram,
    prologue: usize,
    cycle: u64,
    /// `(pipeline, stage)` pairs frozen by injected stalls this cycle
    /// (empty under `NoFaults`). Physical stage ids, like the MP5
    /// switch's, so the same fault plan stalls the same hardware.
    stalls: &'a [(u16, u16)],
}

impl RecircCtx<'_> {
    /// Is `(pl, body_stage)` under an injected stall this cycle? A
    /// stalled stage skips execution; the packet keeps moving and picks
    /// the stage up on a later pass (this datapath's native recovery —
    /// recirculation — absorbs the stall).
    #[inline]
    fn stalled(&self, pl: usize, body_stage: usize) -> bool {
        !self.stalls.is_empty()
            && self
                .stalls
                .contains(&(pl as u16, (body_stage + self.prologue) as u16))
    }
}

/// A stage is executable in pipeline `pl` if every access the packet
/// makes at that stage lives in `pl`.
fn stage_executable(prologue: usize, pl: usize, body_stage: usize, fl: &Flight) -> bool {
    let phys = (body_stage + prologue) as u16;
    fl.pkt
        .tags
        .iter()
        .filter(|t| t.stage == StageId(phys))
        .all(|t| t.pipeline.index() == pl)
}

/// Work phase for one pipeline: execute eligible stages in program
/// order. Shared verbatim by the sequential and parallel engines so
/// their outputs are bit-identical; state-access log entries are
/// buffered in `accesses` and merged by the coordinator in pipeline
/// order (the exact sequential order).
#[allow(clippy::too_many_arguments)]
fn work_row<S: TraceSink>(
    ctx: &RecircCtx<'_>,
    pl: usize,
    inc_row: &mut [Option<Flight>],
    lanes: &mut [Option<Flight>],
    regs: &mut [Vec<Value>],
    sink: &mut S,
    accesses: &mut Vec<(RegId, u32, PacketId)>,
) -> u64 {
    let mut stall_hits = 0u64;
    for (st, slot) in inc_row.iter_mut().enumerate() {
        if let Some(mut fl) = slot.take() {
            if fl.exec_ptr == st
                && stage_executable(ctx.prologue, pl, st, &fl)
                && ctx.stalled(pl, st)
            {
                // Injected stall: the stage skips this packet, which
                // recirculates for another pass — the baseline's native
                // recovery path.
                stall_hits += 1;
                lanes[st] = Some(fl);
                continue;
            }
            if fl.exec_ptr == st && stage_executable(ctx.prologue, pl, st, &fl) {
                if S::ENABLED {
                    // `queued: false`: this datapath has no stage FIFOs —
                    // every execution is a pass-through of the lane
                    // occupant.
                    TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                        sink,
                        EventKind::Execute {
                            pkt: fl.pkt.id,
                            queued: false,
                            bypassed: false,
                        },
                    );
                }
                let stage_accesses = ctx.prog.execute_stage(st, &mut fl.pkt.fields, regs);
                for a in &stage_accesses {
                    if S::ENABLED {
                        TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                            sink,
                            EventKind::Access {
                                pkt: fl.pkt.id,
                                reg: a.reg,
                                index: a.index,
                                order: (fl.order.0, fl.order.1),
                            },
                        );
                    }
                    accesses.push((a.reg, a.index, fl.pkt.id));
                }
                fl.exec_ptr += 1;
            }
            lanes[st] = Some(fl);
        }
    }
    stall_hits
}

/// Inputs every worker shares, snapshotted at construction.
#[derive(Debug)]
struct RecircShared {
    prog: CompiledProgram,
    prologue: usize,
    /// Whether the coordinator's sink records events (`S::ENABLED`):
    /// workers buffer into a [`MemSink`] only when it does.
    tracing: bool,
}

/// One pipeline's work-phase payload, *moved* into a worker and back.
#[derive(Debug)]
struct RecircUnit {
    pl: usize,
    inc_row: Vec<Option<Flight>>,
    lanes: Vec<Option<Flight>>,
    regs: Vec<Vec<Value>>,
    accesses: Vec<(RegId, u32, PacketId)>,
    events: Vec<Event>,
    /// Executions suppressed by injected stalls this cycle.
    stall_hits: u64,
}

/// A worker's per-cycle job: a contiguous chunk of pipelines.
#[derive(Debug)]
struct RecircJob {
    shared: Arc<RecircShared>,
    cycle: u64,
    units: Vec<RecircUnit>,
    /// Injected stalls active this cycle (empty under `NoFaults`).
    stalls: Vec<(u16, u16)>,
}

/// The job function executed on the worker threads.
fn run_recirc_job(mut job: RecircJob) -> Vec<RecircUnit> {
    for u in &mut job.units {
        let ctx = RecircCtx {
            prog: &job.shared.prog,
            prologue: job.shared.prologue,
            cycle: job.cycle,
            stalls: &job.stalls,
        };
        if job.shared.tracing {
            let mut sink = MemSink {
                events: std::mem::take(&mut u.events),
            };
            u.stall_hits = work_row(
                &ctx,
                u.pl,
                &mut u.inc_row,
                &mut u.lanes,
                &mut u.regs,
                &mut sink,
                &mut u.accesses,
            );
            u.events = sink.into_events();
        } else {
            u.stall_hits = work_row(
                &ctx,
                u.pl,
                &mut u.inc_row,
                &mut u.lanes,
                &mut u.regs,
                &mut NopSink,
                &mut u.accesses,
            );
        }
    }
    job.units
}

/// A recycled `(accesses, events)` buffer pair for one pipeline row.
type SpareBuffers = (Vec<(RegId, u32, PacketId)>, Vec<Event>);

/// The parallel engine: a persistent worker pool plus reusable buffers.
#[derive(Debug)]
struct RecircEngine {
    pool: WorkerPool<RecircJob, Vec<RecircUnit>>,
    shared: Arc<RecircShared>,
    /// Recycled buffers to avoid per-cycle allocs.
    spare: Vec<SpareBuffers>,
}

/// The re-circulation switch simulator.
///
/// Generic over a [`TraceSink`] like `mp5_core::Mp5Switch`: the default
/// [`NopSink`] compiles the instrumentation away; use
/// [`RecircSwitch::with_sink`] to record a run for the `mp5audit`
/// offline auditor (which checks C1 and conservation against the
/// recorded stream — and, for this baseline, *expects* C1 findings).
/// Also generic over a [`FaultInjector`] `F` (default [`NoFaults`]).
/// The baseline's fault support is deliberately minimal: only
/// `StageStall` touches the datapath (a stalled stage skips execution
/// and the packet recirculates — the design's native recovery); every
/// other fired fault is accounted in the report but has no effect here,
/// because the mechanisms they target (phantoms, crossbars, dynamic
/// sharding) do not exist in this datapath.
#[derive(Debug)]
pub struct RecircSwitch<S: TraceSink = NopSink, F: FaultInjector = NoFaults> {
    cfg: RecircConfig,
    prog: CompiledProgram,
    k: usize,
    body_stages: usize,
    prologue: usize,
    regs: Vec<Vec<Vec<Value>>>,
    shard: Vec<Vec<u16>>,
    lanes: Vec<Vec<Option<Flight>>>,
    /// Per-pipeline fresh-arrival queues (static port map).
    fresh: Vec<VecDeque<Flight>>,
    /// Per-pipeline re-circulation queues (priority over fresh).
    recirc_q: Vec<VecDeque<Flight>>,
    /// Packets looping back: `(ready_cycle, target pipeline, flight)`.
    looping: Vec<(u64, usize, Flight)>,
    arrivals: VecDeque<Packet>,
    cycle: u64,
    report: RunReport,
    total_recircs: u64,
    max_passes: u32,
    /// Worker pool when `cfg.engine` is [`EngineMode::Parallel`].
    par: Option<RecircEngine>,
    sink: S,
    /// Deterministic fault schedule (inert [`NoFaults`] by default).
    faults: F,
}

impl RecircSwitch<NopSink> {
    /// Builds the (untraced) baseline switch.
    pub fn new(prog: CompiledProgram, cfg: RecircConfig) -> Self {
        Self::with_sink(prog, cfg, NopSink)
    }
}

impl<S: TraceSink> RecircSwitch<S, NoFaults> {
    /// Builds a baseline switch that records every observable action
    /// into `sink`. The sink only observes; the run is identical to
    /// [`RecircSwitch::new`]'s.
    pub fn with_sink(prog: CompiledProgram, cfg: RecircConfig, sink: S) -> Self {
        RecircSwitch::with_faults(prog, cfg, sink, NoFaults)
    }
}

impl<S: TraceSink, F: FaultInjector> RecircSwitch<S, F> {
    /// Builds a baseline switch with a deterministic fault schedule
    /// attached (see the type-level docs for which faults this
    /// datapath honors).
    pub fn with_faults(prog: CompiledProgram, cfg: RecircConfig, sink: S, faults: F) -> Self {
        let k = cfg.pipelines;
        assert!(k >= 1);
        let body_stages = prog.stages.len();
        let prologue = prog.resolution.stages;
        let regs = (0..k).map(|_| prog.initial_regs()).collect();
        let shard = prog
            .regs
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                if r.shardable {
                    (0..r.size as usize)
                        .map(|i| {
                            (hash2(cfg.seed as i64 ^ ((ri as i64) << 32), i as i64) % k as i64)
                                as u16
                        })
                        .collect()
                } else {
                    vec![0; r.size as usize]
                }
            })
            .collect();
        let mut report = RunReport::new();
        report.set_cycle_len(cycle_len(k));
        let par = match cfg.engine {
            EngineMode::Sequential => None,
            EngineMode::Parallel(n) => {
                assert!(n >= 1, "EngineMode::Parallel needs at least one worker");
                let shared = Arc::new(RecircShared {
                    prog: prog.clone(),
                    prologue,
                    tracing: S::ENABLED,
                });
                Some(RecircEngine {
                    pool: WorkerPool::new(cfg.engine.workers_for(k), run_recirc_job),
                    shared,
                    spare: Vec::new(),
                })
            }
        };
        RecircSwitch {
            lanes: (0..k).map(|_| vec![None; body_stages]).collect(),
            fresh: (0..k).map(|_| VecDeque::new()).collect(),
            recirc_q: (0..k).map(|_| VecDeque::new()).collect(),
            looping: Vec::new(),
            arrivals: VecDeque::new(),
            cycle: 0,
            report,
            total_recircs: 0,
            max_passes: 0,
            par,
            cfg,
            prog,
            k,
            body_stages,
            prologue,
            regs,
            shard,
            sink,
            faults,
        }
    }

    /// Static port-to-pipeline map: contiguous blocks.
    fn port_pipeline(&self, port: u16) -> usize {
        ((port as usize) * self.k / self.cfg.ports).min(self.k - 1)
    }

    /// The pipeline holding the state for a resolved access.
    fn access_pipeline(&self, reg: mp5_types::RegId, index: u32) -> usize {
        if reg == REG_STAGE_SENTINEL
            || index == INDEX_ARRAY_LEVEL
            || !self.prog.regs[reg.index()].shardable
        {
            0
        } else {
            self.shard[reg.index()][index as usize] as usize
        }
    }

    /// Runs a trace to completion.
    pub fn run(self, packets: Vec<Packet>) -> RecircReport {
        self.run_traced(packets).0
    }

    /// Like [`RecircSwitch::run`], but also returns the trace sink with
    /// its recorded event stream.
    pub fn run_traced(mut self, mut packets: Vec<Packet>) -> (RecircReport, S) {
        packets.sort_by_key(|p| p.entry_order_key());
        self.report.offered = packets.len() as u64;
        self.report.input_duration = packets
            .last()
            .map(|p| p.arrival + mp5_types::BYTES_PER_SLOT)
            .unwrap_or(0);
        self.arrivals = packets.into();
        let clen = cycle_len(self.k);
        let input_cycles = self.report.input_duration / clen + 1;
        let cap = self.cfg.max_cycles.unwrap_or_else(|| {
            // Every packet may recirculate up to once per access tag;
            // budget generously.
            input_cycles * (self.k as u64 + 2) * 8 + 100_000
        });
        while !self.drained() {
            assert!(
                self.cycle < cap,
                "recirculation simulation exceeded {cap} cycles"
            );
            self.step();
        }
        self.finish()
    }

    fn drained(&self) -> bool {
        self.arrivals.is_empty()
            && self.looping.is_empty()
            && self.fresh.iter().all(|q| q.is_empty())
            && self.recirc_q.iter().all(|q| q.is_empty())
            && self.lanes.iter().flatten().all(|l| l.is_none())
    }

    fn step(&mut self) {
        // 0. Fault schedule: fire due faults and account them. Only
        // `StageStall` affects this datapath (see the type docs); the
        // rest are recorded as fired-but-inapplicable.
        if F::ENABLED {
            for fired in self.faults.begin_cycle(self.cycle) {
                self.report.fault.injected += 1;
                match fired.kind.class() {
                    FaultClass::Recovered => self.report.fault.recovered += 1,
                    FaultClass::Degraded => self.report.fault.degraded += 1,
                }
                if S::ENABLED {
                    TraceCtx::new(self.cycle, NO_LOC, NO_LOC).emit(
                        &mut self.sink,
                        EventKind::FaultInjected {
                            code: fired.kind.code(),
                            param: fired.kind.param(),
                        },
                    );
                }
            }
        }

        // 1. Move phase: advance all occupants; handle egress.
        let mut incoming: Vec<Vec<Option<Flight>>> =
            (0..self.k).map(|_| vec![None; self.body_stages]).collect();
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            for st in (0..self.body_stages).rev() {
                let Some(fl) = self.lanes[pl][st].take() else {
                    continue;
                };
                if st + 1 == self.body_stages {
                    self.egress(pl, fl);
                } else {
                    inc_row[st + 1] = Some(fl);
                }
            }
        }

        // 2. Loop-back deliveries.
        let mut still: Vec<(u64, usize, Flight)> = Vec::new();
        for (ready, target, fl) in self.looping.drain(..) {
            if ready <= self.cycle {
                self.recirc_q[target].push_back(fl);
            } else {
                still.push((ready, target, fl));
            }
        }
        self.looping = still;

        // 3. Fresh arrivals route to their port's pipeline.
        let now_end = (self.cycle + 1) * cycle_len(self.k);
        while self.arrivals.front().is_some_and(|p| p.arrival < now_end) {
            let Some(mut pkt) = self.arrivals.pop_front() else {
                break; // unreachable: `front()` was just checked
            };
            let order = OrderKey(pkt.arrival, pkt.port.0 as u64);
            // Resolve the itinerary once at first ingress.
            self.resolve(&mut pkt);
            let pl = self.port_pipeline(pkt.port.0);
            if S::ENABLED {
                TraceCtx::new(self.cycle, pl as u16, 0).emit(
                    &mut self.sink,
                    EventKind::Ingress {
                        pkt: pkt.id,
                        order: (order.0, order.1),
                    },
                );
            }
            self.fresh[pl].push_back(Flight {
                pkt,
                order,
                exec_ptr: 0,
                passes: 1,
            });
        }

        // 4. Ingress: one admission per pipeline per cycle; recirculated
        // packets have priority (they already consumed switch capacity).
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            if inc_row[0].is_some() {
                continue;
            }
            if let Some(fl) = self.recirc_q[pl].pop_front() {
                inc_row[0] = Some(fl);
            } else if let Some(fl) = self.fresh[pl].pop_front() {
                inc_row[0] = Some(fl);
            }
        }

        // 5. Work phase: execute eligible stages in program order.
        // Per-pipeline work is independent (a stage only touches its
        // own pipeline's register copies), so the parallel engine
        // shards it by pipeline; access-log entries are buffered and
        // merged in pipeline order either way.
        if self.par.is_some() {
            self.work_parallel(&mut incoming);
        } else {
            let mut accesses = Vec::new();
            for (pl, inc_row) in incoming.iter_mut().enumerate() {
                let ctx = RecircCtx {
                    prog: &self.prog,
                    prologue: self.prologue,
                    cycle: self.cycle,
                    stalls: self.faults.active_stalls(),
                };
                let hits = work_row(
                    &ctx,
                    pl,
                    inc_row,
                    &mut self.lanes[pl],
                    &mut self.regs[pl],
                    &mut self.sink,
                    &mut accesses,
                );
                self.report.fault.stall_cycles += hits;
                for (reg, index, pkt) in accesses.drain(..) {
                    self.report
                        .result
                        .access_log
                        .entry((reg, index))
                        .or_default()
                        .push(pkt);
                }
            }
        }

        self.cycle += 1;
    }

    /// Work phase on the worker pool: one barrier round per cycle, with
    /// per-pipeline state *moved* into the jobs and back. The merge
    /// applies every buffered effect in ascending pipeline order —
    /// exactly the sequential order — so reports and event streams are
    /// bit-identical to [`EngineMode::Sequential`].
    fn work_parallel(&mut self, incoming: &mut [Vec<Option<Flight>>]) {
        let Some(par) = self.par.as_mut() else {
            // Guarded by the `par.is_some()` check in `step`; skipping
            // the work phase silently would corrupt the run.
            unreachable!("work_parallel called without a parallel engine");
        };
        let stalls: Vec<(u16, u16)> = self.faults.active_stalls().to_vec();
        let k = self.k;
        let workers = par.pool.workers();
        let mut units = Vec::with_capacity(k);
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            let (accesses, events) = par.spare.pop().unwrap_or_default();
            units.push(RecircUnit {
                pl,
                inc_row: std::mem::take(inc_row),
                lanes: std::mem::take(&mut self.lanes[pl]),
                regs: std::mem::take(&mut self.regs[pl]),
                accesses,
                events,
                stall_hits: 0,
            });
        }
        // Contiguous chunks, first `rem` workers take one extra, so a
        // flatten of the results restores ascending pipeline order.
        let base = k / workers;
        let rem = k % workers;
        let mut it = units.into_iter();
        let mut jobs = Vec::with_capacity(workers);
        for w in 0..workers {
            let take = base + usize::from(w < rem);
            let chunk: Vec<RecircUnit> = it.by_ref().take(take).collect();
            if chunk.is_empty() {
                break;
            }
            jobs.push(RecircJob {
                shared: Arc::clone(&par.shared),
                cycle: self.cycle,
                units: chunk,
                stalls: stalls.clone(),
            });
        }
        for mut unit in par.pool.exchange(jobs).into_iter().flatten() {
            let pl = unit.pl;
            incoming[pl] = std::mem::take(&mut unit.inc_row);
            self.lanes[pl] = std::mem::take(&mut unit.lanes);
            self.regs[pl] = std::mem::take(&mut unit.regs);
            self.report.fault.stall_cycles += unit.stall_hits;
            if S::ENABLED {
                for ev in unit.events.drain(..) {
                    self.sink.emit(ev);
                }
            }
            for (reg, index, pkt) in unit.accesses.drain(..) {
                self.report
                    .result
                    .access_log
                    .entry((reg, index))
                    .or_default()
                    .push(pkt);
            }
            par.spare.push((unit.accesses, unit.events));
        }
    }

    /// Resolution happens once, at first ingress (the baseline has no
    /// phantom machinery — we reuse the compiled resolution program only
    /// to learn the packet's state itinerary).
    fn resolve(&mut self, pkt: &mut Packet) {
        let resolved = self.prog.resolve(&mut pkt.fields);
        pkt.tags = resolved
            .into_iter()
            .map(|r| mp5_types::AccessTag {
                reg: r.reg,
                index: r.index,
                pipeline: PipelineId(self.access_pipeline(r.reg, r.index) as u16),
                stage: r.stage,
                speculative: r.speculative,
            })
            .collect();
    }

    /// Pipeline egress: complete, or loop back towards the pipeline of
    /// the next pending stage's state.
    fn egress(&mut self, pl: usize, fl: Flight) {
        if fl.exec_ptr >= self.body_stages {
            if S::ENABLED {
                TraceCtx::new(self.cycle, pl as u16, (self.body_stages - 1) as u16)
                    .emit(&mut self.sink, EventKind::Egress { pkt: fl.pkt.id });
            }
            self.max_passes = self.max_passes.max(fl.passes);
            self.report.result.outputs.insert(
                fl.pkt.id,
                fl.pkt.fields[..self.prog.declared_fields].to_vec(),
            );
            self.report.completions.push((fl.pkt.id, self.cycle));
            self.report.completed += 1;
            return;
        }
        // Target: the pipeline of the first pending access at the next
        // unexecuted stage (stateless pending stages execute anywhere,
        // so scan forward for the first stateful constraint).
        let mut target = None;
        for b in fl.exec_ptr..self.body_stages {
            let phys = (b + self.prologue) as u16;
            if let Some(t) = fl.pkt.tags.iter().find(|t| t.stage == StageId(phys)) {
                target = Some(t.pipeline.index());
                break;
            }
        }
        // No stateful constraint remains: any pipeline can finish it.
        let target = target.unwrap_or(0);
        let mut fl = fl;
        fl.passes += 1;
        self.total_recircs += 1;
        if S::ENABLED {
            TraceCtx::new(self.cycle, pl as u16, (self.body_stages - 1) as u16).emit(
                &mut self.sink,
                EventKind::Recirculate {
                    pkt: fl.pkt.id,
                    target: target as u16,
                },
            );
        }
        self.looping
            .push((self.cycle + self.cfg.recirc_latency, target, fl));
    }

    fn finish(mut self) -> (RecircReport, S) {
        let mut final_regs = Vec::with_capacity(self.prog.regs.len());
        for (ri, meta) in self.prog.regs.iter().enumerate() {
            let mut arr = Vec::with_capacity(meta.size as usize);
            for idx in 0..meta.size as usize {
                let pl = self.access_pipeline(mp5_types::RegId::from(ri), idx as u32);
                arr.push(self.regs[pl][ri][idx]);
            }
            final_regs.push(arr);
        }
        self.report.result.final_regs = final_regs;
        self.report.result.processed = self.report.completed;
        self.report.cycles = self.cycle;
        (
            RecircReport {
                report: self.report,
                total_recircs: self.total_recircs,
                max_passes: self.max_passes,
            },
            self.sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_compiler::{compile, Target};
    use mp5_core::{Mp5Switch, SwitchConfig};
    use mp5_traffic::TraceBuilder;

    const TWO_STATE: &str = "struct Packet { int a; int b; int o; };
        int r1[16] = {0};
        int r2[64] = {0};
        void func(struct Packet p) {
            r1[p.a % 16] = r1[p.a % 16] + 1;
            r2[p.b % 64] = r2[p.b % 64] + 1;
            p.o = r2[p.b % 64];
        }";

    fn trace(src: &str, n: usize, seed: u64) -> (CompiledProgram, Vec<Packet>) {
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let t = TraceBuilder::new(n, seed).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1000);
            f[1] = r.gen_range(0..1000);
        });
        (prog, t)
    }

    #[test]
    fn recirc_processes_everything_eventually() {
        let (prog, t) = trace(TWO_STATE, 2000, 1);
        let rep = RecircSwitch::new(prog, RecircConfig::new(4)).run(t);
        assert_eq!(rep.report.completed, 2000);
        assert!(rep.total_recircs > 0, "remote state must force recircs");
        assert!(rep.max_passes >= 2);
    }

    #[test]
    fn recirc_absorbs_injected_stalls() {
        let (prog, t) = trace(TWO_STATE, 1500, 5);
        let reference = BanzaiSwitch::new(prog.clone()).run(t.clone());
        let plan = mp5_faults::FaultPlan::new(9).stage_stall(10, 0, 2, 60);
        let rep =
            RecircSwitch::with_faults(prog, RecircConfig::new(4), NopSink, plan.injector()).run(t);
        assert_eq!(rep.report.completed, 1500);
        // Recirculation does not preserve C1, so a stall may legally reorder
        // state accesses and change order-dependent packet *outputs*. The
        // order-independent increment counters must still be conserved.
        assert_eq!(
            rep.report.result.final_regs, reference.final_regs,
            "stalls delay passes but never lose state updates"
        );
        assert_eq!(rep.report.fault.injected, 1);
        assert!(rep.report.fault.accounted());
        assert!(
            rep.report.fault.stall_cycles > 0,
            "the stall window must suppress executions"
        );
    }

    #[test]
    fn recirc_violates_c1_under_contention() {
        let (prog, t) = trace(TWO_STATE, 3000, 2);
        let reference = BanzaiSwitch::new(prog.clone()).run(t.clone());
        let rep = RecircSwitch::new(prog, RecircConfig::new(4)).run(t);
        assert_ne!(
            rep.report.result.access_log, reference.access_log,
            "re-circulation delay must break the arrival-order access"
        );
    }

    #[test]
    fn recirc_throughput_below_mp5() {
        let (prog, t) = trace(TWO_STATE, 3000, 3);
        let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(t.clone());
        let rec = RecircSwitch::new(prog, RecircConfig::new(4)).run(t);
        assert!(
            rec.report.normalized_throughput() < mp5.normalized_throughput(),
            "recirc {} must be slower than MP5 {}",
            rec.report.normalized_throughput(),
            mp5.normalized_throughput()
        );
    }

    #[test]
    fn stateless_program_needs_no_recircs() {
        let (prog, t) = trace(
            "struct Packet { int a; int b; int o; };
             void func(struct Packet p) { p.o = p.a + p.b; }",
            8000,
            4,
        );
        let reference = BanzaiSwitch::new(prog.clone()).run(t.clone());
        let rep = RecircSwitch::new(prog, RecircConfig::new(4)).run(t);
        assert_eq!(rep.total_recircs, 0);
        assert!(rep.report.result.equivalent_to(&reference));
        assert!(
            rep.report.normalized_throughput() > 0.95,
            "got {}",
            rep.report.normalized_throughput()
        );
    }

    #[test]
    fn single_pipeline_recirc_is_equivalent() {
        // With k=1 everything is local: no recircs, serial order holds.
        let (prog, t) = trace(TWO_STATE, 1500, 5);
        let reference = BanzaiSwitch::new(prog.clone()).run(t.clone());
        let rep = RecircSwitch::new(prog, RecircConfig::new(1)).run(t);
        assert_eq!(rep.total_recircs, 0);
        assert!(rep.report.result.equivalent_to(&reference));
    }

    #[test]
    fn traced_recirc_records_loops_and_conserves_packets() {
        use mp5_trace::{EventKind, MemSink};
        let (prog, t) = trace(TWO_STATE, 1000, 7);
        let plain = RecircSwitch::new(prog.clone(), RecircConfig::new(4)).run(t.clone());
        let (rep, sink) =
            RecircSwitch::with_sink(prog, RecircConfig::new(4), MemSink::new()).run_traced(t);
        assert_eq!(plain.report.result.final_regs, rep.report.result.final_regs);
        assert_eq!(plain.report.cycles, rep.report.cycles);
        let evs = sink.into_events();
        let count =
            |pred: fn(&EventKind) -> bool| evs.iter().filter(|e| pred(&e.kind)).count() as u64;
        assert_eq!(
            count(|k| matches!(k, EventKind::Recirculate { .. })),
            rep.total_recircs
        );
        assert_eq!(
            count(|k| matches!(k, EventKind::Ingress { .. })),
            rep.report.offered
        );
        assert_eq!(
            count(|k| matches!(k, EventKind::Egress { .. })),
            rep.report.completed
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        use mp5_trace::{stream_hash, MemSink};
        let (prog, t) = trace(TWO_STATE, 1500, 9);
        let (seq, seq_sink) =
            RecircSwitch::with_sink(prog.clone(), RecircConfig::new(4), MemSink::new())
                .run_traced(t.clone());
        let seq_hash = stream_hash(&seq_sink.into_events());
        for n in [1, 2, 4, 8] {
            let cfg = RecircConfig::new(4).with_engine(EngineMode::Parallel(n));
            let (par, par_sink) =
                RecircSwitch::with_sink(prog.clone(), cfg, MemSink::new()).run_traced(t.clone());
            assert_eq!(seq.report, par.report, "Parallel({n}) report diverged");
            assert_eq!(seq.total_recircs, par.total_recircs);
            assert_eq!(seq.max_passes, par.max_passes);
            assert_eq!(
                seq_hash,
                stream_hash(&par_sink.into_events()),
                "Parallel({n}) event stream diverged"
            );
        }
    }

    #[test]
    fn port_map_is_contiguous_blocks() {
        let (prog, _) = trace(TWO_STATE, 1, 6);
        let sw = RecircSwitch::new(prog, RecircConfig::new(4));
        assert_eq!(sw.port_pipeline(0), 0);
        assert_eq!(sw.port_pipeline(15), 0);
        assert_eq!(sw.port_pipeline(16), 1);
        assert_eq!(sw.port_pipeline(63), 3);
    }
}
