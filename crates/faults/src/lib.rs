//! # mp5-faults — deterministic fault injection for the MP5 switch
//!
//! The paper assumes every pipeline, FIFO, phantom channel, and
//! crossbar lane is flawless forever. Production switches are not: a
//! pipeline stalls, a phantom placeholder gets lost, a bounded FIFO
//! overflows. This crate supplies the *plan* side of fault injection:
//!
//! * [`FaultPlan`] — a seeded, JSON-serializable schedule of faults
//!   that fire at precise cycles (builder API + [`FaultPlan::chaos`]
//!   randomized generator). The JSON codec is hand-rolled, like the
//!   `mp5-trace` event codec, so the crate has zero dependencies.
//! * [`FaultInjector`] — the zero-cost hook trait the switch runtime is
//!   generic over, following the same `const ENABLED` static-dispatch
//!   pattern as `mp5_trace::TraceSink`: with the default [`NoFaults`]
//!   every query constant-folds to "no fault" and the hot path is
//!   byte-identical to a build without this crate.
//! * [`PlannedFaults`] — the real injector compiled from a plan:
//!   cycle-sorted cursor plus active fault windows.
//!
//! Determinism is the whole point: the same plan against the same
//! trace must produce bit-identical runs on the sequential and the
//! parallel engine, so every decision here is a pure function of
//! `(seed, cycle, key)` — no ambient randomness, no wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;

use json::JsonVal;

/// SplitMix64 — tiny, seed-stable PRNG step used for chaos-plan
/// generation and per-phantom drop decisions. Hand-rolled so the crate
/// needs no `rand` dependency and results never change under us.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One kind of injectable fault. Serialized with a `kind` tag so
/// hand-written plan files read naturally:
///
/// ```json
/// { "at": 40, "kind": "pipeline_fail", "pipeline": 2 }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Pipeline `pipeline` dies permanently. The switch drains its
    /// in-flight packets, evacuates its sharded state to survivors via
    /// the D2 remap path, excludes it from steering/spray, and keeps
    /// running in degraded mode. Pipeline 0 may never fail: it hosts
    /// the conservative-serialization fallbacks (sentinel registers,
    /// unshardable state), so killing it is unrecoverable by design.
    PipelineFail {
        /// The pipeline to kill (must be `1..k`).
        pipeline: u16,
    },
    /// Stage `(pipeline, stage)` stops serving its stateful queue for
    /// `cycles` cycles. Pass-through traffic is unaffected (Invariant 2
    /// concerns served packets); queued work is merely delayed.
    StageStall {
        /// Stalled pipeline.
        pipeline: u16,
        /// Stalled stage within that pipeline.
        stage: u16,
        /// Window length in cycles.
        cycles: u64,
    },
    /// For `cycles` cycles, each phantom delivered by the channel is
    /// lost with probability `rate_permille`/1000 (decided by a pure
    /// hash of `(seed, cycle, phantom key)`). Non-silent losses are
    /// recorded so the matching data packet can be recovered into
    /// FIFO-order on arrival; `silent` losses leave no record — the
    /// negative control that the offline auditor must catch.
    PhantomDrop {
        /// Loss probability in permille (0..=1000).
        rate_permille: u32,
        /// Window length in cycles.
        cycles: u64,
        /// If true, the loss is unrecorded and unrecovered.
        silent: bool,
    },
    /// Stage `(pipeline, stage)`'s phantom FIFO behaves as if full for
    /// `cycles` cycles: phantom pushes are rejected, exercising the
    /// same lost-phantom recovery path as [`FaultKind::PhantomDrop`].
    FifoOverflow {
        /// Pressured pipeline.
        pipeline: u16,
        /// Pressured stage.
        stage: u16,
        /// Window length in cycles.
        cycles: u64,
    },
    /// For `cycles` cycles every crossbar grant is delayed by `delay`
    /// cycles: steered packets sit in a pending-grant buffer before
    /// entering the destination FIFO. Order is held by the phantom, so
    /// this is a pure slowdown.
    CrossbarGrantDelay {
        /// Grant latency in cycles.
        delay: u64,
        /// Window length in cycles.
        cycles: u64,
    },
    /// The next `count` scheduled D2 remap rounds are aborted before
    /// computing any move (models a failed control-plane transaction).
    RemapAbort {
        /// How many upcoming remap rounds to abort.
        count: u32,
    },
}

/// How a fired fault is accounted in `FaultReport`: the invariant the
/// switch maintains is `injected == recovered + degraded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Transient: the runtime machinery absorbs it completely (stalls,
    /// recoverable phantom losses, FIFO pressure, grant delays, remap
    /// aborts). The run ends functionally identical to a clean run.
    Recovered,
    /// Acknowledged degradation: the fault permanently changes the
    /// machine (a dead pipeline) or deliberately breaks equivalence (a
    /// silent phantom loss used as auditor negative control).
    Degraded,
}

impl FaultKind {
    /// Stable numeric code carried by `FaultInjected` trace events.
    pub fn code(&self) -> u16 {
        match self {
            FaultKind::PipelineFail { .. } => 1,
            FaultKind::StageStall { .. } => 2,
            FaultKind::PhantomDrop { .. } => 3,
            FaultKind::FifoOverflow { .. } => 4,
            FaultKind::CrossbarGrantDelay { .. } => 5,
            FaultKind::RemapAbort { .. } => 6,
        }
    }

    /// Compact parameter word carried by `FaultInjected` trace events
    /// (pipeline/stage packed into the low bits where applicable).
    pub fn param(&self) -> u64 {
        match *self {
            FaultKind::PipelineFail { pipeline } => pipeline as u64,
            FaultKind::StageStall {
                pipeline, stage, ..
            } => ((pipeline as u64) << 16) | stage as u64,
            FaultKind::PhantomDrop { rate_permille, .. } => rate_permille as u64,
            FaultKind::FifoOverflow {
                pipeline, stage, ..
            } => ((pipeline as u64) << 16) | stage as u64,
            FaultKind::CrossbarGrantDelay { delay, .. } => delay,
            FaultKind::RemapAbort { count } => count as u64,
        }
    }

    /// Accounting class (see [`FaultClass`]).
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::PipelineFail { .. } => FaultClass::Degraded,
            FaultKind::PhantomDrop { silent: true, .. } => FaultClass::Degraded,
            _ => FaultClass::Recovered,
        }
    }

    /// The `kind` tag used in the JSON encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::PipelineFail { .. } => "pipeline_fail",
            FaultKind::StageStall { .. } => "stage_stall",
            FaultKind::PhantomDrop { .. } => "phantom_drop",
            FaultKind::FifoOverflow { .. } => "fifo_overflow",
            FaultKind::CrossbarGrantDelay { .. } => "grant_delay",
            FaultKind::RemapAbort { .. } => "remap_abort",
        }
    }
}

/// A fault scheduled to fire at an exact cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Cycle at which the fault fires.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Error from [`FaultPlan::validate`] / [`FaultPlan::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The JSON did not parse as a plan.
    Json(String),
    /// A fault references a pipeline `>= k`.
    PipelineOutOfRange {
        /// Offending pipeline id.
        pipeline: u16,
        /// Number of pipelines in the target switch.
        k: usize,
    },
    /// A `PipelineFail` targets pipeline 0, which hosts the
    /// conservative-serialization fallback state and may never die.
    PipelineZeroFail,
    /// A fault references a stage `>= stages`.
    StageOutOfRange {
        /// Offending stage id.
        stage: u16,
        /// Number of stages in the target program.
        stages: usize,
    },
    /// A `PhantomDrop` rate exceeds 1000 permille.
    RateOutOfRange(u32),
    /// A windowed fault has a zero-length window or zero count.
    EmptyWindow,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Json(e) => write!(f, "invalid fault plan JSON: {e}"),
            PlanError::PipelineOutOfRange { pipeline, k } => {
                write!(f, "fault references pipeline {pipeline} but switch has {k}")
            }
            PlanError::PipelineZeroFail => write!(
                f,
                "pipeline 0 may not fail: it hosts the conservative-serialization fallback state"
            ),
            PlanError::StageOutOfRange { stage, stages } => {
                write!(f, "fault references stage {stage} but program has {stages}")
            }
            PlanError::RateOutOfRange(r) => {
                write!(f, "phantom drop rate {r} permille exceeds 1000")
            }
            PlanError::EmptyWindow => write!(f, "windowed fault has zero cycles/count"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A deterministic, seeded schedule of faults. Build one with the
/// fluent API, load one from JSON, or roll one with [`FaultPlan::chaos`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for per-phantom drop decisions (and recorded provenance
    /// for chaos-generated plans).
    pub seed: u64,
    /// The schedule; kept sorted by `at`.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Empty plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    fn push(mut self, at: u64, kind: FaultKind) -> Self {
        self.faults.push(PlannedFault { at, kind });
        self.faults.sort_by_key(|f| f.at);
        self
    }

    /// Kill `pipeline` permanently at cycle `at`.
    pub fn pipeline_fail(self, at: u64, pipeline: u16) -> Self {
        self.push(at, FaultKind::PipelineFail { pipeline })
    }

    /// Stall stage `(pipeline, stage)` for `cycles` starting at `at`.
    pub fn stage_stall(self, at: u64, pipeline: u16, stage: u16, cycles: u64) -> Self {
        self.push(
            at,
            FaultKind::StageStall {
                pipeline,
                stage,
                cycles,
            },
        )
    }

    /// Drop phantoms at `rate_permille` for `cycles` starting at `at`
    /// (recoverable: losses are recorded and re-resolved).
    pub fn phantom_drop(self, at: u64, rate_permille: u32, cycles: u64) -> Self {
        self.push(
            at,
            FaultKind::PhantomDrop {
                rate_permille,
                cycles,
                silent: false,
            },
        )
    }

    /// Silent phantom loss — the auditor negative control: the switch
    /// is given no record, so recovery cannot happen and `mp5audit`
    /// must report Inv1/pairing findings.
    pub fn silent_phantom_drop(self, at: u64, rate_permille: u32, cycles: u64) -> Self {
        self.push(
            at,
            FaultKind::PhantomDrop {
                rate_permille,
                cycles,
                silent: true,
            },
        )
    }

    /// Force phantom-FIFO pressure at `(pipeline, stage)` for `cycles`.
    pub fn fifo_overflow(self, at: u64, pipeline: u16, stage: u16, cycles: u64) -> Self {
        self.push(
            at,
            FaultKind::FifoOverflow {
                pipeline,
                stage,
                cycles,
            },
        )
    }

    /// Delay every crossbar grant by `delay` cycles for `cycles`.
    pub fn grant_delay(self, at: u64, delay: u64, cycles: u64) -> Self {
        self.push(at, FaultKind::CrossbarGrantDelay { delay, cycles })
    }

    /// Abort the next `count` remap rounds after cycle `at`.
    pub fn remap_abort(self, at: u64, count: u32) -> Self {
        self.push(at, FaultKind::RemapAbort { count })
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"faults\": [\n");
        for (i, f) in self.faults.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&format!("\"at\": {}, \"kind\": \"{}\"", f.at, f.kind.tag()));
            match f.kind {
                FaultKind::PipelineFail { pipeline } => {
                    out.push_str(&format!(", \"pipeline\": {pipeline}"));
                }
                FaultKind::StageStall {
                    pipeline,
                    stage,
                    cycles,
                } => out.push_str(&format!(
                    ", \"pipeline\": {pipeline}, \"stage\": {stage}, \"cycles\": {cycles}"
                )),
                FaultKind::PhantomDrop {
                    rate_permille,
                    cycles,
                    silent,
                } => out.push_str(&format!(
                    ", \"rate_permille\": {rate_permille}, \"cycles\": {cycles}, \"silent\": {silent}"
                )),
                FaultKind::FifoOverflow {
                    pipeline,
                    stage,
                    cycles,
                } => out.push_str(&format!(
                    ", \"pipeline\": {pipeline}, \"stage\": {stage}, \"cycles\": {cycles}"
                )),
                FaultKind::CrossbarGrantDelay { delay, cycles } => {
                    out.push_str(&format!(", \"delay\": {delay}, \"cycles\": {cycles}"));
                }
                FaultKind::RemapAbort { count } => {
                    out.push_str(&format!(", \"count\": {count}"));
                }
            }
            out.push_str(" }");
            if i + 1 < self.faults.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse from JSON (schedule is re-sorted by cycle).
    pub fn from_json(s: &str) -> Result<Self, PlanError> {
        let val = json::parse(s).map_err(PlanError::Json)?;
        let seed = val
            .get("seed")
            .and_then(JsonVal::as_u64)
            .ok_or_else(|| PlanError::Json("missing numeric \"seed\"".into()))?;
        let faults_val = val
            .get("faults")
            .and_then(JsonVal::as_array)
            .ok_or_else(|| PlanError::Json("missing \"faults\" array".into()))?;
        let mut faults = Vec::with_capacity(faults_val.len());
        for (i, fv) in faults_val.iter().enumerate() {
            let err = |what: &str| PlanError::Json(format!("fault #{i}: {what}"));
            let at = fv
                .get("at")
                .and_then(JsonVal::as_u64)
                .ok_or_else(|| err("missing numeric \"at\""))?;
            let kind_tag = fv
                .get("kind")
                .and_then(JsonVal::as_str)
                .ok_or_else(|| err("missing string \"kind\""))?;
            let u16_field = |name: &str| -> Result<u16, PlanError> {
                let v = fv
                    .get(name)
                    .and_then(JsonVal::as_u64)
                    .ok_or_else(|| err(&format!("missing numeric \"{name}\"")))?;
                u16::try_from(v).map_err(|_| err(&format!("\"{name}\" out of u16 range")))
            };
            let u64_field = |name: &str| -> Result<u64, PlanError> {
                fv.get(name)
                    .and_then(JsonVal::as_u64)
                    .ok_or_else(|| err(&format!("missing numeric \"{name}\"")))
            };
            let kind = match kind_tag {
                "pipeline_fail" => FaultKind::PipelineFail {
                    pipeline: u16_field("pipeline")?,
                },
                "stage_stall" => FaultKind::StageStall {
                    pipeline: u16_field("pipeline")?,
                    stage: u16_field("stage")?,
                    cycles: u64_field("cycles")?,
                },
                "phantom_drop" => FaultKind::PhantomDrop {
                    rate_permille: u64_field("rate_permille")? as u32,
                    cycles: u64_field("cycles")?,
                    silent: fv.get("silent").and_then(JsonVal::as_bool).unwrap_or(false),
                },
                "fifo_overflow" => FaultKind::FifoOverflow {
                    pipeline: u16_field("pipeline")?,
                    stage: u16_field("stage")?,
                    cycles: u64_field("cycles")?,
                },
                "grant_delay" => FaultKind::CrossbarGrantDelay {
                    delay: u64_field("delay")?,
                    cycles: u64_field("cycles")?,
                },
                "remap_abort" => FaultKind::RemapAbort {
                    count: u64_field("count")? as u32,
                },
                other => return Err(err(&format!("unknown kind \"{other}\""))),
            };
            faults.push(PlannedFault { at, kind });
        }
        faults.sort_by_key(|f| f.at);
        Ok(FaultPlan { seed, faults })
    }

    /// Check the plan against a concrete switch shape: `k` pipelines,
    /// `stages` stages per pipeline.
    pub fn validate(&self, k: usize, stages: usize) -> Result<(), PlanError> {
        for f in &self.faults {
            match f.kind {
                FaultKind::PipelineFail { pipeline } => {
                    if pipeline == 0 {
                        return Err(PlanError::PipelineZeroFail);
                    }
                    if pipeline as usize >= k {
                        return Err(PlanError::PipelineOutOfRange { pipeline, k });
                    }
                }
                FaultKind::StageStall {
                    pipeline,
                    stage,
                    cycles,
                }
                | FaultKind::FifoOverflow {
                    pipeline,
                    stage,
                    cycles,
                } => {
                    if pipeline as usize >= k {
                        return Err(PlanError::PipelineOutOfRange { pipeline, k });
                    }
                    if stage as usize >= stages {
                        return Err(PlanError::StageOutOfRange { stage, stages });
                    }
                    if cycles == 0 {
                        return Err(PlanError::EmptyWindow);
                    }
                }
                FaultKind::PhantomDrop {
                    rate_permille,
                    cycles,
                    ..
                } => {
                    if rate_permille > 1000 {
                        return Err(PlanError::RateOutOfRange(rate_permille));
                    }
                    if cycles == 0 {
                        return Err(PlanError::EmptyWindow);
                    }
                }
                FaultKind::CrossbarGrantDelay { delay, cycles } => {
                    if cycles == 0 || delay == 0 {
                        return Err(PlanError::EmptyWindow);
                    }
                }
                FaultKind::RemapAbort { count } => {
                    if count == 0 {
                        return Err(PlanError::EmptyWindow);
                    }
                }
            }
        }
        Ok(())
    }

    /// Roll a randomized (but fully seed-determined) chaos plan for a
    /// `k`-pipeline, `stages`-stage switch over roughly `horizon`
    /// cycles. Only *recoverable* faults plus at most one pipeline
    /// kill are generated — silent drops are reserved for negative
    /// controls. Pipeline 0 is never killed.
    pub fn chaos(seed: u64, k: usize, stages: usize, horizon: u64) -> Self {
        let mut s = splitmix64(seed ^ 0x00c4_a50f_5a11_u64);
        let mut next = move || {
            s = splitmix64(s);
            s
        };
        let stages = stages.max(1) as u64;
        let horizon = horizon.max(16);
        let k = k.max(1);
        let mut plan = FaultPlan::new(seed);
        let n_faults = 3 + (next() % 4) as usize; // 3..=6 faults
        for _ in 0..n_faults {
            let at = 1 + next() % horizon;
            let window = 1 + next() % (horizon / 4).max(1);
            let kind = match next() % 5 {
                0 => FaultKind::StageStall {
                    pipeline: (next() % k as u64) as u16,
                    stage: (next() % stages) as u16,
                    cycles: window,
                },
                1 => FaultKind::PhantomDrop {
                    rate_permille: 50 + (next() % 451) as u32, // 5%..50%
                    cycles: window,
                    silent: false,
                },
                2 => FaultKind::FifoOverflow {
                    pipeline: (next() % k as u64) as u16,
                    stage: (next() % stages) as u16,
                    cycles: window,
                },
                3 => FaultKind::CrossbarGrantDelay {
                    delay: 1 + next() % 4,
                    cycles: window,
                },
                _ => FaultKind::RemapAbort {
                    count: 1 + (next() % 3) as u32,
                },
            };
            plan = plan.push(at, kind);
        }
        // At most one pipeline kill, only if there is a survivor pool.
        if k >= 2 && next() % 2 == 0 {
            let victim = 1 + (next() % (k as u64 - 1)) as u16;
            let at = 1 + next() % (horizon / 2).max(1);
            plan = plan.pipeline_fail(at, victim);
        }
        plan
    }

    /// Compile the plan into a runnable injector.
    pub fn injector(&self) -> PlannedFaults {
        PlannedFaults::new(self.clone())
    }
}

/// A fault that fired this cycle, as handed to the switch runtime by
/// [`FaultInjector::begin_cycle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Cycle at which it fired.
    pub at: u64,
    /// What fired.
    pub kind: FaultKind,
}

/// What happens to one delivered phantom under the active drop windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhantomFate {
    /// Delivered normally.
    Keep,
    /// Lost, but recorded: the switch recovers the matching data
    /// packet into FIFO order on arrival.
    DropRecoverable,
    /// Lost without record — nothing recovers it (negative control).
    DropSilent,
}

/// The hook trait the switch runtime is generic over. The default
/// [`NoFaults`] has `ENABLED == false`, so every call site guarded by
/// `if F::ENABLED` constant-folds away and the hot path is unchanged.
///
/// All queries are pure functions of injector state set up by
/// [`FaultInjector::begin_cycle`], which the coordinator calls exactly
/// once per cycle *before* any phase — this keeps sequential and
/// parallel engines bit-identical under the same plan.
pub trait FaultInjector: Send + 'static {
    /// Statically known enablement flag (false for [`NoFaults`]).
    const ENABLED: bool;

    /// Advance to `cycle`: expire finished windows, fire newly due
    /// faults, and return them (for trace events and accounting).
    fn begin_cycle(&mut self, cycle: u64) -> Vec<FiredFault>;

    /// Is stage `(pipeline, stage)` stalled this cycle?
    fn stage_stalled(&self, pipeline: u16, stage: u16) -> bool;

    /// All `(pipeline, stage)` pairs stalled this cycle (passed into
    /// the work phase as plain data so worker code needs no generics).
    fn active_stalls(&self) -> &[(u16, u16)];

    /// Fate of a phantom delivered this cycle, keyed by a stable hash
    /// of its identity.
    fn phantom_fate(&self, key_hash: u64) -> PhantomFate;

    /// Is the phantom FIFO at `(pipeline, stage)` under forced
    /// overflow pressure this cycle?
    fn fifo_overflow(&self, pipeline: u16, stage: u16) -> bool;

    /// Extra crossbar grant latency this cycle (0 = none).
    fn grant_delay(&self) -> u64;

    /// Consume one pending remap abort, if any.
    fn take_remap_abort(&mut self) -> bool;
}

/// The zero-cost default: no faults, ever. All queries are trivially
/// false/zero and `ENABLED == false` lets the switch skip its fault
/// bookkeeping entirely at compile time.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    const ENABLED: bool = false;

    #[inline]
    fn begin_cycle(&mut self, _cycle: u64) -> Vec<FiredFault> {
        Vec::new()
    }
    #[inline]
    fn stage_stalled(&self, _pipeline: u16, _stage: u16) -> bool {
        false
    }
    #[inline]
    fn active_stalls(&self) -> &[(u16, u16)] {
        &[]
    }
    #[inline]
    fn phantom_fate(&self, _key_hash: u64) -> PhantomFate {
        PhantomFate::Keep
    }
    #[inline]
    fn fifo_overflow(&self, _pipeline: u16, _stage: u16) -> bool {
        false
    }
    #[inline]
    fn grant_delay(&self) -> u64 {
        0
    }
    #[inline]
    fn take_remap_abort(&mut self) -> bool {
        false
    }
}

/// Active phantom-drop window.
#[derive(Debug, Clone)]
struct DropWindow {
    rate_permille: u32,
    until: u64,
    silent: bool,
}

/// Checkpointed runtime state of a [`PlannedFaults`] injector.
///
/// A fired plan is *not* replay-reconstructible from the [`FaultPlan`]
/// alone: window expiries are computed at fire time (`until` = fire
/// cycle + length) and remap aborts are consumed as they happen. So a
/// switch checkpoint must carry this explicit state and re-apply it on
/// top of a freshly compiled injector via
/// [`PlannedFaults::restore_state`]. The per-cycle `stall_pairs` cache
/// is derived and rebuilt on the next `begin_cycle`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InjectorState {
    /// Index of the next unfired plan entry.
    pub cursor: usize,
    /// Last cycle passed to `begin_cycle`.
    pub cycle: u64,
    /// Active stall windows as `(pipeline, stage, until)`.
    pub stalls: Vec<(u16, u16, u64)>,
    /// Active overflow windows as `(pipeline, stage, until)`.
    pub overflows: Vec<(u16, u16, u64)>,
    /// Active phantom-drop windows as `(rate_permille, until, silent)`.
    pub drops: Vec<(u32, u64, bool)>,
    /// Current crossbar grant latency (0 = none).
    pub grant_delay: u64,
    /// Cycle at which the grant-delay window expires.
    pub grant_until: u64,
    /// Unconsumed remap aborts.
    pub remap_aborts: u32,
}

/// The real injector: a cycle-sorted plan cursor plus active windows.
#[derive(Debug, Clone)]
pub struct PlannedFaults {
    seed: u64,
    plan: Vec<PlannedFault>,
    cursor: usize,
    cycle: u64,
    stalls: Vec<(u16, u16, u64)>,    // (pipeline, stage, until)
    stall_pairs: Vec<(u16, u16)>,    // refreshed each cycle
    overflows: Vec<(u16, u16, u64)>, // (pipeline, stage, until)
    drops: Vec<DropWindow>,
    grant_delay: u64,
    grant_until: u64,
    remap_aborts: u32,
}

impl PlannedFaults {
    /// Compile `plan` (sorted by cycle) into a fresh injector.
    pub fn new(mut plan: FaultPlan) -> Self {
        plan.faults.sort_by_key(|f| f.at);
        PlannedFaults {
            seed: plan.seed,
            plan: plan.faults,
            cursor: 0,
            cycle: 0,
            stalls: Vec::new(),
            stall_pairs: Vec::new(),
            overflows: Vec::new(),
            drops: Vec::new(),
            grant_delay: 0,
            grant_until: 0,
            remap_aborts: 0,
        }
    }

    /// Exports the runtime state for a checkpoint (see
    /// [`InjectorState`]). The plan itself is not included — it is the
    /// caller's separately-serialized [`FaultPlan`].
    pub fn snapshot_state(&self) -> InjectorState {
        InjectorState {
            cursor: self.cursor,
            cycle: self.cycle,
            stalls: self.stalls.clone(),
            overflows: self.overflows.clone(),
            drops: self
                .drops
                .iter()
                .map(|w| (w.rate_permille, w.until, w.silent))
                .collect(),
            grant_delay: self.grant_delay,
            grant_until: self.grant_until,
            remap_aborts: self.remap_aborts,
        }
    }

    /// Re-applies checkpointed runtime state on top of a freshly
    /// compiled injector for the same plan. The `stall_pairs` cache is
    /// rebuilt immediately so `stage_stalled` answers correctly even
    /// before the next `begin_cycle`.
    pub fn restore_state(&mut self, state: &InjectorState) {
        assert!(
            state.cursor <= self.plan.len(),
            "injector state cursor exceeds plan length"
        );
        self.cursor = state.cursor;
        self.cycle = state.cycle;
        self.stalls = state.stalls.clone();
        self.overflows = state.overflows.clone();
        self.drops = state
            .drops
            .iter()
            .map(|&(rate_permille, until, silent)| DropWindow {
                rate_permille,
                until,
                silent,
            })
            .collect();
        self.grant_delay = state.grant_delay;
        self.grant_until = state.grant_until;
        self.remap_aborts = state.remap_aborts;
        self.stall_pairs = self.stalls.iter().map(|&(p, s, _)| (p, s)).collect();
    }
}

impl FaultInjector for PlannedFaults {
    const ENABLED: bool = true;

    fn begin_cycle(&mut self, cycle: u64) -> Vec<FiredFault> {
        self.cycle = cycle;
        // Expire windows whose last active cycle has passed.
        self.stalls.retain(|&(_, _, until)| cycle < until);
        self.overflows.retain(|&(_, _, until)| cycle < until);
        self.drops.retain(|w| cycle < w.until);
        if cycle >= self.grant_until {
            self.grant_delay = 0;
        }
        // Fire everything due at or before this cycle.
        let mut fired = Vec::new();
        while self.cursor < self.plan.len() && self.plan[self.cursor].at <= cycle {
            let f = self.plan[self.cursor].clone();
            self.cursor += 1;
            match f.kind {
                FaultKind::StageStall {
                    pipeline,
                    stage,
                    cycles,
                } => self.stalls.push((pipeline, stage, cycle + cycles)),
                FaultKind::FifoOverflow {
                    pipeline,
                    stage,
                    cycles,
                } => self.overflows.push((pipeline, stage, cycle + cycles)),
                FaultKind::PhantomDrop {
                    rate_permille,
                    cycles,
                    silent,
                } => self.drops.push(DropWindow {
                    rate_permille,
                    until: cycle + cycles,
                    silent,
                }),
                FaultKind::CrossbarGrantDelay { delay, cycles } => {
                    self.grant_delay = delay;
                    self.grant_until = cycle + cycles;
                }
                FaultKind::RemapAbort { count } => self.remap_aborts += count,
                FaultKind::PipelineFail { .. } => {} // handled by the switch
            }
            fired.push(FiredFault {
                at: f.at,
                kind: f.kind,
            });
        }
        self.stall_pairs = self.stalls.iter().map(|&(p, s, _)| (p, s)).collect();
        fired
    }

    #[inline]
    fn stage_stalled(&self, pipeline: u16, stage: u16) -> bool {
        self.stall_pairs.contains(&(pipeline, stage))
    }

    #[inline]
    fn active_stalls(&self) -> &[(u16, u16)] {
        &self.stall_pairs
    }

    fn phantom_fate(&self, key_hash: u64) -> PhantomFate {
        for w in &self.drops {
            let h = splitmix64(self.seed ^ self.cycle.wrapping_mul(0x9e37) ^ key_hash);
            if (h % 1000) < w.rate_permille as u64 {
                return if w.silent {
                    PhantomFate::DropSilent
                } else {
                    PhantomFate::DropRecoverable
                };
            }
        }
        PhantomFate::Keep
    }

    #[inline]
    fn fifo_overflow(&self, pipeline: u16, stage: u16) -> bool {
        self.overflows
            .iter()
            .any(|&(p, s, _)| p == pipeline && s == stage)
    }

    #[inline]
    fn grant_delay(&self) -> u64 {
        self.grant_delay
    }

    fn take_remap_abort(&mut self) -> bool {
        if self.remap_aborts > 0 {
            self.remap_aborts -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::new(7)
            .stage_stall(10, 1, 2, 5)
            .pipeline_fail(40, 2)
            .phantom_drop(20, 300, 8)
            .fifo_overflow(15, 0, 1, 4)
            .grant_delay(30, 2, 6)
            .remap_abort(5, 2)
    }

    #[test]
    fn json_round_trips() {
        let plan = sample();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        // And a silent drop round-trips too.
        let plan = FaultPlan::new(3).silent_phantom_drop(4, 120, 9);
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn parses_handwritten_json() {
        let src = r#"{
            "seed": 42,
            "faults": [
                { "kind": "pipeline_fail", "at": 100, "pipeline": 3 },
                { "kind": "phantom_drop", "at": 10, "rate_permille": 250, "cycles": 20 }
            ]
        }"#;
        let plan = FaultPlan::from_json(src).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.len(), 2);
        // Sorted by cycle, `silent` defaulted to false.
        assert_eq!(
            plan.faults[0].kind,
            FaultKind::PhantomDrop {
                rate_permille: 250,
                cycles: 20,
                silent: false
            }
        );
        assert_eq!(plan.faults[1].kind, FaultKind::PipelineFail { pipeline: 3 });
    }

    #[test]
    fn bad_json_is_rejected() {
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json(r#"{"seed": 1, "faults": [{"at": 3}]}"#).is_err());
        assert!(FaultPlan::from_json(
            r#"{"seed": 1, "faults": [{"at": 3, "kind": "warp_core_breach"}]}"#
        )
        .is_err());
    }

    #[test]
    fn plan_is_sorted_by_cycle() {
        let plan = sample();
        let ats: Vec<u64> = plan.faults.iter().map(|f| f.at).collect();
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        assert_eq!(ats, sorted);
    }

    #[test]
    fn validate_rejects_pipeline_zero_fail() {
        let plan = FaultPlan::new(1).pipeline_fail(10, 0);
        assert_eq!(plan.validate(4, 8), Err(PlanError::PipelineZeroFail));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let plan = FaultPlan::new(1).pipeline_fail(10, 9);
        assert!(matches!(
            plan.validate(4, 8),
            Err(PlanError::PipelineOutOfRange { pipeline: 9, k: 4 })
        ));
        let plan = FaultPlan::new(1).stage_stall(10, 1, 20, 5);
        assert!(matches!(
            plan.validate(4, 8),
            Err(PlanError::StageOutOfRange { stage: 20, .. })
        ));
        let plan = FaultPlan::new(1).phantom_drop(10, 2000, 5);
        assert_eq!(plan.validate(4, 8), Err(PlanError::RateOutOfRange(2000)));
    }

    #[test]
    fn chaos_is_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = FaultPlan::chaos(seed, 4, 8, 200);
            let b = FaultPlan::chaos(seed, 4, 8, 200);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate(4, 8).unwrap();
            assert!(!a.is_empty());
            for f in &a.faults {
                if let FaultKind::PipelineFail { pipeline } = f.kind {
                    assert!((1..4).contains(&pipeline));
                }
                assert!(
                    !matches!(f.kind, FaultKind::PhantomDrop { silent: true, .. }),
                    "chaos plans never contain silent drops"
                );
            }
        }
    }

    #[test]
    fn windows_fire_and_expire() {
        let plan = FaultPlan::new(3)
            .stage_stall(10, 1, 2, 5)
            .remap_abort(12, 1);
        let mut inj = plan.injector();
        assert!(inj.begin_cycle(0).is_empty());
        assert!(!inj.stage_stalled(1, 2));
        let fired = inj.begin_cycle(10);
        assert_eq!(fired.len(), 1);
        assert!(inj.stage_stalled(1, 2));
        assert!(!inj.stage_stalled(1, 3));
        assert_eq!(inj.active_stalls(), &[(1, 2)]);
        inj.begin_cycle(14);
        assert!(inj.stage_stalled(1, 2), "still inside window");
        assert!(inj.take_remap_abort());
        assert!(!inj.take_remap_abort());
        inj.begin_cycle(15);
        assert!(!inj.stage_stalled(1, 2), "window expired");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let plan = sample();
        let mut live = plan.injector();
        // Drive past several fire points so windows are mid-flight and
        // one abort is consumed.
        for c in 0..=21 {
            live.begin_cycle(c);
        }
        assert!(live.take_remap_abort());
        let state = live.snapshot_state();

        let mut restored = plan.injector();
        restored.restore_state(&state);
        assert_eq!(restored.snapshot_state(), state);
        // Mid-window queries answer identically before any begin_cycle.
        assert_eq!(restored.stage_stalled(1, 2), live.stage_stalled(1, 2));
        assert_eq!(restored.active_stalls(), live.active_stalls());
        // And the two injectors stay in lock-step to the horizon.
        for c in 22..60 {
            assert_eq!(live.begin_cycle(c), restored.begin_cycle(c), "cycle {c}");
            assert_eq!(live.active_stalls(), restored.active_stalls());
            assert_eq!(live.grant_delay(), restored.grant_delay());
            for key in 0..50u64 {
                assert_eq!(live.phantom_fate(key), restored.phantom_fate(key));
            }
            assert_eq!(live.take_remap_abort(), restored.take_remap_abort());
        }
        assert_eq!(live.snapshot_state(), restored.snapshot_state());
    }

    #[test]
    fn phantom_fate_matches_rate_roughly() {
        let plan = FaultPlan::new(9).phantom_drop(0, 500, 100);
        let mut inj = plan.injector();
        inj.begin_cycle(0);
        let mut dropped = 0;
        for key in 0..10_000u64 {
            if inj.phantom_fate(key) != PhantomFate::Keep {
                dropped += 1;
            }
        }
        // ~50% with wide tolerance: determinism matters, exactness not.
        assert!((3_500..6_500).contains(&dropped), "dropped {dropped}");
    }

    /// Compile-time check: the no-op injector must advertise itself as
    /// disabled so every `if F::ENABLED` hook folds away.
    const _: () = assert!(!NoFaults::ENABLED);

    #[test]
    fn no_faults_is_inert() {
        let mut nf = NoFaults;
        assert!(nf.begin_cycle(0).is_empty());
        assert!(!nf.stage_stalled(0, 0));
        assert_eq!(nf.phantom_fate(1), PhantomFate::Keep);
        assert!(!nf.fifo_overflow(0, 0));
        assert_eq!(nf.grant_delay(), 0);
        assert!(!nf.take_remap_abort());
    }

    #[test]
    fn classes_account_for_everything() {
        let plan = sample();
        let degraded = plan
            .faults
            .iter()
            .filter(|f| f.kind.class() == FaultClass::Degraded)
            .count();
        assert_eq!(degraded, 1); // just the pipeline kill
        let silent = FaultPlan::new(1).silent_phantom_drop(0, 100, 5);
        assert_eq!(silent.faults[0].kind.class(), FaultClass::Degraded);
    }
}
