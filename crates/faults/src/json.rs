//! Minimal recursive-descent JSON reader for fault-plan files.
//!
//! The trace crate hand-rolls its JSONL codec for the same reason this
//! module exists: the workspace carries no third-party JSON dependency
//! on the hot path, and plan files are tiny, trusted inputs. Supported
//! grammar: objects, arrays, strings (with `\"`/`\\`/`\n`/`\t`/`\r`
//! escapes), unsigned integers, `true`/`false`/`null`. That is exactly
//! what [`crate::FaultPlan::to_json`] emits and what hand-written plans
//! need; anything else is a parse error, never a panic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (plans never need floats or negatives).
    Num(u64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<JsonVal>),
    /// Object as an ordered key/value list.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonVal> {
        match self {
            JsonVal::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&[JsonVal]> {
        match self {
            JsonVal::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(src: &str) -> Result<JsonVal, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let val = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(val)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonVal::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonVal::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonVal::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonVal::Null),
        Some(c) if c.is_ascii_digit() => parse_number(b, pos),
        _ => Err(format!("unexpected character at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: JsonVal) -> Result<JsonVal, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<u64>()
        .map(JsonVal::Num)
        .map_err(|_| format!("number out of range at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let ch_len = utf8_len(c);
                let end = (*pos + ch_len).min(b.len());
                out.push_str(std::str::from_utf8(&b[*pos..end]).map_err(|e| e.to_string())?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonVal::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    expect(b, pos, b'{')?;
    let mut kvs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonVal::Obj(kvs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        kvs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonVal::Obj(kvs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": 2}}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonVal::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonVal::as_array).unwrap();
        assert_eq!(arr[0], JsonVal::Bool(true));
        assert_eq!(arr[1], JsonVal::Null);
        assert_eq!(arr[2], JsonVal::Str("x\n".into()));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonVal::as_u64),
            Some(2)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
    }
}
