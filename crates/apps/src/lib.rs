//! Real stateful packet-processing applications (paper §4.4).
//!
//! The four applications the paper evaluates — flowlet switching,
//! CONGA load balancing, priority computation for weighted fair
//! queuing, and the network sequencer — written in the Domino-like DSL,
//! plus several additional programs from the stateful-algorithm
//! literature the paper cites (§3.1's analysis list): heavy-hitter
//! detection via a count-min sketch, per-source DDoS counting, a
//! per-flow token-bucket rate limiter, and a SYN-flood detector.
//!
//! Each [`AppSpec`] bundles the program source with a field filler that
//! populates packet headers from a flow key, so the traffic generators
//! can drive any app without knowing its header layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mp5_compiler::{compile, CompileError, CompiledProgram, Target};
use mp5_types::{FlowKey, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// A bundled application: name, DSL source, and header filler.
#[derive(Clone, Copy)]
pub struct AppSpec {
    /// Short identifier (used by benches and reports).
    pub name: &'static str,
    /// What the application does.
    pub description: &'static str,
    /// DSL source text.
    pub source: &'static str,
    /// Populates one packet's declared fields from its flow key.
    pub fill: fn(&CompiledProgram, &FlowKey, &mut SmallRng, &mut [Value]),
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec").field("name", &self.name).finish()
    }
}

impl AppSpec {
    /// Compiles the application for the default 16-stage target.
    pub fn compile(&self) -> Result<CompiledProgram, CompileError> {
        compile(self.source, &Target::default())
    }
}

/// Writes the canonical 5-tuple into fields named like
/// [`FlowKey::FIELD_NAMES`], if present.
fn fill_five_tuple(prog: &CompiledProgram, key: &FlowKey, fields: &mut [Value]) {
    for (name, value) in FlowKey::FIELD_NAMES.iter().zip(key.field_values()) {
        if let Some(id) = prog.field(name) {
            fields[id.index()] = value;
        }
    }
}

// ---------------------------------------------------------------------
// The four §4.4 applications
// ---------------------------------------------------------------------

/// Flowlet switching (Sinha et al., HotNets 2004; the paper's §3.1
/// example of preemptively resolvable indexes: "the registers a packet
/// accesses are indexed by the hash of 5-tuple").
pub const FLOWLET: AppSpec = AppSpec {
    name: "flowlet",
    description: "flowlet switching: new next-hop when the inter-packet gap exceeds delta",
    source: include_str!("../programs/flowlet.mp5"),
    fill: |prog, key, rng, fields| {
        fill_five_tuple(prog, key, fields);
        if let Some(id) = prog.field("arr_ts") {
            // Filled properly (with the packet's arrival) by callers that
            // know it; a monotone-ish fallback keeps the app meaningful.
            fields[id.index()] = rng.gen_range(0..1_000_000);
        }
        if let Some(id) = prog.field("new_hop") {
            fields[id.index()] = rng.gen_range(0..16);
        }
    },
};

/// CONGA-style congestion-aware load balancing (Alizadeh et al.,
/// SIGCOMM 2014): track the least-utilized path per destination leaf.
pub const CONGA: AppSpec = AppSpec {
    name: "conga",
    description: "CONGA: per-destination-leaf best-path selection by path utilization",
    source: include_str!("../programs/conga.mp5"),
    fill: |prog, key, rng, fields| {
        if let Some(id) = prog.field("dst_leaf") {
            fields[id.index()] = (key.dst_ip % 64) as Value;
        }
        if let Some(id) = prog.field("path_id") {
            fields[id.index()] = rng.gen_range(0..8);
        }
        if let Some(id) = prog.field("path_util") {
            fields[id.index()] = rng.gen_range(0..10_000);
        }
    },
};

/// Start-time fair queuing priority computation (Sivaraman et al.,
/// SIGCOMM 2016 "Programmable Packet Scheduling at Line Rate").
pub const WFQ: AppSpec = AppSpec {
    name: "wfq",
    description: "weighted fair queuing: per-flow virtual finish-time computation",
    source: include_str!("../programs/wfq.mp5"),
    fill: |prog, key, rng, fields| {
        fill_five_tuple(prog, key, fields);
        if let Some(id) = prog.field("size") {
            fields[id.index()] = rng.gen_range(64..1500);
        }
        if let Some(id) = prog.field("weight") {
            fields[id.index()] = rng.gen_range(1..8);
        }
        if let Some(id) = prog.field("vt") {
            fields[id.index()] = rng.gen_range(0..1_000_000);
        }
    },
};

/// Network sequencer (Li et al., OSDI 2016, NOPaxos): stamp a
/// per-group monotonically increasing sequence number into OUM packets.
pub const SEQUENCER: AppSpec = AppSpec {
    name: "sequencer",
    description: "network sequencer: per-group sequence numbers stamped into packets",
    source: include_str!("../programs/sequencer.mp5"),
    fill: |prog, key, rng, fields| {
        if let Some(id) = prog.field("group") {
            fields[id.index()] = (key.hash() % 16) as Value;
        }
        if let Some(id) = prog.field("is_oum") {
            fields[id.index()] = i64::from(rng.gen_bool(0.8));
        }
    },
};

// ---------------------------------------------------------------------
// Additional programs from the paper's §3.1 algorithm survey
// ---------------------------------------------------------------------

/// Heavy-hitter detection with a 3-row count-min sketch (OpenSketch /
/// HashPipe style).
pub const HEAVY_HITTER: AppSpec = AppSpec {
    name: "heavy_hitter",
    description: "count-min sketch heavy-hitter detection (3 hash rows)",
    source: include_str!("../programs/heavy_hitter.mp5"),
    fill: |prog, key, rng, fields| {
        fill_five_tuple(prog, key, fields);
        if let Some(id) = prog.field("size") {
            fields[id.index()] = rng.gen_range(64..1500);
        }
    },
};

/// Per-source packet counting for DDoS / scan detection (EXPOSURE-style
/// per-key statistics).
pub const DDOS_COUNTER: AppSpec = AppSpec {
    name: "ddos_counter",
    description: "per-source-IP packet counter with threshold flag",
    source: include_str!("../programs/ddos_counter.mp5"),
    fill: |prog, key, _rng, fields| {
        if let Some(id) = prog.field("src_ip") {
            fields[id.index()] = key.src_ip as Value;
        }
    },
};

/// Token-bucket rate limiter per flow (AVQ/CoDel-adjacent stateful
/// policing).
pub const RATE_LIMITER: AppSpec = AppSpec {
    name: "rate_limiter",
    description: "per-flow token bucket: drop flag when tokens exhausted",
    source: include_str!("../programs/rate_limiter.mp5"),
    fill: |prog, key, rng, fields| {
        fill_five_tuple(prog, key, fields);
        if let Some(id) = prog.field("arr_ts") {
            fields[id.index()] = rng.gen_range(0..1_000_000);
        }
        if let Some(id) = prog.field("size") {
            fields[id.index()] = rng.gen_range(64..1500);
        }
    },
};

/// SYN-flood detection: per-destination SYN minus ACK balance.
pub const SYN_FLOOD: AppSpec = AppSpec {
    name: "syn_flood",
    description: "per-destination SYN/ACK imbalance detector",
    source: include_str!("../programs/syn_flood.mp5"),
    fill: |prog, key, rng, fields| {
        if let Some(id) = prog.field("dst_ip") {
            fields[id.index()] = key.dst_ip as Value;
        }
        let syn = rng.gen_bool(0.55);
        if let Some(id) = prog.field("is_syn") {
            fields[id.index()] = i64::from(syn);
        }
        if let Some(id) = prog.field("is_ack") {
            fields[id.index()] = i64::from(!syn);
        }
    },
};

/// Stateful-firewall membership via a bit-packed Bloom filter: three
/// hash functions over three 4096-bit arrays stored as 64 x 64-bit
/// words (bitwise or/shift operations, FlowBlaze-style state).
pub const BLOOM_FIREWALL: AppSpec = AppSpec {
    name: "bloom_firewall",
    description: "bit-packed Bloom filter: flow-membership insert + query",
    source: include_str!("../programs/bloom_firewall.mp5"),
    fill: |prog, key, _rng, fields| {
        fill_five_tuple(prog, key, fields);
    },
};

/// Sampled NetFlow (Cisco, cited in the paper's §3.1 survey): only
/// every 64th packet of a flow updates the flow record, selected with a
/// bitmask on the per-packet sequence number.
pub const SAMPLED_NETFLOW: AppSpec = AppSpec {
    name: "sampled_netflow",
    description: "1-in-64 sampled per-flow packet/byte accounting",
    source: include_str!("../programs/sampled_netflow.mp5"),
    fill: |prog, key, rng, fields| {
        fill_five_tuple(prog, key, fields);
        if let Some(id) = prog.field("seq") {
            fields[id.index()] = rng.gen_range(0..100_000);
        }
        if let Some(id) = prog.field("size") {
            fields[id.index()] = rng.gen_range(64..1500);
        }
    },
};

/// The four applications evaluated in the paper's §4.4, in figure
/// order.
pub const PAPER_APPS: [AppSpec; 4] = [FLOWLET, CONGA, WFQ, SEQUENCER];

/// Every bundled application.
pub const ALL_APPS: [AppSpec; 10] = [
    FLOWLET,
    CONGA,
    WFQ,
    SEQUENCER,
    HEAVY_HITTER,
    DDOS_COUNTER,
    RATE_LIMITER,
    SYN_FLOOD,
    BLOOM_FIREWALL,
    SAMPLED_NETFLOW,
];

/// Looks up an application by name.
pub fn by_name(name: &str) -> Option<&'static AppSpec> {
    ALL_APPS.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_core::{Mp5Switch, SwitchConfig};
    use mp5_traffic::FlowTraceBuilder;
    use rand::SeedableRng;

    #[test]
    fn all_apps_compile_within_machine_limits() {
        for app in &ALL_APPS {
            let prog = app
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", app.name));
            assert!(
                prog.num_stages() <= 16,
                "{}: {} stages exceed the machine",
                app.name,
                prog.num_stages()
            );
            prog.validate().unwrap();
        }
    }

    #[test]
    fn paper_apps_have_resolvable_indexes() {
        // §3.1: "for most packet processing programs, the register
        // indexes a packet accesses are a function of some subset of
        // packet header fields" — all four paper apps shard.
        for app in &PAPER_APPS {
            let prog = app.compile().unwrap();
            assert!(
                prog.regs.iter().all(|r| r.shardable),
                "{}: all arrays should be shardable",
                app.name
            );
        }
    }

    #[test]
    fn sequencer_counts_monotonically() {
        let prog = SEQUENCER.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let mut regs_seen = Vec::new();
        for i in 0..10u64 {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(i),
                mp5_types::PortId(0),
                i * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[prog.field("group").unwrap().index()] = 3;
            pkt.fields[prog.field("is_oum").unwrap().index()] = 1;
            sw.process(&mut pkt);
            regs_seen.push(pkt.fields[prog.field("seq").unwrap().index()]);
        }
        assert_eq!(regs_seen, (1..=10).collect::<Vec<i64>>());
    }

    #[test]
    fn flowlet_sticks_within_flowlet_and_switches_on_gap() {
        let prog = FLOWLET.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |name: &str| prog.field(name).unwrap().index();
        let mk = |id: u64, ts: i64, hop: i64| {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(id),
                mp5_types::PortId(0),
                id * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = 1;
            pkt.fields[f("dst_ip")] = 2;
            pkt.fields[f("src_port")] = 3;
            pkt.fields[f("dst_port")] = 4;
            pkt.fields[f("proto")] = 6;
            pkt.fields[f("arr_ts")] = ts;
            pkt.fields[f("new_hop")] = hop;
            pkt
        };
        let mut p1 = mk(0, 100, 7);
        sw.process(&mut p1);
        assert_eq!(p1.fields[f("hop")], 7, "first packet starts a flowlet");
        let mut p2 = mk(1, 110, 9);
        sw.process(&mut p2);
        assert_eq!(p2.fields[f("hop")], 7, "small gap: same flowlet, same hop");
        let mut p3 = mk(2, 500, 9);
        sw.process(&mut p3);
        assert_eq!(p3.fields[f("hop")], 9, "large gap: new flowlet, new hop");
    }

    #[test]
    fn conga_tracks_minimum_utilization() {
        let prog = CONGA.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut send = |id: u64, path: i64, util: i64| {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(id),
                mp5_types::PortId(0),
                id * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("dst_leaf")] = 5;
            pkt.fields[f("path_id")] = path;
            pkt.fields[f("path_util")] = util;
            sw.process(&mut pkt);
            pkt.fields[f("best")]
        };
        assert_eq!(send(0, 1, 500), 1);
        assert_eq!(send(1, 2, 900), 1, "worse path must not displace best");
        assert_eq!(send(2, 3, 100), 3, "better path wins");
    }

    #[test]
    fn wfq_priorities_monotone_per_flow() {
        let prog = WFQ.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut prev = 0;
        for i in 0..5u64 {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(i),
                mp5_types::PortId(0),
                i * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = 10;
            pkt.fields[f("dst_ip")] = 20;
            pkt.fields[f("src_port")] = 30;
            pkt.fields[f("dst_port")] = 40;
            pkt.fields[f("proto")] = 6;
            pkt.fields[f("size")] = 1000;
            pkt.fields[f("weight")] = 2;
            pkt.fields[f("vt")] = 0;
            sw.process(&mut pkt);
            let prio = pkt.fields[f("prio")];
            assert!(prio > prev, "finish times must increase within a flow");
            prev = prio;
        }
    }

    #[test]
    fn heavy_hitter_estimate_at_least_true_count() {
        let prog = HEAVY_HITTER.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut est = 0;
        for i in 0..20u64 {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(i),
                mp5_types::PortId(0),
                i * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = 1;
            pkt.fields[f("dst_ip")] = 2;
            pkt.fields[f("src_port")] = 3;
            pkt.fields[f("dst_port")] = 4;
            pkt.fields[f("proto")] = 6;
            pkt.fields[f("size")] = 100;
            sw.process(&mut pkt);
            est = pkt.fields[f("est")];
        }
        assert!(est >= 2000, "count-min estimate must not undercount: {est}");
    }

    #[test]
    fn rate_limiter_drops_when_exhausted() {
        let prog = RATE_LIMITER.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut drops = 0;
        for i in 0..50u64 {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(i),
                mp5_types::PortId(0),
                i * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = 1;
            pkt.fields[f("dst_ip")] = 2;
            pkt.fields[f("src_port")] = 3;
            pkt.fields[f("dst_port")] = 4;
            pkt.fields[f("proto")] = 6;
            pkt.fields[f("arr_ts")] = i as i64; // back-to-back
            pkt.fields[f("size")] = 1000;
            sw.process(&mut pkt);
            drops += pkt.fields[f("drop")];
        }
        assert!(drops > 30, "back-to-back 1000B packets must exceed profile");
    }

    #[test]
    fn apps_run_equivalently_on_mp5() {
        for app in &ALL_APPS {
            let prog = app.compile().unwrap();
            let nf = prog.num_fields();
            let (trace, _) = FlowTraceBuilder::new(800, 42).build(nf, |r, key, fields| {
                (app.fill)(&prog, key, r, fields);
            });
            // Fix up arr_ts to actual arrivals where the app uses it.
            let mut trace = trace;
            if let Some(id) = prog.field("arr_ts") {
                for p in &mut trace {
                    p.fields[id.index()] = p.arrival as i64;
                }
            }
            let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
            let report = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace);
            assert!(
                report.result.equivalent_to(&reference),
                "{} must be functionally equivalent on MP5",
                app.name
            );
        }
    }

    #[test]
    fn fill_functions_are_deterministic_per_seed() {
        let prog = WFQ.compile().unwrap();
        let key = FlowKey {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        };
        let mut a = vec![0; prog.num_fields()];
        let mut b = vec![0; prog.num_fields()];
        (WFQ.fill)(&prog, &key, &mut SmallRng::seed_from_u64(9), &mut a);
        (WFQ.fill)(&prog, &key, &mut SmallRng::seed_from_u64(9), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn bloom_filter_membership_works() {
        let prog = BLOOM_FIREWALL.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut send = |id: u64, src: i64| {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(id),
                mp5_types::PortId(0),
                id * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = src;
            pkt.fields[f("dst_ip")] = 9;
            pkt.fields[f("src_port")] = 1234;
            pkt.fields[f("dst_port")] = 80;
            pkt.fields[f("proto")] = 6;
            sw.process(&mut pkt);
            pkt.fields[f("known")]
        };
        assert_eq!(send(0, 1), 0, "first packet of a flow is unknown");
        assert_eq!(send(1, 1), 1, "second packet must hit all three bits");
        assert_eq!(send(2, 2), 0, "a different flow is (almost surely) unknown");
        assert_eq!(send(3, 2), 1);
    }

    #[test]
    fn sampled_netflow_counts_every_64th() {
        let prog = SAMPLED_NETFLOW.compile().unwrap();
        let mut sw = BanzaiSwitch::new(prog.clone());
        let f = |n: &str| prog.field(n).unwrap().index();
        let mut sampled = 0i64;
        for i in 0..256u64 {
            let mut pkt = mp5_types::Packet::new(
                mp5_types::PacketId(i),
                mp5_types::PortId(0),
                i * 64,
                64,
                prog.num_fields(),
            );
            pkt.fields[f("src_ip")] = 1;
            pkt.fields[f("dst_ip")] = 2;
            pkt.fields[f("src_port")] = 3;
            pkt.fields[f("dst_port")] = 4;
            pkt.fields[f("proto")] = 6;
            pkt.fields[f("seq")] = i as i64;
            pkt.fields[f("size")] = 100;
            sw.process(&mut pkt);
            sampled += pkt.fields[f("sampled")];
        }
        assert_eq!(sampled, 4, "exactly every 64th of 256 packets samples");
        // Estimated packet count scales the samples by 64.
        let idx_reg = prog.reg("pkts").unwrap();
        let total: i64 = sw.regs()[idx_reg.index()].iter().sum();
        assert_eq!(total, 4 * 64);
    }

    #[test]
    fn by_name_finds_apps() {
        assert!(by_name("flowlet").is_some());
        assert!(by_name("sequencer").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
