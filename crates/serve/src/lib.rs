//! `mp5-serve` — live operation of an MP5 switch: crash-safe
//! checkpoints and zero-downtime program hot-swap.
//!
//! The simulation crates treat a run as a batch job: hand the switch a
//! trace, get a [`RunReport`] back. A deployed switch is a *process*:
//! it ingests packets indefinitely, survives crashes, and takes
//! program updates without dropping what is in flight. This crate adds
//! that operational layer on top of `mp5-core`'s cycle-accurate model:
//!
//! * [`Snapshot`] — a complete, versioned image of a running switch
//!   (program source, configuration, every register file, FIFO and
//!   phantom-lane occupancy, remap tables, crossbar cursors, cycle
//!   counters, the fault ledger, and the fault injector's replay
//!   cursor), serialized with a checksummed sectioned codec and
//!   written atomically (tmp + fsync + rename) so a crash mid-write
//!   can never corrupt the last good checkpoint.
//! * [`Server`] — a thin stateful wrapper over [`Mp5Switch`]'s
//!   streaming API (`offer`/`tick`/`drain_egress`) that knows how to
//!   checkpoint itself, restore from a snapshot into a *fresh* switch
//!   with bit-identical continued execution, and hot-swap a newly
//!   compiled program at a cycle boundary without draining.
//!
//! The restore contract is exact: a run that is checkpointed at cycle
//! `C`, killed, and restored produces the same [`RunReport`] and the
//! same event-stream hash as the run that was never interrupted — on
//! either execution path and either cycle engine, which are free to
//! differ between the checkpoint and the restore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::Path;

use mp5_compiler::{compile, CompiledProgram, Target};
use mp5_core::{
    ConfigError, EngineMode, ExecPath, Mp5Switch, RestoreError, RunReport, SwapError, SwapReport,
    SwitchConfig, SwitchState,
};
use mp5_faults::{FaultInjector, FaultPlan, InjectorState, NoFaults, PlannedFaults};
use mp5_trace::TraceSink;
use mp5_types::Packet;
use serde::{Deserialize, Serialize};

/// Snapshot codec version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic tag on the first line of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "MP5SNAP";

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Everything that can go wrong while serving: IO, codec, compile,
/// restore, and swap failures, each with enough context to print a
/// one-line diagnosis and exit non-zero.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        err: std::io::Error,
    },
    /// The snapshot file is malformed.
    Format(String),
    /// The snapshot's checksum trailer does not match its contents.
    Checksum {
        /// Checksum recorded in the file.
        expected: String,
        /// Checksum recomputed from the file's contents.
        found: String,
    },
    /// The snapshot was written by an incompatible codec version.
    Version(u32),
    /// The embedded program source no longer compiles.
    Compile(String),
    /// The snapshot's switch configuration is invalid.
    Config(ConfigError),
    /// The snapshot does not fit the switch it is being restored into.
    Restore(RestoreError),
    /// A hot-swap was rejected.
    Swap(SwapError),
    /// A fault plan is missing, malformed, or supplied where faults
    /// are disabled.
    Plan(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, err } => write!(f, "{path}: {err}"),
            ServeError::Format(why) => write!(f, "malformed snapshot: {why}"),
            ServeError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch: file says {expected}, contents hash to {found} \
                 (truncated or corrupted write?)"
            ),
            ServeError::Version(v) => write!(
                f,
                "snapshot codec version {v} is not supported (this build reads v{SNAPSHOT_VERSION})"
            ),
            ServeError::Compile(e) => write!(f, "embedded program does not compile: {e}"),
            ServeError::Config(e) => write!(f, "snapshot configuration invalid: {e}"),
            ServeError::Restore(e) => write!(f, "restore rejected: {e}"),
            ServeError::Swap(e) => write!(f, "hot-swap rejected: {e}"),
            ServeError::Plan(why) => write!(f, "fault plan: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RestoreError> for ServeError {
    fn from(e: RestoreError) -> Self {
        ServeError::Restore(e)
    }
}

impl From<SwapError> for ServeError {
    fn from(e: SwapError) -> Self {
        ServeError::Swap(e)
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

/// Wraps an IO error with the path it happened on.
pub fn io_err(path: &Path, err: std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        err,
    }
}

// ---------------------------------------------------------------------
// Fault-injector checkpointing
// ---------------------------------------------------------------------

/// Serializable mirror of [`InjectorState`] (the faults crate stays
/// dependency-free, so the serde derive lives here).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InjectorSnap {
    /// Index of the next unfired plan entry.
    pub cursor: usize,
    /// Last cycle the injector observed.
    pub cycle: u64,
    /// Active stall windows as `(pipeline, stage, until)`.
    pub stalls: Vec<(u16, u16, u64)>,
    /// Active overflow windows as `(pipeline, stage, until)`.
    pub overflows: Vec<(u16, u16, u64)>,
    /// Active phantom-drop windows as `(rate_permille, until, silent)`.
    pub drops: Vec<(u32, u64, bool)>,
    /// Current crossbar grant latency (0 = none).
    pub grant_delay: u64,
    /// Cycle at which the grant-delay window expires.
    pub grant_until: u64,
    /// Unconsumed remap aborts.
    pub remap_aborts: u32,
}

impl From<InjectorState> for InjectorSnap {
    fn from(s: InjectorState) -> Self {
        InjectorSnap {
            cursor: s.cursor,
            cycle: s.cycle,
            stalls: s.stalls,
            overflows: s.overflows,
            drops: s.drops,
            grant_delay: s.grant_delay,
            grant_until: s.grant_until,
            remap_aborts: s.remap_aborts,
        }
    }
}

impl From<InjectorSnap> for InjectorState {
    fn from(s: InjectorSnap) -> Self {
        InjectorState {
            cursor: s.cursor,
            cycle: s.cycle,
            stalls: s.stalls,
            overflows: s.overflows,
            drops: s.drops,
            grant_delay: s.grant_delay,
            grant_until: s.grant_until,
            remap_aborts: s.remap_aborts,
        }
    }
}

/// A fault injector the server knows how to checkpoint and rebuild.
///
/// Implemented for [`NoFaults`] (nothing to save) and
/// [`PlannedFaults`] (plan JSON + replay cursor). The server is
/// generic over this trait so the no-faults configuration keeps the
/// zero-cost `F::ENABLED = false` fast path.
pub trait FaultState: FaultInjector + Sized {
    /// Builds a fresh injector from an optional fault-plan JSON.
    fn fresh(plan_json: Option<&str>) -> Result<Self, ServeError>;
    /// Exports the replay cursor for a checkpoint (`None` if there is
    /// nothing to save).
    fn snap(&self) -> Option<InjectorSnap>;
    /// Rebuilds the injector a snapshot was taken with.
    fn restore_from(
        plan_json: Option<&str>,
        snap: Option<&InjectorSnap>,
    ) -> Result<Self, ServeError>;
}

impl FaultState for NoFaults {
    fn fresh(plan_json: Option<&str>) -> Result<Self, ServeError> {
        match plan_json {
            None => Ok(NoFaults),
            Some(_) => Err(ServeError::Plan(
                "a fault plan was supplied but fault injection is disabled".into(),
            )),
        }
    }

    fn snap(&self) -> Option<InjectorSnap> {
        None
    }

    fn restore_from(
        plan_json: Option<&str>,
        _snap: Option<&InjectorSnap>,
    ) -> Result<Self, ServeError> {
        Self::fresh(plan_json)
    }
}

impl FaultState for PlannedFaults {
    fn fresh(plan_json: Option<&str>) -> Result<Self, ServeError> {
        let text = plan_json
            .ok_or_else(|| ServeError::Plan("fault injection requires a fault plan".into()))?;
        let plan = FaultPlan::from_json(text).map_err(|e| ServeError::Plan(e.to_string()))?;
        Ok(plan.injector())
    }

    fn snap(&self) -> Option<InjectorSnap> {
        Some(self.snapshot_state().into())
    }

    fn restore_from(
        plan_json: Option<&str>,
        snap: Option<&InjectorSnap>,
    ) -> Result<Self, ServeError> {
        let mut inj = Self::fresh(plan_json)?;
        if let Some(s) = snap {
            inj.restore_state(&s.clone().into());
        }
        Ok(inj)
    }
}

// ---------------------------------------------------------------------
// Snapshot container + codec
// ---------------------------------------------------------------------

/// A complete, restartable image of a running switch.
///
/// Everything needed to rebuild the exact machine: the program
/// *source* (recompiled on restore — the compiler is deterministic),
/// the switch configuration, the full [`SwitchState`], and — for
/// fault-injected runs — the fault plan plus the injector's replay
/// cursor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone checkpoint sequence number within one serve session.
    pub seq: u64,
    /// DSL source of the running program.
    pub source: String,
    /// The switch configuration the state was captured under.
    pub config: SwitchConfig,
    /// The machine state itself.
    pub state: SwitchState,
    /// Fault plan JSON, if the run injects faults.
    pub fault_plan: Option<String>,
    /// Fault-injector replay cursor, if the run injects faults.
    pub injector: Option<InjectorSnap>,
}

/// Serializes one section body. Snapshot sections are plain data
/// (no maps with non-string keys, no NaNs), so serialization itself
/// cannot fail; only IO can.
fn json<T: Serialize + ?Sized>(v: &T) -> String {
    serde_json::to_string(v).expect("snapshot sections are plain serializable data")
}

/// FNV-1a 64-bit over the snapshot body — stable across builds and
/// platforms (unlike the std hasher, which is only stable within one
/// process).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// The cycle the snapshot was taken at.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Serializes to the sectioned snapshot text format:
    ///
    /// ```text
    /// MP5SNAP v1 seq=3 cycle=1200
    /// @source "..."
    /// @config {...}
    /// @state {...}
    /// @faults "..."          (only fault-injected runs)
    /// @injector {...}        (only fault-injected runs)
    /// @checksum 0123456789abcdef
    /// ```
    ///
    /// One JSON document per section line (the same one-line-per-record
    /// discipline as the trace JSONL codec), closed by an FNV-1a64
    /// checksum over every preceding byte.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} seq={} cycle={}\n",
            self.seq,
            self.cycle()
        );
        out.push_str(&format!("@source {}\n", json(&self.source)));
        out.push_str(&format!("@config {}\n", json(&self.config)));
        out.push_str(&format!("@state {}\n", json(&self.state)));
        if let Some(plan) = &self.fault_plan {
            out.push_str(&format!("@faults {}\n", json(plan)));
        }
        if let Some(inj) = &self.injector {
            out.push_str(&format!("@injector {}\n", json(inj)));
        }
        out.push_str(&format!("@checksum {:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parses and verifies a snapshot file's text. Rejects version
    /// skew, checksum mismatches (truncated or bit-rotted files), and
    /// any missing or malformed section.
    pub fn decode(text: &str) -> Result<Snapshot, ServeError> {
        // Checksum first: everything up to the `@checksum` line must
        // hash to the recorded trailer, otherwise nothing else in the
        // file can be trusted.
        let tail = text
            .rfind("@checksum ")
            .ok_or_else(|| ServeError::Format("missing @checksum trailer".into()))?;
        let recorded = text[tail..].strip_prefix("@checksum ").unwrap_or("").trim();
        let found = format!("{:016x}", fnv1a64(&text.as_bytes()[..tail]));
        if recorded != found {
            return Err(ServeError::Checksum {
                expected: recorded.to_string(),
                found,
            });
        }

        let mut lines = text[..tail].lines();
        let header = lines
            .next()
            .ok_or_else(|| ServeError::Format("empty snapshot".into()))?;
        let mut words = header.split_whitespace();
        if words.next() != Some(SNAPSHOT_MAGIC) {
            return Err(ServeError::Format(format!(
                "bad magic (expected '{SNAPSHOT_MAGIC}')"
            )));
        }
        let version: u32 = words
            .next()
            .and_then(|w| w.strip_prefix('v'))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ServeError::Format("unparseable version in header".into()))?;
        if version != SNAPSHOT_VERSION {
            return Err(ServeError::Version(version));
        }
        let seq: u64 = words
            .next()
            .and_then(|w| w.strip_prefix("seq="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ServeError::Format("unparseable seq in header".into()))?;

        let mut source: Option<String> = None;
        let mut config: Option<SwitchConfig> = None;
        let mut state: Option<SwitchState> = None;
        let mut fault_plan: Option<String> = None;
        let mut injector: Option<InjectorSnap> = None;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (tag, body) = line
                .split_once(' ')
                .ok_or_else(|| ServeError::Format(format!("section line without body: {line}")))?;
            let parse_err =
                |e: serde_json::Error| ServeError::Format(format!("section {tag}: {e}"));
            match tag {
                "@source" => source = Some(serde_json::from_str(body).map_err(parse_err)?),
                "@config" => config = Some(serde_json::from_str(body).map_err(parse_err)?),
                "@state" => state = Some(serde_json::from_str(body).map_err(parse_err)?),
                "@faults" => fault_plan = Some(serde_json::from_str(body).map_err(parse_err)?),
                "@injector" => injector = Some(serde_json::from_str(body).map_err(parse_err)?),
                other => {
                    return Err(ServeError::Format(format!("unknown section '{other}'")));
                }
            }
        }

        let snap = Snapshot {
            seq,
            source: source.ok_or_else(|| ServeError::Format("missing @source section".into()))?,
            config: config.ok_or_else(|| ServeError::Format("missing @config section".into()))?,
            state: state.ok_or_else(|| ServeError::Format("missing @state section".into()))?,
            fault_plan,
            injector,
        };
        if snap.fault_plan.is_some() != snap.injector.is_some() {
            return Err(ServeError::Format(
                "@faults and @injector must appear together".into(),
            ));
        }
        Ok(snap)
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`,
    /// fsync the file, rename over `path`, fsync the directory. A
    /// crash at any point leaves either the previous snapshot or the
    /// new one — never a torn file — which is what makes overwriting
    /// one well-known path (`last.snap`) each checkpoint safe.
    pub fn write_atomic(&self, path: &Path) -> Result<(), ServeError> {
        let text = self.encode();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                // Persist the rename itself; ignore filesystems that
                // refuse to fsync a directory handle.
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Reads and verifies a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, ServeError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        Self::decode(&text)
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A long-running switch: [`Mp5Switch`] plus the bookkeeping needed to
/// checkpoint, restore, and hot-swap it.
pub struct Server<S: TraceSink, F: FaultState> {
    sw: Mp5Switch<S, F>,
    source: String,
    config: SwitchConfig,
    plan_json: Option<String>,
    seq: u64,
}

impl<S: TraceSink, F: FaultState> Server<S, F> {
    /// Compiles `source` and boots a fresh switch.
    pub fn new(
        source: &str,
        config: SwitchConfig,
        sink: S,
        plan_json: Option<String>,
    ) -> Result<Self, ServeError> {
        let prog = compile_source(source)?;
        let faults = F::fresh(plan_json.as_deref())?;
        let sw = Mp5Switch::with_faults(prog, config.clone(), sink, faults);
        Ok(Server {
            sw,
            source: source.to_string(),
            config,
            plan_json,
            seq: 0,
        })
    }

    /// Rebuilds a switch from a snapshot and resumes it, bit-identical
    /// to the run that was checkpointed. `engine`/`exec` override the
    /// snapshot's configuration when given — both cycle engines and
    /// both execution paths implement the same machine, so a restore
    /// may switch between them freely.
    pub fn restore(
        snap: Snapshot,
        sink: S,
        engine: Option<EngineMode>,
        exec: Option<ExecPath>,
    ) -> Result<Self, ServeError> {
        let prog = compile_source(&snap.source)?;
        let mut config = snap.config.clone();
        if let Some(e) = engine {
            config = config.with_engine(e);
        }
        if let Some(x) = exec {
            config = config.with_exec(x);
        }
        let faults = F::restore_from(snap.fault_plan.as_deref(), snap.injector.as_ref())?;
        let sw = Mp5Switch::try_restore_with(prog, config.clone(), snap.state, sink, faults)?;
        Ok(Server {
            sw,
            source: snap.source,
            config,
            plan_json: snap.fault_plan,
            seq: snap.seq,
        })
    }

    /// Offers a batch of packets, sorting them into entry order first
    /// (the streaming API's contract).
    pub fn offer_all(&mut self, mut packets: Vec<Packet>) {
        packets.sort_by_key(|p| p.entry_order_key());
        for p in packets {
            self.sw.offer(p);
        }
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.sw.tick();
    }

    /// Packets that exited since the last drain.
    pub fn drain_egress(&mut self) -> Vec<(Packet, u64)> {
        self.sw.drain_egress()
    }

    /// True when nothing is buffered or in flight.
    pub fn is_idle(&self) -> bool {
        self.sw.is_idle()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.sw.cycle()
    }

    /// The live (in-progress) run report.
    pub fn live_report(&self) -> &RunReport {
        self.sw.live_report()
    }

    /// Captures a checkpoint of the running switch. Must be called at
    /// a cycle boundary (between [`Server::tick`]s), which is the only
    /// place the wrapper exposes — the machine state mid-cycle is not
    /// a meaningful snapshot.
    pub fn checkpoint(&mut self) -> Snapshot {
        self.seq += 1;
        let state = self.sw.extract_state(self.seq);
        Snapshot {
            seq: self.seq,
            source: self.source.clone(),
            config: self.config.clone(),
            state,
            fault_plan: self.plan_json.clone(),
            injector: self.sw.faults().snap(),
        }
    }

    /// Compiles `source` and swaps it into the running switch without
    /// draining. See [`Mp5Switch::hot_swap`] for the migration ledger
    /// and rejection rules.
    pub fn hot_swap(&mut self, source: &str) -> Result<SwapReport, ServeError> {
        let prog = compile_source(source)?;
        let report = self.sw.hot_swap(prog)?;
        self.source = source.to_string();
        Ok(report)
    }

    /// Finalizes the run: end-of-run aggregates, report, sink.
    pub fn finish(self) -> (RunReport, S) {
        self.sw.finish_stream()
    }

    /// Discards the run mid-flight (after a final [`Server::checkpoint`])
    /// and hands back the sink with the events recorded so far.
    pub fn abandon(self) -> S {
        self.sw.abandon()
    }

    /// The program source currently executing.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The switch configuration in effect.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }
}

/// Compiles DSL source for the default target, with the error mapped
/// into [`ServeError`].
pub fn compile_source(source: &str) -> Result<CompiledProgram, ServeError> {
    compile(source, &Target::default()).map_err(|e| ServeError::Compile(e.to_string()))
}

/// Parses one newline-JSON packet feed line (the `mp5serve --stdin`
/// ingest format: each line a serialized [`Packet`]).
pub fn parse_packet_line(line: &str, lineno: usize) -> Result<Packet, ServeError> {
    serde_json::from_str(line)
        .map_err(|e| ServeError::Format(format!("packet feed line {lineno}: {e}")))
}

/// A quick content fingerprint for tests and logs (FNV-1a64 of the
/// encoded snapshot, minus the checksum line).
pub fn snapshot_fingerprint(snap: &Snapshot) -> u64 {
    let text = snap.encode();
    let body = text.rfind("@checksum ").unwrap_or(text.len());
    fnv1a64(&text.as_bytes()[..body])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_core::SwitchConfig;
    use mp5_trace::{stream_hash, MemSink, NopSink};

    const COUNTER: &str = "struct Packet { int h; int out; };
        int counters[64] = {0};
        void func(struct Packet p) {
            counters[p.h % 64] = counters[p.h % 64] + 1;
            p.out = counters[p.h % 64];
        }";

    fn trace(n: usize, seed: u64) -> Vec<Packet> {
        let prog = compile_source(COUNTER).unwrap();
        mp5_traffic::TraceBuilder::new(n, seed).build(prog.num_fields(), |rng, _, f| {
            use rand::Rng;
            f[0] = rng.gen_range(0..1_000);
        })
    }

    fn checkpoint_at(cycles: u64, n: usize, seed: u64) -> Snapshot {
        let mut srv: Server<NopSink, NoFaults> =
            Server::new(COUNTER, SwitchConfig::mp5(4), NopSink, None).unwrap();
        srv.offer_all(trace(n, seed));
        for _ in 0..cycles {
            srv.tick();
            srv.drain_egress();
        }
        srv.checkpoint()
    }

    #[test]
    fn codec_round_trips() {
        let snap = checkpoint_at(25, 400, 11);
        let text = snap.encode();
        let back = Snapshot::decode(&text).unwrap();
        assert_eq!(snap, back);
        assert!(text.starts_with("MP5SNAP v1 seq=1 cycle=25\n"));
    }

    #[test]
    fn decode_rejects_corruption() {
        let snap = checkpoint_at(10, 200, 3);
        let text = snap.encode();

        // Flip one byte inside the @state section.
        let pos = text.find("@state").unwrap() + 20;
        let mut bytes = text.clone().into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            Snapshot::decode(&corrupted),
            Err(ServeError::Checksum { .. })
        ));

        // Truncation loses the trailer.
        assert!(matches!(
            Snapshot::decode(&text[..text.len() / 2]),
            Err(ServeError::Format(_)) | Err(ServeError::Checksum { .. })
        ));

        // Version skew is a typed error.
        let skewed = text.replace("MP5SNAP v1 ", "MP5SNAP v9 ");
        let body_end = skewed.rfind("@checksum ").unwrap();
        let refreshed = format!(
            "{}@checksum {:016x}\n",
            &skewed[..body_end],
            fnv1a64(&skewed.as_bytes()[..body_end])
        );
        assert!(matches!(
            Snapshot::decode(&refreshed),
            Err(ServeError::Version(9))
        ));
    }

    #[test]
    fn atomic_write_then_read_and_no_tmp_left_behind() {
        let snap = checkpoint_at(15, 300, 7);
        let dir = std::env::temp_dir().join("mp5serve-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("last.snap");
        snap.write_atomic(&path).unwrap();
        snap.write_atomic(&path).unwrap(); // overwrite is also safe
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(snap, back);
        assert!(!dir.join("last.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_through_file_continues_bit_identically() {
        let n = 600;
        let seed = 42;
        let prog = compile_source(COUNTER).unwrap();
        let cfg = SwitchConfig::mp5(4);
        let (oracle, oracle_sink) =
            Mp5Switch::with_sink(prog, cfg.clone(), MemSink::new()).run_traced(trace(n, seed));

        // Serve, checkpoint at cycle 30, "crash", restore from disk.
        let mut srv: Server<MemSink, NoFaults> =
            Server::new(COUNTER, cfg, MemSink::new(), None).unwrap();
        srv.offer_all(trace(n, seed));
        for _ in 0..30 {
            srv.tick();
            srv.drain_egress();
        }
        let snap = srv.checkpoint();
        let dir = std::env::temp_dir().join("mp5serve-test-restore");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.snap");
        snap.write_atomic(&path).unwrap();
        let events_before = srv.abandon().into_events();

        let mut srv: Server<MemSink, NoFaults> =
            Server::restore(Snapshot::read(&path).unwrap(), MemSink::new(), None, None).unwrap();
        while !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let (report, sink) = srv.finish();
        let mut events = events_before;
        events.extend(sink.into_events());

        assert_eq!(report, oracle);
        assert_eq!(
            stream_hash(&events),
            stream_hash(&oracle_sink.into_events())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_run_checkpoints_injector_cursor() {
        let n = 500;
        let seed = 9;
        let prog = compile_source(COUNTER).unwrap();
        let plan = FaultPlan::chaos(5, 4, prog.num_stages(), 200);
        let plan_json = plan.to_json();
        let cfg = SwitchConfig::mp5(4);
        let oracle =
            Mp5Switch::with_faults(prog, cfg.clone(), NopSink, plan.injector()).run(trace(n, seed));

        let mut srv: Server<NopSink, PlannedFaults> =
            Server::new(COUNTER, cfg, NopSink, Some(plan_json)).unwrap();
        srv.offer_all(trace(n, seed));
        for _ in 0..70 {
            srv.tick();
            srv.drain_egress();
        }
        let snap = srv.checkpoint();
        assert!(snap.fault_plan.is_some() && snap.injector.is_some());
        let snap = Snapshot::decode(&snap.encode()).unwrap();

        let mut srv: Server<NopSink, PlannedFaults> =
            Server::restore(snap, NopSink, None, None).unwrap();
        while !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let (report, _) = srv.finish();
        assert_eq!(report, oracle);
        assert!(report.fault.injected > 0, "chaos plan should have fired");
    }

    #[test]
    fn hot_swap_preserves_state_and_closes_ledger() {
        let n = 500;
        let seed = 21;
        let cfg = SwitchConfig::mp5(4);
        let oracle = {
            let prog = compile_source(COUNTER).unwrap();
            Mp5Switch::new(prog, cfg.clone()).run(trace(n, seed))
        };

        let mut srv: Server<NopSink, NoFaults> = Server::new(COUNTER, cfg, NopSink, None).unwrap();
        srv.offer_all(trace(n, seed));
        for _ in 0..20 {
            srv.tick();
            srv.drain_egress();
        }
        // Swap in a recompile of the same source: state carries over,
        // the ledger closes, and the run finishes as if never swapped.
        let rep = srv.hot_swap(COUNTER).unwrap();
        assert!(rep.closed(), "swap ledger must close: {rep:?}");
        while !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let (report, _) = srv.finish();
        assert_eq!(report, oracle);
    }

    #[test]
    fn packet_feed_lines_round_trip() {
        let pkts = trace(3, 1);
        for (i, p) in pkts.iter().enumerate() {
            let line = serde_json::to_string(p).unwrap();
            let back = parse_packet_line(&line, i + 1).unwrap();
            assert_eq!(*p, back);
        }
        assert!(parse_packet_line("{not json", 7).is_err());
    }
}
