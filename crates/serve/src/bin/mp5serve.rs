//! `mp5serve` — run an MP5 switch as a long-lived, crash-safe service.
//!
//! ```sh
//! # Serve a bundled app, checkpointing every 10k cycles.
//! cargo run --release -p mp5-serve --bin mp5serve -- \
//!     --app heavy_hitter --packets 20000 --checkpoint-every 10000 --snapshot last.snap
//!
//! # Crash-test: halt mid-run with a final checkpoint...
//! mp5serve --app conga --halt-at 500 --snapshot last.snap --trace part1.jsonl
//! # ...then resume exactly where it stopped (bit-identical continuation).
//! mp5serve --restore last.snap --trace part2.jsonl
//!
//! # Zero-downtime program update at cycle 300.
//! mp5serve prog.dsl --swap-at 300 --swap-program prog_v2.dsl
//! ```
//!
//! Packet ingest is either generated (bundled-app flow traffic or
//! uniform key traffic for a `.dsl` program) or streamed as
//! newline-JSON packets on stdin (`--stdin`).

use std::path::Path;

use mp5_core::{EngineMode, ExecPath, RunReport, SwitchConfig};
use mp5_faults::{NoFaults, PlannedFaults};
use mp5_serve::{
    compile_source, io_err, parse_packet_line, FaultState, ServeError, Server, Snapshot,
};
use mp5_trace::{audit, Event, MemSink, NopSink, TraceSink};
use mp5_types::Packet;

struct Args {
    app: Option<String>,
    program: Option<String>,
    pipelines: usize,
    packets: usize,
    seed: u64,
    keys: u64,
    engine: Option<EngineMode>,
    exec: Option<ExecPath>,
    stdin: bool,
    faults: Option<String>,
    checkpoint_every: Option<u64>,
    snapshot: Option<String>,
    halt_at: Option<u64>,
    restore: Option<String>,
    swap_at: Option<u64>,
    swap_program: Option<String>,
    trace_out: Option<String>,
    audit: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5serve (--app NAME | PROGRAM.dsl | --restore SNAP) [options]\n\
         \n\
         workload:\n\
           --app NAME            bundled application (mp5-apps)\n\
           PROGRAM.dsl           DSL source file (uniform key traffic)\n\
           --packets N           packets to generate (default 4000)\n\
           --seed N              traffic seed (default 1)\n\
           --keys N              key space for .dsl traffic (default 64)\n\
           --stdin               ingest newline-JSON packets from stdin instead\n\
         switch:\n\
           --pipelines K         pipelines (default 4)\n\
           --engine seq|par:N    cycle engine (default: config default)\n\
           --exec scalar|batch   execution path (default: config default)\n\
           --faults PATH         fault plan JSON\n\
         checkpointing:\n\
           --checkpoint-every N  checkpoint every N cycles (needs --snapshot)\n\
           --snapshot PATH       snapshot file (written atomically)\n\
           --halt-at CYCLE       stop at CYCLE, write a final snapshot, exit 0\n\
           --restore PATH        resume from a snapshot (engine/exec may differ)\n\
         hot-swap:\n\
           --swap-at CYCLE       hot-swap the program at CYCLE\n\
           --swap-program PATH   DSL source to swap in\n\
         observability:\n\
           --trace PATH          write the event stream as JSONL\n\
           --audit               run the offline auditor; exit 1 on findings"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        app: None,
        program: None,
        pipelines: 4,
        packets: 4_000,
        seed: 1,
        keys: 64,
        engine: None,
        exec: None,
        stdin: false,
        faults: None,
        checkpoint_every: None,
        snapshot: None,
        halt_at: None,
        restore: None,
        swap_at: None,
        swap_program: None,
        trace_out: None,
        audit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--app" => args.app = Some(val("--app")),
            "--pipelines" => {
                args.pipelines = val("--pipelines").parse().unwrap_or_else(|_| usage())
            }
            "--packets" => args.packets = val("--packets").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--keys" => args.keys = val("--keys").parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                args.engine = Some(val("--engine").parse().unwrap_or_else(|e| {
                    eprintln!("--engine: {e}");
                    usage()
                }))
            }
            "--exec" => {
                args.exec = Some(val("--exec").parse().unwrap_or_else(|e| {
                    eprintln!("--exec: {e}");
                    usage()
                }))
            }
            "--stdin" => args.stdin = true,
            "--faults" => args.faults = Some(val("--faults")),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    val("--checkpoint-every")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--snapshot" => args.snapshot = Some(val("--snapshot")),
            "--halt-at" => {
                args.halt_at = Some(val("--halt-at").parse().unwrap_or_else(|_| usage()))
            }
            "--restore" => args.restore = Some(val("--restore")),
            "--swap-at" => {
                args.swap_at = Some(val("--swap-at").parse().unwrap_or_else(|_| usage()))
            }
            "--swap-program" => args.swap_program = Some(val("--swap-program")),
            "--trace" => args.trace_out = Some(val("--trace")),
            "--audit" => args.audit = true,
            "--help" | "-h" => usage(),
            other if args.program.is_none() && !other.starts_with('-') => {
                args.program = Some(other.to_string())
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    let sources =
        args.app.is_some() as u8 + args.program.is_some() as u8 + args.restore.is_some() as u8;
    if sources != 1 {
        eprintln!("exactly one of --app, PROGRAM.dsl, or --restore is required");
        usage()
    }
    if args.checkpoint_every.is_some() && args.snapshot.is_none() {
        eprintln!("--checkpoint-every requires --snapshot PATH");
        usage()
    }
    if args.halt_at.is_some() && args.snapshot.is_none() {
        eprintln!("--halt-at requires --snapshot PATH (the final checkpoint)");
        usage()
    }
    if args.swap_at.is_some() != args.swap_program.is_some() {
        eprintln!("--swap-at and --swap-program go together");
        usage()
    }
    args
}

/// What one serve session produced.
struct Outcome<S> {
    /// `None` when the session halted mid-run (`--halt-at`).
    report: Option<RunReport>,
    sink: S,
    checkpoints: u64,
    egressed: u64,
}

fn read_file(path: &str) -> Result<String, ServeError> {
    std::fs::read_to_string(path).map_err(|e| io_err(Path::new(path), e))
}

/// Builds the generated workload for a fresh (non-restore) session.
fn generate_packets(args: &Args, source: &str) -> Result<Vec<Packet>, ServeError> {
    let prog = compile_source(source)?;
    let nf = prog.num_fields();
    if let Some(name) = &args.app {
        let app = mp5_apps::by_name(name).ok_or_else(|| {
            ServeError::Format(format!(
                "unknown app '{name}' (available: {})",
                mp5_apps::ALL_APPS
                    .iter()
                    .map(|a| a.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let fill = app.fill;
        let (mut trace, _flows) = mp5_traffic::FlowTraceBuilder::new(args.packets, args.seed)
            .build(nf, |rng, key, fields| fill(&prog, key, rng, fields));
        if let Some(id) = prog.field("arr_ts") {
            for p in &mut trace {
                p.fields[id.index()] = p.arrival as i64;
            }
        }
        Ok(trace)
    } else {
        let keys = args.keys;
        Ok(
            mp5_traffic::TraceBuilder::new(args.packets, args.seed).build(nf, move |rng, _, f| {
                use rand::Rng;
                f[0] = rng.gen_range(0..keys as i64);
            }),
        )
    }
}

fn read_stdin_packets() -> Result<Vec<Packet>, ServeError> {
    let mut packets = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut line) {
            Ok(0) => break,
            Ok(_) => {
                lineno += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                packets.push(parse_packet_line(trimmed, lineno)?);
            }
            Err(e) => return Err(io_err(Path::new("<stdin>"), e)),
        }
    }
    Ok(packets)
}

/// One serve session, generic over sink (tracing on/off) and fault
/// injection. All control flow — ingest, checkpoint cadence, halt,
/// hot-swap, drain — lives here; `main` only picks the types.
fn session<S: TraceSink, F: FaultState>(
    args: &Args,
    snap: Option<Snapshot>,
    sink: S,
) -> Result<Outcome<S>, ServeError> {
    let mut server: Server<S, F> = match snap {
        Some(snap) => {
            let from = snap.cycle();
            let server = Server::restore(snap, sink, args.engine, args.exec)?;
            println!(
                "restored @ cycle {from}: {} in flight, resuming",
                server.live_report().offered - server.live_report().completed
            );
            server
        }
        None => {
            let source = match (&args.app, &args.program) {
                (Some(name), _) => mp5_apps::by_name(name)
                    .ok_or_else(|| ServeError::Format(format!("unknown app '{name}'")))?
                    .source
                    .to_string(),
                (None, Some(path)) => read_file(path)?,
                (None, None) => unreachable!("parse_args enforces a workload source"),
            };
            let mut cfg = SwitchConfig::mp5(args.pipelines);
            if let Some(e) = args.engine {
                cfg = cfg.with_engine(e);
            }
            if let Some(x) = args.exec {
                cfg = cfg.with_exec(x);
            }
            let plan_json = args.faults.as_deref().map(read_file).transpose()?;
            let server = Server::new(&source, cfg, sink, plan_json)?;
            println!(
                "serving '{}' on k={} pipelines",
                args.app
                    .as_deref()
                    .or(args.program.as_deref())
                    .unwrap_or("?"),
                args.pipelines
            );
            server
        }
    };

    let packets = if args.stdin {
        read_stdin_packets()?
    } else if args.restore.is_some() {
        Vec::new() // the snapshot carries its own pending arrivals
    } else {
        generate_packets(args, server.source())?
    };
    if !packets.is_empty() {
        println!("ingest: {} packet(s) offered", packets.len());
    }
    server.offer_all(packets);

    let swap_source = args.swap_program.as_deref().map(read_file).transpose()?;
    let mut swapped = false;
    let mut checkpoints = 0u64;
    let mut egressed = 0u64;

    loop {
        let cycle = server.cycle();
        if let Some(halt) = args.halt_at {
            if cycle >= halt {
                let path = args
                    .snapshot
                    .as_deref()
                    .expect("parse_args enforces --snapshot");
                let ckpt = server.checkpoint();
                ckpt.write_atomic(Path::new(path))?;
                println!(
                    "halted @ cycle {cycle}: snapshot seq {} -> {path}",
                    ckpt.seq
                );
                return Ok(Outcome {
                    report: None,
                    sink: server.abandon(),
                    checkpoints: checkpoints + 1,
                    egressed,
                });
            }
        }
        if let (Some(at), Some(src)) = (args.swap_at, &swap_source) {
            if !swapped && cycle >= at {
                let rep = server.hot_swap(src)?;
                println!(
                    "hot-swap @ cycle {}: migrated {} = evacuated {}, lost phantoms {} -> ledger {}",
                    rep.cycle,
                    rep.migrated,
                    rep.evacuated,
                    rep.lost_phantoms,
                    if rep.closed() { "closed" } else { "OPEN" }
                );
                swapped = true;
            }
        }
        if let (Some(every), Some(path)) = (args.checkpoint_every, args.snapshot.as_deref()) {
            if cycle > 0 && cycle.is_multiple_of(every) {
                let ckpt = server.checkpoint();
                ckpt.write_atomic(Path::new(path))?;
                checkpoints += 1;
                println!("checkpoint seq {} @ cycle {cycle} -> {path}", ckpt.seq);
            }
        }
        if server.is_idle() {
            break;
        }
        server.tick();
        egressed += server.drain_egress().len() as u64;
    }

    let (report, sink) = server.finish();
    Ok(Outcome {
        report: Some(report),
        sink,
        checkpoints,
        egressed,
    })
}

fn write_trace(path: &str, events: &[Event]) -> Result<(), ServeError> {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| io_err(Path::new(path), e))
}

/// Runs the session with the right sink/fault types, then handles the
/// observability outputs. Returns the process exit code.
fn drive(args: &Args) -> Result<i32, ServeError> {
    let snap = args
        .restore
        .as_deref()
        .map(|p| Snapshot::read(Path::new(p)))
        .transpose()?;
    let faulted = match &snap {
        Some(s) => s.fault_plan.is_some(),
        None => args.faults.is_some(),
    };
    let tracing = args.trace_out.is_some() || args.audit;

    let (report, events, checkpoints, egressed) = match (tracing, faulted) {
        (true, true) => {
            let o = session::<MemSink, PlannedFaults>(args, snap, MemSink::new())?;
            (o.report, o.sink.into_events(), o.checkpoints, o.egressed)
        }
        (true, false) => {
            let o = session::<MemSink, NoFaults>(args, snap, MemSink::new())?;
            (o.report, o.sink.into_events(), o.checkpoints, o.egressed)
        }
        (false, true) => {
            let o = session::<NopSink, PlannedFaults>(args, snap, NopSink)?;
            (o.report, Vec::new(), o.checkpoints, o.egressed)
        }
        (false, false) => {
            let o = session::<NopSink, NoFaults>(args, snap, NopSink)?;
            (o.report, Vec::new(), o.checkpoints, o.egressed)
        }
    };

    match &report {
        Some(rep) => println!(
            "done: throughput {:.3} of line rate, completed {}/{}, egressed {}, \
             {} checkpoint(s), {} cycle(s)",
            rep.normalized_throughput(),
            rep.completed,
            rep.offered,
            egressed,
            checkpoints,
            rep.cycles,
        ),
        None => println!("session halted ({egressed} packet(s) egressed before the halt)"),
    }

    if let Some(path) = &args.trace_out {
        write_trace(path, &events)?;
        println!("trace: {} events -> {path}", events.len());
    }
    if args.audit {
        let rep = audit(&events);
        print!("{rep}");
        if !rep.is_clean() {
            return Ok(1);
        }
    }
    Ok(0)
}

fn main() {
    let args = parse_args();
    match drive(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("mp5serve: {e}");
            std::process::exit(1);
        }
    }
}
