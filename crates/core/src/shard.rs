//! Dynamic state sharding (design principle D2, paper Figure 6).
//!
//! The index-to-pipeline map assigns each register index an *active*
//! pipeline. Every `remap_period` cycles the runtime re-balances:
//!
//! * [`remap_heuristic`] — the paper's hardware-friendly heuristic:
//!   find the most- and least-loaded pipelines `H`/`L`, compute
//!   `C = (c_max − c_min)/2`, and move the single index on `H` with the
//!   largest counter `< C` (if its in-flight counter is zero).
//! * [`remap_lpt`] — the ideal baseline's near-optimal assignment:
//!   longest-processing-time greedy bin packing of all movable indexes
//!   (optimal re-mapping reduces to bin packing, NP-hard, §3.4 — LPT is
//!   the standard 4/3-approximation).

/// One planned state movement: move `index` to pipeline `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Register index to migrate.
    pub index: usize,
    /// Destination pipeline.
    pub to: usize,
}

/// The paper's Figure 6 heuristic for one register array.
///
/// `map[i]` is the current pipeline of index `i`, `counters[i]` the
/// access count since the last reset, `inflight[i]` the in-flight packet
/// count. Returns at most one move.
pub fn remap_heuristic(
    map: &[u16],
    counters: &[u64],
    inflight: &[u32],
    pipelines: usize,
) -> Option<Move> {
    debug_assert_eq!(map.len(), counters.len());
    if pipelines < 2 || map.is_empty() {
        return None;
    }
    // Aggregate per-pipeline load under the current mapping.
    let mut load = vec![0u64; pipelines];
    for (i, &p) in map.iter().enumerate() {
        load[p as usize] += counters[i];
    }
    let (h, &cmax) = load
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .expect("pipelines > 0");
    let (l, &cmin) = load
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("pipelines > 0");
    if h == l || cmax == cmin {
        return None;
    }
    let c = (cmax - cmin) / 2;
    // Largest-counter index on H strictly below C, not in flight.
    let mut best: Option<(u64, usize)> = None;
    for (i, &p) in map.iter().enumerate() {
        if p as usize == h && counters[i] < c && inflight[i] == 0 {
            let cand = (counters[i], i);
            if best.is_none_or(|b| cand.0 > b.0 || (cand.0 == b.0 && cand.1 < b.1)) {
                best = Some(cand);
            }
        }
    }
    best.map(|(_, i)| Move { index: i, to: l })
}

/// Runs the Figure 6 heuristic to a fixed point (the *ideal* baseline's
/// re-sharding).
///
/// The optimal re-mapping is a bin-packing variant (NP-hard, §3.4); the
/// ideal baseline approximates it by iterating the paper's single-move
/// heuristic until no further move reduces the max/min load gap. Unlike
/// wholesale re-packing (e.g. LPT over the observed counters), every
/// move strictly reduces imbalance, so balanced loads are left
/// untouched — we found experimentally that re-packing hundreds of
/// indexes per period onto momentarily-backlogged pipelines *costs*
/// throughput even when the resulting count balance is perfect.
pub fn remap_to_fixpoint(
    map: &[u16],
    counters: &[u64],
    inflight: &[u32],
    pipelines: usize,
    max_moves: usize,
) -> Vec<Move> {
    let mut work: Vec<u16> = map.to_vec();
    let mut moves = Vec::new();
    for _ in 0..max_moves {
        match remap_heuristic(&work, counters, inflight, pipelines) {
            Some(mv) => {
                work[mv.index] = mv.to as u16;
                moves.push(mv);
            }
            None => break,
        }
    }
    moves
}

/// Longest-processing-time greedy re-assignment.
///
/// Indexes with non-zero in-flight counters keep their pipeline (their
/// load pre-fills the bins); everything else is re-assigned greedily,
/// heaviest first, to the least-loaded pipeline. Returns the moves that
/// change an index's pipeline.
///
/// Kept for comparison and unit-tested, but **not** used by the ideal
/// baseline: see [`remap_to_fixpoint`] for why.
pub fn remap_lpt(map: &[u16], counters: &[u64], inflight: &[u32], pipelines: usize) -> Vec<Move> {
    if pipelines < 2 || map.is_empty() {
        return Vec::new();
    }
    let mut load = vec![0u64; pipelines];
    let mut movable: Vec<usize> = Vec::new();
    for (i, &p) in map.iter().enumerate() {
        // Only re-balance indexes with observed load: moving cold
        // indexes would pile them all onto one pipeline (their measured
        // weight is zero) and wreck the spread for the *next* period.
        if inflight[i] == 0 && counters[i] > 0 {
            movable.push(i);
        } else {
            load[p as usize] += counters[i];
        }
    }
    // Heaviest first; ties by index for determinism.
    movable.sort_by_key(|&i| (std::cmp::Reverse(counters[i]), i));
    let mut moves = Vec::new();
    for i in movable {
        let target = (0..pipelines)
            .min_by_key(|&p| (load[p], p))
            .expect("pipelines > 0");
        load[target] += counters[i];
        if map[i] as usize != target {
            moves.push(Move {
                index: i,
                to: target,
            });
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_moves_from_hot_to_cold() {
        // Pipeline 0 holds indexes 0,1 (loads 10, 3); pipeline 1 holds
        // index 2 (load 1). cmax=13, cmin=1, C=6: index 1 (3 < 6) moves.
        let map = [0u16, 0, 1];
        let counters = [10u64, 3, 1];
        let inflight = [0u32, 0, 0];
        let mv = remap_heuristic(&map, &counters, &inflight, 2).unwrap();
        assert_eq!(mv, Move { index: 1, to: 1 });
    }

    #[test]
    fn heuristic_respects_inflight_guard() {
        let map = [0u16, 0, 1];
        let counters = [10u64, 3, 1];
        // Index 1 has packets in flight: no move possible (index 0 is
        // too heavy: 10 >= C=6).
        let inflight = [0u32, 2, 0];
        assert_eq!(remap_heuristic(&map, &counters, &inflight, 2), None);
    }

    #[test]
    fn heuristic_noop_when_balanced() {
        let map = [0u16, 1];
        let counters = [5u64, 5];
        let inflight = [0u32, 0];
        assert_eq!(remap_heuristic(&map, &counters, &inflight, 2), None);
    }

    #[test]
    fn heuristic_noop_single_pipeline() {
        assert_eq!(remap_heuristic(&[0, 0], &[9, 1], &[0, 0], 1), None);
    }

    #[test]
    fn heuristic_never_moves_index_above_half_gap() {
        // The hottest index must stay (moving it would just swap H/L).
        let map = [0u16, 1];
        let counters = [100u64, 0];
        let inflight = [0u32, 0];
        // C = 50; index 0 has 100 >= 50: no eligible index on H.
        assert_eq!(remap_heuristic(&map, &counters, &inflight, 2), None);
    }

    #[test]
    fn lpt_balances_loads() {
        let map = [0u16, 0, 0, 0];
        let counters = [8u64, 7, 6, 5];
        let inflight = [0u32; 4];
        let moves = remap_lpt(&map, &counters, &inflight, 2);
        // LPT: 8->p0, 7->p1, 6->p1, 5->p0 => loads 13 vs 13.
        let mut map2: Vec<u16> = map.to_vec();
        for m in &moves {
            map2[m.index] = m.to as u16;
        }
        let mut load = [0u64; 2];
        for (i, &p) in map2.iter().enumerate() {
            load[p as usize] += counters[i];
        }
        assert_eq!(load[0], load[1], "LPT must balance this instance exactly");
    }

    #[test]
    fn lpt_keeps_inflight_indexes() {
        let map = [1u16, 0, 0];
        let counters = [100u64, 1, 1];
        let inflight = [5u32, 0, 0];
        let moves = remap_lpt(&map, &counters, &inflight, 2);
        assert!(moves.iter().all(|m| m.index != 0), "in-flight index pinned");
    }

    #[test]
    fn repeated_heuristic_converges_toward_balance() {
        // Drive the heuristic to a fixed point and check imbalance
        // shrinks.
        let mut map = vec![0u16; 16];
        let counters: Vec<u64> = (0..16).map(|i| (i as u64 + 1) * 3).collect();
        let inflight = vec![0u32; 16];
        let imbalance = |map: &[u16]| {
            let mut load = [0u64; 4];
            for (i, &p) in map.iter().enumerate() {
                load[p as usize] += counters[i];
            }
            *load.iter().max().unwrap() - *load.iter().min().unwrap()
        };
        let before = imbalance(&map);
        for _ in 0..64 {
            match remap_heuristic(&map, &counters, &inflight, 4) {
                Some(m) => map[m.index] = m.to as u16,
                None => break,
            }
        }
        let after = imbalance(&map);
        assert!(after < before / 4, "imbalance {before} -> {after}");
    }
}
