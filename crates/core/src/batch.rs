//! The struct-of-arrays work phase (`ExecPath::Batch`, DESIGN.md §13).
//!
//! The scalar work phase interleaves *scheduling* (which packet does a
//! `(pipeline, stage)` slot run this cycle?) with *execution* (run it)
//! — one packet at a time, re-dispatching the stage program and
//! allocating access buffers per packet. This module splits the phase
//! into three passes over a [`PacketBatch`]:
//!
//! 1. **Sweep** — per pipeline, stages ascending, make exactly the
//!    scalar scheduler's decisions (incoming priority / Invariant 2,
//!    starvation drops, injected stalls, FIFO service) but *pack* each
//!    chosen packet into the batch instead of executing it: fields go
//!    into a dense [`FieldMatrix`] row, the flight parks in a parallel
//!    array, and lane metadata records where it came from.
//! 2. **Execute** — stage-major over the batch: address resolution for
//!    the pipeline-head lanes, then one
//!    [`CompiledProgram::execute_stage_batch`] kernel call per body
//!    stage (instruction-major, allocation-free). Outcomes that the
//!    scalar path applied mid-loop are recorded as per-lane *verdict
//!    flags* and access ranges in parallel arrays.
//! 3. **Compact** — walk the lanes in sweep order (pipeline-major,
//!    stages ascending — the scalar effect order) and apply the
//!    verdicts: write fields back, retire tags, cancel sibling queue
//!    slots, and push counter/phantom/access side effects into the
//!    per-pipeline [`WorkFx`] buffers, which the caller applies in
//!    ascending pipeline order exactly as before.
//!
//! Equivalence with the scalar path is argued in DESIGN.md §13 and
//! pinned by `tests/engine_equivalence.rs` and `tests/batch_soa.rs`:
//! a stage's execution only touches its own packet's fields, its
//! pipeline's register replica, and its own `(pipeline, stage)` queue
//! — never an un-swept slot — so deferring execution behind a full
//! sweep, and running it stage-major, produces bit-identical reports.
//!
//! This module is a child of `switch` so it can share the private
//! work-phase types; the split keeps the batch representation in one
//! place without widening any crate-level visibility.

use super::*;

use mp5_compiler::{BatchRegs, FieldMatrix, LaneAccess};

/// Verdict flag: the lane retired a speculative tag without performing
/// an access — §3.3's one wasted cycle, counted during compaction.
const V_WASTED: u8 = 1 << 0;

/// A mutable view of one pipeline's work-phase state. The sequential
/// engine builds one per pipeline from the switch's own arrays; the
/// parallel engine builds one per [`Unit`] in a worker's contiguous
/// pipeline range — the batch passes are identical either way.
pub(super) struct PipeView<'a> {
    pub(super) pl: usize,
    pub(super) inc_row: &'a mut [Option<Flight>],
    pub(super) queues: &'a mut [StageQueue],
    pub(super) lanes: &'a mut [Option<Flight>],
    pub(super) regs: &'a mut [Vec<Value>],
    pub(super) fx: &'a mut WorkFx,
}

/// Lane metadata: which `(view, stage)` slot this batch row executes
/// for. Kept to four bytes so the lane array stays cache-resident.
#[derive(Debug, Clone, Copy)]
struct Lane {
    st: u16,
    slot: u16,
}

/// One cycle's worth of packets in struct-of-arrays layout, plus every
/// reusable buffer the three passes need. All `Vec`s reach a
/// steady-state capacity after the first few cycles, so the batch work
/// phase allocates nothing per cycle (beyond what packets themselves
/// carry).
#[derive(Debug, Default)]
pub(super) struct PacketBatch {
    /// Lane metadata, parallel to `flights` / `verdicts` /
    /// `acc_ranges` and to the rows of `fields`.
    lanes: Vec<Lane>,
    /// Parked packets (`Option` so compaction can move them out).
    flights: Vec<Option<Flight>>,
    /// Per-lane verdict flags (`V_*`), set by execute, applied by
    /// compact.
    verdicts: Vec<u8>,
    /// Per-lane `[start, end)` ranges into `acc`.
    acc_ranges: Vec<(u32, u32)>,
    /// Packet fields, one dense row per lane.
    fields: FieldMatrix,
    /// Lane ids grouped by physical stage (the execute pass is
    /// stage-major).
    stage_lanes: Vec<Vec<u32>>,
    /// Register-file slots parallel to `stage_lanes`.
    stage_slots: Vec<Vec<u16>>,
    /// Reusable resolution output buffer.
    resolved: Vec<mp5_compiler::ResolvedAccess>,
    /// Raw kernel output for one stage (instruction-major), regrouped
    /// per lane into `acc` after each kernel call.
    kernel_out: Vec<LaneAccess>,
    /// Deduped per-lane accesses, flat; indexed via `acc_ranges`.
    acc: Vec<(RegId, u32)>,
}

impl PacketBatch {
    fn reset(&mut self, stages: usize, num_fields: usize) {
        self.lanes.clear();
        self.flights.clear();
        self.verdicts.clear();
        self.acc_ranges.clear();
        self.fields.reset(num_fields);
        self.stage_lanes.resize_with(stages, Vec::new);
        self.stage_slots.resize_with(stages, Vec::new);
        self.stage_lanes.truncate(stages);
        self.stage_slots.truncate(stages);
        for v in &mut self.stage_lanes {
            v.clear();
        }
        for v in &mut self.stage_slots {
            v.clear();
        }
        self.acc.clear();
    }

    /// Packs one scheduled packet into the batch.
    fn admit(&mut self, st: usize, slot: u16, fl: Flight) {
        let lane = self.fields.push_row(&fl.pkt.fields);
        self.lanes.push(Lane {
            st: st as u16,
            slot,
        });
        self.flights.push(Some(fl));
        self.verdicts.push(0);
        self.acc_ranges.push((0, 0));
        self.stage_lanes[st].push(lane);
        self.stage_slots[st].push(slot);
    }
}

/// Register-file adapter from batch slots to per-pipeline register
/// replicas (monomorphized into the kernel; see [`BatchRegs`]).
struct ViewRegs<'a, 'v>(&'a mut [PipeView<'v>]);

impl BatchRegs for ViewRegs<'_, '_> {
    #[inline]
    fn read(&mut self, slot: u16, reg: RegId, idx: u32) -> Value {
        self.0[slot as usize].regs[reg.index()][idx as usize]
    }

    #[inline]
    fn write(&mut self, slot: u16, reg: RegId, idx: u32, val: Value) {
        self.0[slot as usize].regs[reg.index()][idx as usize] = val;
    }
}

/// Runs the full batch work phase for one cycle over `views` (a
/// contiguous, ascending range of pipelines). On return every view's
/// `fx` holds its buffered side effects in the scalar path's order;
/// the caller applies them in ascending pipeline order.
pub(super) fn batch_work(ctx: &WorkCtx<'_>, views: &mut [PipeView<'_>], batch: &mut PacketBatch) {
    batch.reset(ctx.prog.num_stages(), ctx.prog.num_fields());
    for (slot, view) in views.iter_mut().enumerate() {
        sweep_pipeline(ctx, view, slot as u16, batch);
    }
    execute_batch(ctx, views, batch);
    compact_batch(ctx, views, batch);
}

/// Pass 1: the scalar scheduler's decisions for one pipeline, packing
/// instead of executing. Must mirror `work_pipeline` exactly —
/// including the short-circuit order of the starvation probe, whose
/// `oldest_ts` call drains freed stale queue heads as a side effect.
fn sweep_pipeline(ctx: &WorkCtx<'_>, view: &mut PipeView<'_>, slot: u16, batch: &mut PacketBatch) {
    for st in 0..view.inc_row.len() {
        if let Some(fl) = view.inc_row[st].take() {
            if let Some(thr) = ctx.starvation_threshold {
                let starved = fl.pkt.tags.is_empty()
                    && view.queues[st].oldest_ts().is_some_and(|ts| {
                        let now = ctx.cycle * ctx.clen;
                        now.saturating_sub(ts.0) > thr * ctx.clen
                    });
                if starved {
                    view.fx.starvation_drops.push((view.pl as u16, st as u16));
                    if ctx.stalled(view.pl, st) {
                        view.fx.stall_cycles += 1;
                    } else {
                        serve_into(ctx, view, slot, st, batch);
                    }
                    continue;
                }
            }
            batch.admit(st, slot, fl);
        } else if ctx.stalled(view.pl, st) {
            if !view.queues[st].is_empty() {
                view.fx.stall_cycles += 1;
            }
        } else {
            serve_into(ctx, view, slot, st, batch);
        }
    }
}

fn serve_into(
    ctx: &WorkCtx<'_>,
    view: &mut PipeView<'_>,
    slot: u16,
    st: usize,
    batch: &mut PacketBatch,
) {
    // Data-oriented early-out: a truly empty queue's `serve` is a
    // no-op (`pop` scans every lane head twice just to report
    // `Empty`), and in steady state most `(pipeline, stage)` queues
    // are empty every cycle. A queue holding only free stales still
    // counts as occupied, so the drain inside `pop` is preserved.
    if view.queues[st].is_empty() {
        return;
    }
    let tctx = TraceCtx::new(ctx.cycle, view.pl as u16, st as u16);
    match view.queues[st].serve(st, &mut NopSink, tctx) {
        Serve::Served(fl) => batch.admit(st, slot, fl),
        Serve::Wasted => view.fx.wasted_cycles += 1,
        Serve::Idle => {}
    }
}

/// Pass 2: stage-major execution over the packed lanes. Address
/// resolution runs per-lane (into a reusable buffer); body stages run
/// through the instruction-major SoA kernel; per-lane access lists and
/// verdict flags land in the batch's parallel arrays.
fn execute_batch(ctx: &WorkCtx<'_>, views: &mut [PipeView<'_>], batch: &mut PacketBatch) {
    // Address resolution at the pipeline head (§3.3), same per-packet
    // computation as `resolve_flight` with the counter bumps deferred
    // to compaction (tag order carries all the information).
    if ctx.prologue > 0 {
        for i in 0..batch.stage_lanes[0].len() {
            let l = batch.stage_lanes[0][i];
            ctx.prog
                .resolve_into(batch.fields.row_mut(l), &mut batch.resolved);
            let mut tags = Vec::with_capacity(batch.resolved.len());
            for r in &batch.resolved {
                let dest = if r.reg == REG_STAGE_SENTINEL
                    || r.index == INDEX_ARRAY_LEVEL
                    || !ctx.prog.regs[r.reg.index()].shardable
                {
                    PipelineId(0)
                } else {
                    PipelineId(ctx.index_map[r.reg.index()][r.index as usize])
                };
                tags.push(AccessTag {
                    reg: r.reg,
                    index: r.index,
                    pipeline: dest,
                    stage: r.stage,
                    speculative: r.speculative,
                });
            }
            debug_assert!(tags.windows(2).all(|w| w[0].stage <= w[1].stage));
            let fl = batch.flights[l as usize]
                .as_mut()
                .expect("lane flight parked by sweep");
            fl.pkt.tags = tags;
        }
    }
    for st in ctx.prologue..batch.stage_lanes.len() {
        let body = st - ctx.prologue;
        if batch.stage_lanes[st].is_empty() {
            continue;
        }
        batch.kernel_out.clear();
        ctx.prog.execute_stage_batch(
            body,
            &batch.stage_lanes[st],
            &batch.stage_slots[st],
            &mut batch.fields,
            &mut ViewRegs(views),
            &mut batch.kernel_out,
        );
        // Regroup the instruction-major kernel output per lane,
        // deduping consecutive duplicates — reproducing
        // `execute_stage`'s per-packet access list — and render the
        // verdicts the scalar path applied inline.
        for i in 0..batch.stage_lanes[st].len() {
            let l = batch.stage_lanes[st][i];
            let start = batch.acc.len();
            for a in batch.kernel_out.iter().filter(|a| a.lane == l) {
                let e = (a.reg, a.index);
                if batch.acc.len() == start || *batch.acc.last().expect("nonempty") != e {
                    batch.acc.push(e);
                }
            }
            let end = batch.acc.len();
            batch.acc_ranges[l as usize] = (start as u32, end as u32);
            let fl = batch.flights[l as usize]
                .as_ref()
                .expect("lane flight parked by sweep");
            let retired_speculative = fl
                .pkt
                .tags
                .iter()
                .take_while(|t| t.stage.index() == st)
                .any(|t| t.speculative);
            if retired_speculative && start == end {
                batch.verdicts[l as usize] |= V_WASTED;
            }
        }
    }
}

/// Pass 3: apply verdicts and retirements in sweep order — which is
/// pipeline-major with stages ascending, i.e. exactly the order the
/// scalar loop produced its per-pipeline effects in.
fn compact_batch(ctx: &WorkCtx<'_>, views: &mut [PipeView<'_>], batch: &mut PacketBatch) {
    for (i, lane) in batch.lanes.iter().enumerate() {
        let mut fl = batch.flights[i]
            .take()
            .expect("lane flight parked by sweep");
        let st = lane.st as usize;
        fl.pkt.fields.copy_from_slice(batch.fields.row(i as u32));
        let view = &mut views[lane.slot as usize];
        if st == 0 && ctx.prologue > 0 {
            // The resolution counter bumps, in tag (= resolution) order.
            for tag in &fl.pkt.tags {
                if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
                    view.fx.ctr_ops.push(CtrOp::Inc {
                        reg: tag.reg,
                        index: tag.index,
                    });
                }
            }
        }
        if ctx.prologue > 0 && st == ctx.prologue - 1 && ctx.phantoms {
            // Phantom generation stage: one phantom per tag, in order.
            for tag in &fl.pkt.tags {
                view.fx.injects.push(PhantomInject {
                    msg: PhantomMsg {
                        key: fl.key(tag),
                        ts: fl.order,
                        dest: tag.pipeline,
                        lane: fl.ingress,
                    },
                    from: StageId(st as u16),
                    dest: tag.stage,
                });
                view.fx.phantoms_generated += 1;
            }
        }
        if st >= ctx.prologue {
            let (a0, a1) = batch.acc_ranges[i];
            if ctx.record_detail {
                for &(reg, index) in &batch.acc[a0 as usize..a1 as usize] {
                    view.fx.accesses.push((reg, index, fl.pkt.id));
                }
            }
            // Retire this stage's tags; see `process_flight` for the
            // sibling-cancel and wasted-cycle semantics.
            let mut first = true;
            while fl.pkt.tags.first().is_some_and(|t| t.stage.index() == st) {
                let tag = fl.pkt.tags.remove(0);
                if !first && ctx.phantoms {
                    let key = fl.key(&tag);
                    let tctx = TraceCtx::new(ctx.cycle, view.pl as u16, st as u16);
                    view.queues[st].cancel(key, false, &mut NopSink, tctx);
                }
                first = false;
                if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
                    view.fx.ctr_ops.push(CtrOp::Dec {
                        reg: tag.reg,
                        index: tag.index,
                    });
                }
            }
            if batch.verdicts[i] & V_WASTED != 0 {
                view.fx.wasted_cycles += 1;
            }
        }
        view.lanes[st] = Some(fl);
    }
}
