//! The struct-of-arrays work phase (`ExecPath::Batch`, DESIGN.md §13).
//!
//! The scalar work phase interleaves *scheduling* (which packet does a
//! `(pipeline, stage)` slot run this cycle?) with *execution* (run it)
//! — one packet at a time, re-dispatching the stage program and
//! allocating access buffers per packet. This module splits the phase
//! into three passes over a [`PacketBatch`]:
//!
//! 1. **Sweep** — per pipeline, stages ascending, make exactly the
//!    scalar scheduler's decisions (incoming priority / Invariant 2,
//!    starvation drops, injected stalls, FIFO service) but *park* each
//!    chosen packet in the batch instead of executing it: the flight
//!    lands in a lane array (fields stay in place inside the packet —
//!    the kernel reads and writes them through [`FlightRows`], so
//!    admission and compaction copy nothing) and lane metadata records
//!    where it came from.
//! 2. **Execute** — stage-major over the batch: address resolution for
//!    the pipeline-head lanes, then one
//!    [`CompiledProgram::execute_stage_batch`] kernel call per body
//!    stage (instruction-major, allocation-free). Outcomes that the
//!    scalar path applied mid-loop are recorded as per-lane *verdict
//!    flags* and access ranges in parallel arrays.
//! 3. **Compact** — walk the lanes in sweep order (pipeline-major,
//!    stages ascending — the scalar effect order) and apply the
//!    verdicts: write fields back, retire tags, cancel sibling queue
//!    slots, and push counter/phantom/access side effects into the
//!    per-pipeline [`WorkFx`] buffers, which the caller applies in
//!    ascending pipeline order exactly as before.
//!
//! **Tracing** rides the same passes instead of falling back to the
//! scalar loop: the sweep appends its scheduler events (drops, pops,
//! execute) to a per-batch buffer via [`BufSink`], compaction renders
//! each lane's execution events (phantom emits, accesses, sibling
//! cancels) into a per-view scratch buffer, and a stable merge by stage
//! — scheduler stream first on ties — reconstructs the exact scalar
//! event order per pipeline (DESIGN.md §13). With `NopSink` every
//! buffer stays empty and the guards constant-fold as before.
//!
//! Equivalence with the scalar path is argued in DESIGN.md §13 and
//! pinned by `tests/engine_equivalence.rs` and `tests/batch_soa.rs`:
//! a stage's execution only touches its own packet's fields, its
//! pipeline's register replica, and its own `(pipeline, stage)` queue
//! — never an un-swept slot — so deferring execution behind a full
//! sweep, and running it stage-major, produces bit-identical reports.
//!
//! This module is a child of `switch` so it can share the private
//! work-phase types; the split keeps the batch representation in one
//! place without widening any crate-level visibility.

use super::*;

use mp5_compiler::{BatchRegs, LaneAccess, LaneFields};

/// Verdict flag: the lane retired a speculative tag without performing
/// an access — §3.3's one wasted cycle, counted during compaction.
const V_WASTED: u8 = 1 << 0;

/// A mutable view of one pipeline's work-phase state. The sequential
/// engine builds one per pipeline from the switch's own arrays; the
/// parallel engine builds one per [`Unit`] in a worker's contiguous
/// pipeline range — the batch passes are identical either way.
pub(super) struct PipeView<'a> {
    pub(super) pl: usize,
    pub(super) inc_row: &'a mut [Option<Flight>],
    pub(super) queues: &'a mut [StageQueue],
    pub(super) lanes: &'a mut [Option<Flight>],
    pub(super) regs: &'a mut [Vec<Value>],
    pub(super) fx: &'a mut WorkFx,
    /// This pipeline's trace events for the cycle, flushed in canonical
    /// scalar order by compaction (untouched when the sink is disabled).
    pub(super) events: &'a mut Vec<Event>,
    /// Bitmask of stages compaction parked a flight at this cycle,
    /// consumed by the next batched move phase (stages ≥ 64 are not
    /// recorded; the move phase falls back to the full lane scan for
    /// such programs).
    pub(super) park: &'a mut u64,
    /// Bitmask of `inc_row` slots the move phase and ingress filled
    /// this cycle: the sweep tests bits instead of probing every fat
    /// `Option<Flight>` slot (programs of > 64 stages fall back to the
    /// probe).
    pub(super) inc: u64,
    /// Possibly-non-empty stage FIFOs (stages < 64; conservative
    /// superset, see `Mp5Switch::queue_mask`). The sweep visits only
    /// `inc | qmask` slots and clears a bit when the queue turns out
    /// empty; programs of > 64 stages fall back to probing every slot.
    pub(super) qmask: &'a mut u64,
}

/// Lane metadata: which `(view, stage)` slot this batch row executes
/// for. Kept to four bytes so the lane array stays cache-resident.
#[derive(Debug, Clone, Copy)]
struct Lane {
    st: u16,
    slot: u16,
}

/// One cycle's worth of packets in struct-of-arrays layout, plus every
/// reusable buffer the three passes need. All `Vec`s reach a
/// steady-state capacity after the first few cycles, so the batch work
/// phase allocates nothing per cycle (beyond what packets themselves
/// carry).
#[derive(Debug, Default)]
pub(super) struct PacketBatch {
    /// Lane metadata, parallel to `flights` / `verdicts` /
    /// `acc_ranges` and to the rows of `fields`.
    lanes: Vec<Lane>,
    /// Parked packets (`Option` so compaction can move them out).
    flights: Vec<Option<Flight>>,
    /// Per-lane verdict flags (`V_*`), set by execute, applied by
    /// compact.
    verdicts: Vec<u8>,
    /// Per-lane `[start, end)` ranges into `acc`.
    acc_ranges: Vec<(u32, u32)>,
    /// Lane ids grouped by physical stage (the execute pass is
    /// stage-major).
    stage_lanes: Vec<Vec<u32>>,
    /// Register-file slots parallel to `stage_lanes`.
    stage_slots: Vec<Vec<u16>>,
    /// Reusable resolution output buffer.
    resolved: Vec<mp5_compiler::ResolvedAccess>,
    /// Raw kernel output for one stage (instruction-major), regrouped
    /// per lane into `acc` after each kernel call.
    kernel_out: Vec<LaneAccess>,
    /// Deduped per-lane accesses, flat; indexed via `acc_ranges`.
    acc: Vec<(RegId, u32)>,
    /// Reusable regroup buckets, one per lane of the stage being
    /// executed: scattering `kernel_out` through these is a stable
    /// counting sort by lane (instruction order preserved within a
    /// lane), replacing an O(lanes × accesses) filter scan.
    regroup: Vec<Vec<(RegId, u32)>>,
    /// Lane id → position within the current stage's lane list.
    lane_local: Vec<u32>,
    /// Scheduler events from the sweep (traced runs only), across all
    /// views in sweep order; sliced per view via `sched_marks`.
    sched_ev: Vec<Event>,
    /// End index into `sched_ev` after each view's sweep.
    sched_marks: Vec<u32>,
    /// Reusable per-view execution-event scratch for compaction.
    exec_ev: Vec<Event>,
}

impl PacketBatch {
    fn reset(&mut self, stages: usize) {
        self.lanes.clear();
        self.flights.clear();
        self.verdicts.clear();
        self.acc_ranges.clear();
        self.stage_lanes.resize_with(stages, Vec::new);
        self.stage_slots.resize_with(stages, Vec::new);
        self.stage_lanes.truncate(stages);
        self.stage_slots.truncate(stages);
        for v in &mut self.stage_lanes {
            v.clear();
        }
        for v in &mut self.stage_slots {
            v.clear();
        }
        self.acc.clear();
    }

    /// Parks one scheduled packet in the batch. Fields stay inside the
    /// flight — the execute pass reads and writes them in place through
    /// [`FlightRows`], so admission copies nothing.
    fn admit(&mut self, st: usize, slot: u16, fl: Flight) {
        let lane = self.flights.len() as u32;
        self.lanes.push(Lane {
            st: st as u16,
            slot,
        });
        self.flights.push(Some(fl));
        self.verdicts.push(0);
        self.acc_ranges.push((0, 0));
        self.stage_lanes[st].push(lane);
        self.stage_slots[st].push(slot);
    }
}

/// Field-row adapter over the parked flights: the kernel executes
/// stages directly on each flight's own field vector, so the batch
/// never copies fields in at admission or back out at compaction.
struct FlightRows<'a>(&'a mut [Option<Flight>]);

impl LaneFields for FlightRows<'_> {
    #[inline]
    fn row(&self, lane: u32) -> &[Value] {
        &self.0[lane as usize]
            .as_ref()
            .expect("lane flight parked by sweep")
            .pkt
            .fields
    }

    #[inline]
    fn row_mut(&mut self, lane: u32) -> &mut [Value] {
        &mut self.0[lane as usize]
            .as_mut()
            .expect("lane flight parked by sweep")
            .pkt
            .fields
    }
}

/// Register-file adapter from batch slots to per-pipeline register
/// replicas (monomorphized into the kernel; see [`BatchRegs`]).
struct ViewRegs<'a, 'v>(&'a mut [PipeView<'v>]);

impl BatchRegs for ViewRegs<'_, '_> {
    #[inline]
    fn read(&mut self, slot: u16, reg: RegId, idx: u32) -> Value {
        self.0[slot as usize].regs[reg.index()][idx as usize]
    }

    #[inline]
    fn write(&mut self, slot: u16, reg: RegId, idx: u32, val: Value) {
        self.0[slot as usize].regs[reg.index()][idx as usize] = val;
    }
}

/// Runs the full batch work phase for one cycle over `views` (a
/// contiguous, ascending range of pipelines). On return every view's
/// `fx` holds its buffered side effects in the scalar path's order;
/// the caller applies them in ascending pipeline order.
pub(super) fn batch_work<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    views: &mut [PipeView<'_>],
    batch: &mut PacketBatch,
) {
    batch.reset(ctx.prog.num_stages());
    // The sweep's event buffer moves out of the batch so `admit` can
    // borrow the batch mutably while the sink borrows the buffer.
    let mut sched = std::mem::take(&mut batch.sched_ev);
    sched.clear();
    batch.sched_marks.clear();
    for (slot, view) in views.iter_mut().enumerate() {
        sweep_pipeline::<S>(ctx, view, slot as u16, batch, &mut sched);
        batch.sched_marks.push(sched.len() as u32);
    }
    batch.sched_ev = sched;
    execute_batch(ctx, views, batch);
    compact_batch::<S>(ctx, views, batch);
}

/// Pass 1: the scalar scheduler's decisions for one pipeline, packing
/// instead of executing. Must mirror `work_pipeline` exactly —
/// including the short-circuit order of the starvation probe, whose
/// `oldest_ts` call drains freed stale queue heads as a side effect.
fn sweep_pipeline<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    view: &mut PipeView<'_>,
    slot: u16,
    batch: &mut PacketBatch,
    sched: &mut Vec<Event>,
) {
    // For programs of ≤ 64 stages the incoming and queue-occupancy
    // masks say exactly which slots can do any work this cycle —
    // everything else is a no-op in the scalar scheduler too (no
    // incoming flight, nothing queued to serve, stalls only observable
    // on occupied slots) — so the sweep walks set bits ascending
    // (`trailing_zeros` order = stage order) instead of probing all
    // `stages` slots. Wider programs keep the full probe loop.
    if view.inc_row.len() <= 64 {
        let mut work = view.inc | *view.qmask;
        while work != 0 {
            let st = work.trailing_zeros() as usize;
            work &= work - 1;
            debug_assert_eq!(
                view.inc & (1 << st) != 0,
                view.inc_row[st].is_some(),
                "incoming mask out of sync at stage {st}"
            );
            sweep_slot::<S>(ctx, view, slot, st, view.inc & (1 << st) != 0, batch, sched);
        }
        debug_assert!(
            view.inc_row.iter().all(|s| s.is_none()),
            "incoming flight missed by the work mask"
        );
    } else {
        for st in 0..view.inc_row.len() {
            let has_inc = view.inc_row[st].is_some();
            sweep_slot::<S>(ctx, view, slot, st, has_inc, batch, sched);
        }
    }
}

/// One `(pipeline, stage)` slot of the sweep: the scalar scheduler's
/// decision for that slot, parking instead of executing.
fn sweep_slot<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    view: &mut PipeView<'_>,
    slot: u16,
    st: usize,
    has_inc: bool,
    batch: &mut PacketBatch,
    sched: &mut Vec<Event>,
) {
    if has_inc {
        let fl = view.inc_row[st]
            .take()
            .expect("incoming mask bit set on an empty slot");
        if let Some(thr) = ctx.starvation_threshold {
            let starved = fl.pkt.tags.is_empty()
                && view.queues[st].oldest_ts().is_some_and(|ts| {
                    let now = ctx.cycle * ctx.clen;
                    now.saturating_sub(ts.0) > thr * ctx.clen
                });
            if starved {
                view.fx.starvation_drops.push((view.pl as u16, st as u16));
                if S::ENABLED {
                    TraceCtx::new(ctx.cycle, view.pl as u16, st as u16).emit(
                        &mut BufSink(sched),
                        EventKind::Drop {
                            pkt: fl.pkt.id,
                            cause: DropCause::Starvation,
                        },
                    );
                }
                if ctx.stalled(view.pl, st) {
                    view.fx.stall_cycles += 1;
                } else {
                    serve_into::<S>(ctx, view, slot, st, batch, sched);
                }
                return;
            }
        }
        if S::ENABLED {
            let bypassed = !view.queues[st].is_empty();
            TraceCtx::new(ctx.cycle, view.pl as u16, st as u16).emit(
                &mut BufSink(sched),
                EventKind::Execute {
                    pkt: fl.pkt.id,
                    queued: false,
                    bypassed,
                },
            );
        }
        batch.admit(st, slot, fl);
    } else if ctx.stalled(view.pl, st) {
        if !view.queues[st].is_empty() {
            view.fx.stall_cycles += 1;
        } else if st < 64 {
            *view.qmask &= !(1 << st);
        }
    } else {
        serve_into::<S>(ctx, view, slot, st, batch, sched);
    }
}

fn serve_into<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    view: &mut PipeView<'_>,
    slot: u16,
    st: usize,
    batch: &mut PacketBatch,
    sched: &mut Vec<Event>,
) {
    // Data-oriented early-out: a truly empty queue's `serve` is a
    // no-op (`pop` scans every lane head twice just to report
    // `Empty`), and in steady state most `(pipeline, stage)` queues
    // are empty every cycle. A queue holding only free stales still
    // counts as occupied, so the drain inside `pop` is preserved. An
    // empty queue also retires its (conservative) occupancy bit here.
    if view.queues[st].is_empty() {
        if st < 64 {
            *view.qmask &= !(1 << st);
        }
        return;
    }
    let tctx = TraceCtx::new(ctx.cycle, view.pl as u16, st as u16);
    let served = if S::ENABLED {
        view.queues[st].serve(st, &mut BufSink(sched), tctx)
    } else {
        view.queues[st].serve(st, &mut NopSink, tctx)
    };
    match served {
        Serve::Served(fl) => {
            if S::ENABLED {
                tctx.emit(
                    &mut BufSink(sched),
                    EventKind::Execute {
                        pkt: fl.pkt.id,
                        queued: true,
                        bypassed: false,
                    },
                );
            }
            batch.admit(st, slot, fl)
        }
        Serve::Wasted => view.fx.wasted_cycles += 1,
        Serve::Idle => {}
    }
}

/// Pass 2: stage-major execution over the packed lanes. Address
/// resolution runs per-lane (into a reusable buffer); body stages run
/// through the instruction-major SoA kernel; per-lane access lists and
/// verdict flags land in the batch's parallel arrays.
fn execute_batch(ctx: &WorkCtx<'_>, views: &mut [PipeView<'_>], batch: &mut PacketBatch) {
    // Address resolution at the pipeline head (§3.3), same per-packet
    // computation as `resolve_flight` with the counter bumps deferred
    // to compaction (tag order carries all the information).
    if ctx.prologue > 0 {
        for i in 0..batch.stage_lanes[0].len() {
            let l = batch.stage_lanes[0][i];
            {
                let fl = batch.flights[l as usize]
                    .as_mut()
                    .expect("lane flight parked by sweep");
                ctx.prog
                    .resolve_into(&mut fl.pkt.fields, &mut batch.resolved);
            }
            let mut tags = Vec::with_capacity(batch.resolved.len());
            for r in &batch.resolved {
                let dest = if r.reg == REG_STAGE_SENTINEL
                    || r.index == INDEX_ARRAY_LEVEL
                    || !ctx.prog.regs[r.reg.index()].shardable
                {
                    PipelineId(0)
                } else {
                    PipelineId(ctx.index_map[r.reg.index()][r.index as usize])
                };
                tags.push(AccessTag {
                    reg: r.reg,
                    index: r.index,
                    pipeline: dest,
                    stage: r.stage,
                    speculative: r.speculative,
                });
            }
            debug_assert!(tags.windows(2).all(|w| w[0].stage <= w[1].stage));
            let fl = batch.flights[l as usize]
                .as_mut()
                .expect("lane flight parked by sweep");
            fl.pkt.tags = tags;
        }
    }
    for st in ctx.prologue..batch.stage_lanes.len() {
        let body = st - ctx.prologue;
        if batch.stage_lanes[st].is_empty() {
            continue;
        }
        batch.kernel_out.clear();
        ctx.prog.execute_stage_batch(
            body,
            &batch.stage_lanes[st],
            &batch.stage_slots[st],
            &mut FlightRows(&mut batch.flights),
            &mut ViewRegs(views),
            &mut batch.kernel_out,
        );
        // Regroup the instruction-major kernel output per lane,
        // deduping consecutive duplicates — reproducing
        // `execute_stage`'s per-packet access list — and render the
        // verdicts the scalar path applied inline. The scatter through
        // per-lane buckets is a stable counting sort: one pass over
        // `kernel_out` instead of one filter scan per lane.
        let n = batch.stage_lanes[st].len();
        if batch.regroup.len() < n {
            batch.regroup.resize_with(n, Vec::new);
        }
        batch.lane_local.resize(batch.flights.len(), 0);
        for (i, &l) in batch.stage_lanes[st].iter().enumerate() {
            batch.lane_local[l as usize] = i as u32;
            batch.regroup[i].clear();
        }
        for a in &batch.kernel_out {
            let i = batch.lane_local[a.lane as usize] as usize;
            batch.regroup[i].push((a.reg, a.index));
        }
        for i in 0..n {
            let l = batch.stage_lanes[st][i];
            let start = batch.acc.len();
            for bi in 0..batch.regroup[i].len() {
                let e = batch.regroup[i][bi];
                if batch.acc.len() == start || *batch.acc.last().expect("nonempty") != e {
                    batch.acc.push(e);
                }
            }
            let end = batch.acc.len();
            batch.acc_ranges[l as usize] = (start as u32, end as u32);
            let fl = batch.flights[l as usize]
                .as_ref()
                .expect("lane flight parked by sweep");
            let retired_speculative = fl
                .pkt
                .tags
                .iter()
                .take_while(|t| t.stage.index() == st)
                .any(|t| t.speculative);
            if retired_speculative && start == end {
                batch.verdicts[l as usize] |= V_WASTED;
            }
        }
    }
}

/// Pass 3: apply verdicts and retirements in sweep order — which is
/// pipeline-major with stages ascending, i.e. exactly the order the
/// scalar loop produced its per-pipeline effects in. On traced runs
/// each lane's execution events render into a per-view scratch buffer,
/// which is then merge-flushed with the view's scheduler events into
/// the view's event stream in canonical scalar order.
fn compact_batch<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    views: &mut [PipeView<'_>],
    batch: &mut PacketBatch,
) {
    let sched = std::mem::take(&mut batch.sched_ev);
    let mut exec = std::mem::take(&mut batch.exec_ev);
    // Lanes were admitted per view in slot order, so each view's lanes
    // form a contiguous run; `i` walks them across the view loop.
    let mut i = 0usize;
    for (v, view) in views.iter_mut().enumerate() {
        exec.clear();
        while i < batch.lanes.len() && batch.lanes[i].slot as usize == v {
            let st = batch.lanes[i].st as usize;
            let mut fl = batch.flights[i]
                .take()
                .expect("lane flight parked by sweep");
            if st == 0 && ctx.prologue > 0 {
                // The resolution counter bumps, in tag (= resolution) order.
                for tag in &fl.pkt.tags {
                    if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
                        view.fx.ctr_ops.push(CtrOp::Inc {
                            reg: tag.reg,
                            index: tag.index,
                        });
                    }
                }
            }
            if ctx.prologue > 0 && st == ctx.prologue - 1 && ctx.phantoms {
                // Phantom generation stage: one phantom per tag, in order.
                for tag in &fl.pkt.tags {
                    if S::ENABLED {
                        TraceCtx::new(ctx.cycle, view.pl as u16, st as u16).emit(
                            &mut BufSink(&mut exec),
                            EventKind::PhantomEmit {
                                key: tkey(fl.key(tag)),
                                dest_pipeline: tag.pipeline.0,
                                dest_stage: tag.stage.0,
                            },
                        );
                    }
                    view.fx.injects.push(PhantomInject {
                        msg: PhantomMsg {
                            key: fl.key(tag),
                            ts: fl.order,
                            dest: tag.pipeline,
                            lane: fl.ingress,
                        },
                        from: StageId(st as u16),
                        dest: tag.stage,
                    });
                    view.fx.phantoms_generated += 1;
                }
            }
            if st >= ctx.prologue {
                let (a0, a1) = batch.acc_ranges[i];
                if S::ENABLED || ctx.record_detail {
                    for &(reg, index) in &batch.acc[a0 as usize..a1 as usize] {
                        if S::ENABLED {
                            TraceCtx::new(ctx.cycle, view.pl as u16, st as u16).emit(
                                &mut BufSink(&mut exec),
                                EventKind::Access {
                                    pkt: fl.pkt.id,
                                    reg,
                                    index,
                                    order: (fl.order.0, fl.order.1),
                                },
                            );
                        }
                        if ctx.record_detail {
                            view.fx.accesses.push((reg, index, fl.pkt.id));
                        }
                    }
                }
                // Retire this stage's tags; see `process_flight` for the
                // sibling-cancel and wasted-cycle semantics.
                let mut first = true;
                while fl.pkt.tags.first().is_some_and(|t| t.stage.index() == st) {
                    let tag = fl.pkt.tags.remove(0);
                    if !first && ctx.phantoms {
                        let key = fl.key(&tag);
                        let tctx = TraceCtx::new(ctx.cycle, view.pl as u16, st as u16);
                        if S::ENABLED {
                            view.queues[st].cancel(key, false, &mut BufSink(&mut exec), tctx);
                        } else {
                            view.queues[st].cancel(key, false, &mut NopSink, tctx);
                        }
                    }
                    first = false;
                    if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
                        view.fx.ctr_ops.push(CtrOp::Dec {
                            reg: tag.reg,
                            index: tag.index,
                        });
                    }
                }
                if batch.verdicts[i] & V_WASTED != 0 {
                    view.fx.wasted_cycles += 1;
                }
            }
            view.lanes[st] = Some(fl);
            if st < 64 {
                *view.park |= 1 << st;
            }
            i += 1;
        }
        if S::ENABLED {
            let s0 = if v == 0 {
                0
            } else {
                batch.sched_marks[v - 1] as usize
            };
            let s1 = batch.sched_marks[v] as usize;
            merge_flush(&sched[s0..s1], &exec, view.events);
        }
    }
    batch.sched_ev = sched;
    batch.exec_ev = exec;
}

/// Interleaves one view's scheduler and execution event buffers back
/// into the canonical scalar order. Both buffers are stage-ascending
/// (the sweep visits stages in order; compaction walks lanes in sweep
/// order), and within one `(pipeline, stage)` slot the scalar loop
/// emits scheduler events (drops, pops, execute) before execution
/// events (phantom emits, accesses, sibling cancels) — so a stable
/// merge by stage with the scheduler stream winning ties reconstructs
/// the exact scalar stream.
fn merge_flush(sched: &[Event], exec: &[Event], out: &mut Vec<Event>) {
    out.reserve(sched.len() + exec.len());
    let (mut i, mut j) = (0, 0);
    while i < sched.len() && j < exec.len() {
        if sched[i].stage <= exec[j].stage {
            out.push(sched[i]);
            i += 1;
        } else {
            out.push(exec[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&sched[i..]);
    out.extend_from_slice(&exec[j..]);
}
