//! MP5: the multi-pipelined programmable packet processing pipeline.
//!
//! This crate is the paper's primary contribution: a cycle-accurate
//! model of the MP5 switch **architecture** (§3.2 — parallel Banzai
//! pipelines joined by inter-stage crossbars, a dedicated phantom
//! channel, and per-stage banks of `k` FIFOs) and **runtime** (§3.4 —
//! packet steering, preemptive state-access-order enforcement via
//! phantom packets, stateless-over-stateful priority, starvation
//! handling, and dynamic state sharding with in-flight guards).
//!
//! # Timing model
//!
//! One simulator step is one *pipeline cycle* (`64·k` byte-times for a
//! `k`-pipeline switch, see `mp5-types::time`). Per cycle:
//!
//! 1. the dynamic sharding heuristic may run (every `remap_period`
//!    cycles, in the background);
//! 2. the phantom channel advances one hop and delivers phantoms to
//!    their destination stage FIFOs;
//! 3. packets occupying stages move forward simultaneously — exiting
//!    the switch, passing straight to the next stage of their own
//!    pipeline, or steering through the crossbar into the FIFO bank of
//!    their next stateful stage (replacing their phantom);
//! 4. each `(pipeline, stage)` then processes at most one packet: an
//!    incoming pass-through packet has priority (Invariant 2); otherwise
//!    the logical FIFO's `pop()` serves the globally-oldest entry, with
//!    phantom heads freezing the serial order (D4).
//!
//! The same engine, reconfigured through [`SwitchConfig`], also realizes
//! the paper's ablations: no-D4 (phantoms off), static sharding, the
//! naive single-pipeline-state design, and the ideal-MP5 upper bound
//! (per-index queues + LPT re-sharding). The recirculation baseline has
//! a different datapath and lives in `mp5-baselines`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod partition;
pub mod report;
pub mod shard;
pub mod state;
pub mod switch;

pub use config::{ConfigError, EngineMode, ExecPath, ShardingMode, SprayMode, SwitchConfig};
pub use engine::{CycleTimings, WorkerPool};
pub use partition::{Partition, PartitionReport, PartitionedSwitch};
pub use report::{DropCounts, FaultReport, RunReport};
pub use state::{RestoreError, SwapError, SwapReport, SwitchState};
pub use switch::{EnginePool, InvariantViolation, Mp5Switch};
